"""Shared benchmark infrastructure.

Experiment contexts are expensive (dataset generation + corpus fitting +
calibrating nine baselines), so they are built once per dataset key and
shared across benchmark modules.  Every benchmark writes its table to
``benchmarks/results/`` and prints it, so the paper-shaped output survives
pytest's output capture.
"""

from __future__ import annotations

import functools
import json
import os
import pathlib
import sys

from repro.eval import ExperimentContext, format_table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

# Sample sizes: large enough for stable shapes, small enough that the whole
# suite completes in a few minutes on a laptop.  The BENCH_* environment
# variables let CI's perf-smoke job shrink the sample further.
N_TRAIN = int(os.environ.get("BENCH_N_TRAIN", "120"))
N_DEV = int(os.environ.get("BENCH_N_DEV", "80"))
SEED = 0


def sample_size(env_var: str, default: int) -> int:
    """A benchmark sample size, overridable from the environment."""
    return int(os.environ.get(env_var, str(default)))


@functools.lru_cache(maxsize=None)
def get_context(dataset_key: str) -> ExperimentContext:
    """Build (once) the shared experiment context for ``dataset_key``."""
    return ExperimentContext.build(
        dataset_key, seed=SEED, n_train=N_TRAIN, n_dev=N_DEV
    )


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}", file=sys.stderr)


def emit_table(name: str, rows: list[dict], title: str) -> None:
    emit(name, format_table(rows, title=title))


def emit_json(name: str, payload: dict) -> None:
    """Persist machine-readable metrics for the CI perf gate.

    ``benchmarks/perf_gate.py`` merges these files into ``BENCH_pr.json``
    and compares the throughput metrics against the checked-in baseline.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\n[bench] wrote {path}", file=sys.stderr)
