"""Table VII — QA baselines vs +GCED (ground-truth evidences), TriviaQA.

Paper: much larger gains than SQuAD (avg +18.2 EM / +14.6 F1 on Web,
+19.3/+15.0 on Wiki) because TriviaQA contexts are long and noisy.
Reproduced shape: every model improves, and the mean gain exceeds the
SQuAD mean gain (cross-checked in bench_table6 via the same contexts).
"""

import numpy as np

from repro.eval import qa_augmentation_table

from benchmarks.common import emit, emit_table, get_context

N_EXAMPLES = 60


def _run(benchmark, key, title):
    ctx = get_context(key)
    rows = benchmark.pedantic(
        lambda: qa_augmentation_table(ctx, n_examples=N_EXAMPLES),
        rounds=1,
        iterations=1,
    )
    emit_table(f"table7_qa_{key}", rows, title)
    gains_em = [r["EM+GCED"] - r["EM"] for r in rows]
    assert all(g >= 0 for g in gains_em)
    mean_gain = float(np.mean(gains_em))
    assert mean_gain > 5.0, "TriviaQA gains should be large"
    emit(
        f"table7_{key}_summary",
        f"{key}: mean EM gain {mean_gain:+.2f} "
        f"(paper: +18.2 Web / +19.3 Wiki)",
    )
    return mean_gain


def test_table7_triviaqa_web(benchmark):
    _run(benchmark, "triviaqa-web", "Table VII — EM/F1 vs +GCED (TriviaQA-Web)")


def test_table7_triviaqa_wiki(benchmark):
    _run(benchmark, "triviaqa-wiki", "Table VII — EM/F1 vs +GCED (TriviaQA-Wiki)")
