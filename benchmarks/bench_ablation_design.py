"""Design-choice ablations beyond the paper's Table VIII (DESIGN.md §5).

1. Clip count M sweep — conciseness should rise with M, informativeness
   should stay protected (EFC never lets answer/clue nodes be clipped).
2. Hybrid weight sweep — pushing γ (conciseness) up shortens evidences.
3. Attention source — multi-head vs uniform edge weights.
"""

import dataclasses

import numpy as np

from repro.core.config import GCEDConfig
from repro.core.pipeline import GCED
from repro.metrics.hybrid import HybridWeights
from repro.text.tokenizer import word_tokens

from benchmarks.common import emit_table, get_context

N_EXAMPLES = 16


def _evidence_stats(gced, examples):
    lengths, informativeness = [], []
    for example in examples:
        result = gced.distill(
            example.question, example.primary_answer, example.context
        )
        if not result.evidence:
            continue
        lengths.append(len(word_tokens(result.evidence)))
        informativeness.append(result.scores.informativeness)
    return float(np.mean(lengths)), float(np.mean(informativeness))


def test_clip_m_sweep(benchmark):
    ctx = get_context("squad11")
    examples = ctx.dataset.answerable_dev()[:N_EXAMPLES]

    def run():
        rows = []
        for m in (0, 1, 2, 4, 8):
            config = GCEDConfig(clip_times=m)
            gced = GCED(ctx.artifacts.reader, ctx.artifacts, config=config)
            length, informativeness = _evidence_stats(gced, examples)
            rows.append({"M": m, "mean_words": length, "I": informativeness})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_table("ablation_clip_m", rows, "Clip count M sweep (SQuAD-1.1)")
    lengths = [r["mean_words"] for r in rows]
    assert lengths[-1] <= lengths[0], "more clips never lengthen evidence"
    assert all(r["I"] > 0.5 for r in rows), "clipping never destroys answers"


def test_hybrid_weight_sweep(benchmark):
    ctx = get_context("squad11")
    examples = ctx.dataset.answerable_dev()[:N_EXAMPLES]

    def run():
        rows = []
        for gamma in (0.1, 1 / 3, 0.6):
            rest = (1.0 - gamma) / 2.0
            config = GCEDConfig(
                weights=HybridWeights(alpha=rest, beta=rest, gamma=gamma),
                clip_times=4,
            )
            gced = GCED(ctx.artifacts.reader, ctx.artifacts, config=config)
            length, informativeness = _evidence_stats(gced, examples)
            rows.append(
                {"gamma": gamma, "mean_words": length, "I": informativeness}
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_table("ablation_weights", rows, "Hybrid weight (gamma) sweep")
    assert rows[-1]["mean_words"] <= rows[0]["mean_words"] + 1.0


def test_attention_source(benchmark):
    from repro.attention import UniformAttention

    ctx = get_context("squad11")
    examples = ctx.dataset.answerable_dev()[:N_EXAMPLES]

    def run():
        gced_mh = GCED(ctx.artifacts.reader, ctx.artifacts)
        uniform_artifacts = dataclasses.replace(
            ctx.artifacts, attention=UniformAttention(ctx.artifacts.embeddings.dim)
        )
        gced_uni = GCED(ctx.artifacts.reader, uniform_artifacts)
        rows = []
        for label, gced in (("multi-head", gced_mh), ("uniform", gced_uni)):
            length, informativeness = _evidence_stats(gced, examples)
            rows.append(
                {"attention": label, "mean_words": length, "I": informativeness}
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_table("ablation_attention", rows, "Attention source ablation")
    # Both settings must produce valid evidences; the multi-head variant
    # carries the content signal (informativeness at least as good).
    assert all(r["I"] > 0.5 for r in rows)
