"""Engineering benchmarks — wall-clock of the GCED pipeline stages.

Not a paper table; tracks the cost profile of the implementation (the
paper's future work includes "speeding up the process of evidence
distillation").  The staged execution engine's own per-stage accounting
(``GCED.profile``) is emitted alongside, so the stage-level cost profile
lands in ``benchmarks/results/`` next to the end-to-end numbers.
"""

from benchmarks.common import emit, get_context


def _example(ctx, idx=0):
    return ctx.dataset.answerable_dev()[idx]


def test_speed_stage_profile(benchmark):
    """Per-stage wall-clock collected by the engine over a dev slice."""
    from repro.core import BatchDistiller
    from repro.core.pipeline import GCED

    ctx = get_context("squad11")
    examples = ctx.dataset.answerable_dev()[:16]

    def run():
        gced = GCED(
            qa_model=ctx.artifacts.reader,
            artifacts=ctx.artifacts,
            parser=ctx.gced.wsptc.parser,
        )
        batch = BatchDistiller(gced)
        batch.distill_examples(examples)
        return batch

    batch = benchmark.pedantic(run, rounds=1, iterations=1)
    profile = batch.stats().profile
    assert profile.stages["oec"].calls > 0
    emit("speed_stage_profile", profile.report())


def test_speed_full_distillation(benchmark):
    ctx = get_context("squad11")
    example = _example(ctx)

    def run():
        # Bypass the context cache: measure a real distillation.
        return ctx.gced.distill(
            example.question, example.primary_answer, example.context
        )

    result = benchmark(run)
    assert result.evidence


def test_speed_reader_predict(benchmark):
    ctx = get_context("squad11")
    example = _example(ctx, idx=1)
    result = benchmark(
        lambda: ctx.artifacts.reader.predict(example.question, example.context)
    )
    assert result.text


def test_speed_parse(benchmark):
    from repro.parsing import SyntacticParser
    from repro.text.tokenizer import tokenize

    ctx = get_context("squad11")
    example = _example(ctx, idx=2)
    tokens = [t.text for t in tokenize(example.context)][:30]

    parser = SyntacticParser()

    def run():
        # Fresh tuple each call defeats the memoization for honest timing.
        return parser.parse_constituency(list(tokens))

    tree = benchmark(run)
    assert tree.leaves()


def test_speed_attention(benchmark):
    from repro.text.tokenizer import word_tokens

    ctx = get_context("squad11")
    example = _example(ctx, idx=3)
    tokens = word_tokens(example.context)[:40]
    matrix = benchmark(lambda: ctx.artifacts.attention.attention_matrix(tokens))
    assert matrix.shape == (len(tokens), len(tokens))


def test_speed_perplexity(benchmark):
    from repro.text.tokenizer import word_tokens

    ctx = get_context("squad11")
    example = _example(ctx, idx=4)
    tokens = word_tokens(example.context)
    ppl = benchmark(lambda: ctx.artifacts.language_model.perplexity(tokens))
    assert ppl > 0
