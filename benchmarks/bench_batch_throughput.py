"""Batch distillation throughput — examples/sec across executor settings.

Tracks the scaling of :class:`repro.core.batch.BatchDistiller` on the
staged execution engine: serial vs thread pool vs process pool, at the
worker counts a deployment would use.  Speedup is hardware-dependent (the
pipeline is pure-Python CPU work, so thread pools are GIL-bound and
process pools need multiple cores to win); the point of the benchmark is
that the trajectory is *measured*, run over run, in
``benchmarks/results/batch_throughput.txt``.
"""

from __future__ import annotations

import time

from benchmarks.common import emit, emit_json, get_context, sample_size

N_EXAMPLES = sample_size("BENCH_N_EXAMPLES", 24)


def _fresh_distiller(ctx, workers: int, backend: str):
    from repro.core import BatchDistiller
    from repro.core.pipeline import GCED

    # A fresh pipeline per setting: no warm caches carried across runs.
    gced = GCED(qa_model=ctx.artifacts.reader, artifacts=ctx.artifacts)
    return BatchDistiller(gced, workers=workers, backend=backend)


def _measure(ctx, examples, workers: int, backend: str) -> dict:
    with _fresh_distiller(ctx, workers, backend) as batch:
        started = time.perf_counter()
        results = batch.distill_examples(examples)
        elapsed = time.perf_counter() - started
    assert len(results) == len(examples)
    return {
        "workers": workers,
        "backend": backend if workers > 1 else "serial",
        "examples": len(examples),
        "seconds": round(elapsed, 3),
        "examples/sec": round(len(examples) / elapsed, 2),
        "evidence_hash": hash(tuple(r.evidence for r in results)),
    }


def test_batch_throughput_scaling():
    ctx = get_context("squad11")
    examples = ctx.dataset.answerable_dev()[:N_EXAMPLES]

    # Steady-state measurement: one throwaway pass (own distiller, its
    # results memo discarded) warms the *process-wide* model caches —
    # question profiles, stems — so the serial row is not the only one
    # paying their misses and the speedup comparison is fair.
    _measure(ctx, examples, workers=1, backend="thread")

    rows = [
        _measure(ctx, examples, workers=1, backend="thread"),
        _measure(ctx, examples, workers=4, backend="thread"),
        _measure(ctx, examples, workers=4, backend="process"),
    ]

    # All settings must produce identical evidences (the executor contract).
    hashes = {row.pop("evidence_hash") for row in rows}
    assert len(hashes) == 1, "parallel results diverged from serial"

    lines = ["batch throughput (examples/sec), BatchDistiller on squad11"]
    for row in rows:
        lines.append(
            f"  workers={row['workers']} backend={row['backend']:<8} "
            f"{row['seconds']:>7.3f}s  {row['examples/sec']:>7.2f} ex/s"
        )
    serial = rows[0]["examples/sec"]
    best = max(row["examples/sec"] for row in rows[1:])
    lines.append(f"  best parallel speedup: {best / serial:.2f}x over serial")
    emit("batch_throughput", "\n".join(lines))
    emit_json(
        "batch_throughput",
        {
            "examples": len(examples),
            "rows": rows,
            "metrics": {
                "batch.serial_ex_per_sec": serial,
                "batch.best_parallel_ex_per_sec": best,
                # Hardware-relative: ≥ 1.0 means the executor's overhead
                # is paid for even on one core; multi-core runners see the
                # process backend scale further.
                "batch.parallel_speedup": round(best / serial, 3),
            },
        },
    )
