"""Fig. 7 — QA degradation when evidences come from predicted answers.

Paper shape: performance decreases as the substitution fraction δ grows;
the drop is small on SQuAD (2-3%) and larger on TriviaQA (weaker baseline
models → more wrong predicted answers → more evidences missing the gold
span).
"""

import numpy as np

from repro.eval import degradation_curves
from repro.eval.figures import degradation_chart

from benchmarks.common import emit, emit_table, get_context

DELTAS = (0.0, 0.2, 0.5, 0.8, 1.0)
N_EXAMPLES = 40
MODELS_SQUAD = ("BERT-large", "RoBERTa-500K", "XLNet-large", "T5")
MODELS_TRIVIA = ("BERT+BM25", "RoBERTa-base", "Bigbird-itc", "Hard-EM")


def _mean_drop(rows):
    """Mean EM drop from δ=0 to δ=1 across models."""
    drops = []
    models = {r["model"] for r in rows}
    for model in models:
        curve = sorted(
            (r for r in rows if r["model"] == model), key=lambda r: r["delta"]
        )
        drops.append(curve[0]["EM"] - curve[-1]["EM"])
    return float(np.mean(drops))


def test_fig7_squad(benchmark):
    ctx = get_context("squad11")
    rows = benchmark.pedantic(
        lambda: degradation_curves(
            ctx, deltas=DELTAS, n_examples=N_EXAMPLES, model_names=MODELS_SQUAD
        ),
        rounds=1,
        iterations=1,
    )
    emit_table("fig7_squad11", rows, "Fig. 7a — degradation vs delta (SQuAD-1.1)")
    emit(
        "fig7_squad11_chart",
        degradation_chart(rows, metric="EM", title="Fig. 7a — EM vs delta (SQuAD-1.1)"),
    )
    drop = _mean_drop(rows)
    emit("fig7_squad11_summary", f"SQuAD-1.1 mean EM drop at delta=1: {drop:.2f} (paper: 2-3)")
    assert drop >= -1.0  # no systematic gain from wrong answers
    # Performance at full substitution never exceeds the gt-only setting.
    for model in MODELS_SQUAD:
        curve = sorted(
            (r for r in rows if r["model"] == model), key=lambda r: r["delta"]
        )
        assert curve[-1]["EM"] <= curve[0]["EM"] + 1e-9


def test_fig7_triviaqa(benchmark):
    ctx = get_context("triviaqa-web")
    rows = benchmark.pedantic(
        lambda: degradation_curves(
            ctx, deltas=DELTAS, n_examples=N_EXAMPLES, model_names=MODELS_TRIVIA
        ),
        rounds=1,
        iterations=1,
    )
    emit_table("fig7_triviaqa_web", rows, "Fig. 7c — degradation vs delta (TriviaQA-Web)")
    emit(
        "fig7_triviaqa_chart",
        degradation_chart(rows, metric="EM", title="Fig. 7c — EM vs delta (TriviaQA-Web)"),
    )
    drop = _mean_drop(rows)
    emit(
        "fig7_triviaqa_summary",
        f"TriviaQA-Web mean EM drop at delta=1: {drop:.2f} (paper: larger than SQuAD)",
    )
    assert drop > 0.0, "TriviaQA should degrade measurably"
