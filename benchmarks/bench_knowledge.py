"""Knowledge-enhanced QWS benchmark (paper future work, Sec. IV-G).

Measures GCED with and without the entity knowledge graph on the
family-relations workload — the scaled-up version of the paper's
Solomon/Bathsheba failure case.  The gold answer (the mother) is always
protected by EFC, so the knowledge effect shows in whether the relational
*bridge* (the father, linking child to mother) survives the clip step,
and in the resulting readability.
"""

import numpy as np

from repro.core.pipeline import GCED
from repro.datasets.families import FamilyGenerator
from repro.qa.training import QATrainer

from benchmarks.common import emit_table

N_FAMILIES = 20


def _evaluate(gced, examples, families):
    bridge_kept, readability = [], []
    for example, family in zip(examples, families):
        result = gced.distill(
            example.question, example.primary_answer, example.context
        )
        if not result.evidence:
            continue
        evidence_lower = result.evidence.lower()
        father_given = family["father"].split()[0].lower()
        bridge_kept.append(float(father_given in evidence_lower))
        readability.append(result.scores.readability)
    return {
        "bridge_kept": float(np.mean(bridge_kept)),
        "R": float(np.mean(readability)),
    }


def test_knowledge_enhanced_qws(benchmark):
    dataset, graph, families = FamilyGenerator(seed=0).generate(
        n_examples=N_FAMILIES
    )
    artifacts = QATrainer(seed=0).train(dataset.contexts())
    examples = dataset.dev

    def run():
        from repro.core.config import GCEDConfig

        # A generous clip budget puts real pressure on the key sentence —
        # without knowledge, nothing stops the clip from cutting the
        # father bridge once the noise sentences are exhausted.
        config = GCEDConfig(clip_times=6)
        plain = GCED(qa_model=artifacts.reader, artifacts=artifacts, config=config)
        knowing = GCED(
            qa_model=artifacts.reader,
            artifacts=artifacts,
            config=config,
            knowledge=graph,
        )
        rows = []
        for label, gced in (("lexicon only", plain), ("+knowledge graph", knowing)):
            stats = _evaluate(gced, examples, families)
            rows.append({"QWS": label, **stats})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_table(
        "knowledge_qws",
        rows,
        "Knowledge-enhanced QWS on family relations (Sec. IV-G future work)",
    )
    plain, knowing = rows
    assert knowing["bridge_kept"] >= plain["bridge_kept"]
    assert knowing["R"] >= plain["R"] - 0.02
