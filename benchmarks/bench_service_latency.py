"""Service latency and throughput — p50/p95 at concurrency 1 / 4 / 16.

Starts the real HTTP serving stack (``DistillService`` + micro-batching
scheduler + stdlib threading server) on an ephemeral localhost port, then
replays a fixed dev-set sample through :class:`ServiceClient` workers at
each concurrency level.  Before each level the distiller's result memo is
cleared (stage caches stay warm), so every request does full pipeline
work and the levels are comparable; a warmup pass first takes the
one-time cache-filling cost out of the measurement.

Metrics land in ``benchmarks/results/service_latency.{txt,json}``; the
JSON feeds CI's perf gate (``benchmarks/perf_gate.py``).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

from benchmarks.common import N_DEV, N_TRAIN, SEED, emit, emit_json, sample_size

CONCURRENCY_LEVELS = (1, 4, 16)
N_REQUESTS = sample_size("BENCH_SERVICE_REQUESTS", 24)


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1)))
    return sorted_values[index]


def _measure_level(client, triples, concurrency: int) -> dict:
    latencies: list[float] = []

    def one(triple) -> None:
        started = time.perf_counter()
        payload = client.distill(*triple)
        latencies.append(time.perf_counter() - started)
        assert "evidence" in payload

    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=concurrency) as pool:
        list(pool.map(one, triples))
    elapsed = time.perf_counter() - started
    latencies.sort()
    return {
        "concurrency": concurrency,
        "requests": len(triples),
        "p50_ms": round(1000 * _percentile(latencies, 0.50), 2),
        "p95_ms": round(1000 * _percentile(latencies, 0.95), 2),
        "req_per_sec": round(len(triples) / elapsed, 2),
    }


def test_service_latency():
    from repro.service import DistillService, ServiceClient, ServiceConfig
    from repro.service.server import start_server

    service = DistillService.build(
        ServiceConfig(
            dataset="squad11",
            seed=SEED,
            n_train=N_TRAIN,
            n_dev=N_DEV,
            max_batch_size=16,
            max_wait_ms=2.0,
        )
    )
    examples = service.dataset.answerable_dev()
    triples = [
        (e.question, e.primary_answer, e.context)
        for e in (examples * (N_REQUESTS // max(1, len(examples)) + 1))
    ][:N_REQUESTS]
    assert triples, "no dev examples to serve"

    server, _thread = start_server(service, quiet=True)
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}")
    rows = []
    try:
        assert client.healthz()["status"] == "ok"
        for triple in triples:  # warm the shared stage caches once
            client.distill(*triple)
        for concurrency in CONCURRENCY_LEVELS:
            # Fresh memo per level: every request pays full pipeline cost.
            service.distiller._results.clear()
            rows.append(_measure_level(client, triples, concurrency))
        stats = client.stats()
    finally:
        server.shutdown()
        server.server_close()
        service.close()

    assert stats["scheduler"]["completed"] >= len(CONCURRENCY_LEVELS) * len(
        triples
    )

    lines = [
        "service latency/throughput, HTTP + micro-batching on squad11 "
        f"({N_REQUESTS} requests per level)"
    ]
    for row in rows:
        lines.append(
            f"  c={row['concurrency']:<3d} p50={row['p50_ms']:>8.2f}ms "
            f"p95={row['p95_ms']:>8.2f}ms  {row['req_per_sec']:>7.2f} req/s"
        )
    batches = stats["scheduler"]["batches"]
    served = stats["scheduler"]["completed"]
    lines.append(
        f"  scheduler: {served} served in {batches} batches "
        f"(mean {stats['scheduler']['mean_batch_size']:.1f}/batch)"
    )
    emit("service_latency", "\n".join(lines))
    emit_json(
        "service_latency",
        {
            "requests_per_level": N_REQUESTS,
            "levels": rows,
            "scheduler": stats["scheduler"],
            "metrics": {
                f"service.c{row['concurrency']}.req_per_sec": row["req_per_sec"]
                for row in rows
            },
            "latency_ms": {
                f"service.c{row['concurrency']}": {
                    "p50": row["p50_ms"],
                    "p95": row["p95_ms"],
                }
                for row in rows
            },
        },
    )
