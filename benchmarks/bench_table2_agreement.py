"""Table II — Inter-rater agreement (Krippendorff's alpha) per group.

Paper values: alphas in the 0.75-0.83 band across criteria and groups.
Reproduced shape: all alphas comfortably above the 0.7 usability threshold.
"""

from repro.eval import agreement_table

from benchmarks.common import emit_table, get_context


def test_table2_agreement(benchmark):
    ctx = get_context("squad11")

    def run():
        return agreement_table(ctx, n_examples=40)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_table("table2_agreement", rows, "Table II — Krippendorff's alpha per rater group (SQuAD-1.1)")
    for row in rows:
        for group in ("group1", "group2", "group3"):
            assert row[group] > 0.5, row
