"""Table VIII — component ablation (BERT + ground-truth evidences, SQuAD-2.0).

Paper shape: each removed component hurts its matching criterion most —
w/o ASE / w/o Clip / w/o C hurt conciseness, w/o QWS / w/o I hurt
informativeness, w/o Grow / w/o R hurt readability; w/o ASE hurts QA EM/F1
most; the full configuration has the best hybrid score.
"""

from repro.eval import ablation_table

from benchmarks.common import emit_table, get_context

N_EXAMPLES = 30


def test_table8_ablation(benchmark):
    ctx = get_context("squad20")
    rows = benchmark.pedantic(
        lambda: ablation_table(ctx, model_name="BERT-large", n_examples=N_EXAMPLES),
        rounds=1,
        iterations=1,
    )
    emit_table(
        "table8_ablation",
        rows,
        "Table VIII — GCED component ablation (BERT, SQuAD-2.0, gt evidences)",
    )
    by = {r["source"]: r for r in rows}
    full = by["full"]
    # Criterion-targeted degradations (the paper's qualitative claims).
    assert by["w/o ASE"]["C"] < full["C"] - 0.05
    assert by["w/o QWS"]["I"] < full["I"] - 0.05
    assert by["w/o GROW"]["R"] < full["R"] - 0.05
    assert by["w/o CLIP"]["C"] < full["C"] + 0.02
    assert by["w/o R"]["R"] < full["R"] + 0.02
    # Full configuration wins (or ties) on the hybrid score.
    assert full["H"] >= max(r["H"] for r in rows) - 0.03
