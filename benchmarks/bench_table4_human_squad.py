"""Table IV — Human evaluation of distilled evidences on SQuAD-1.1/2.0.

Paper: I/C/R/H per answer source (nine QA models + ground truth) all in
the 0.81-0.92 band, with no significant gap between predicted-answer and
ground-truth rows.  Reproduced shape: same band, same flatness (paired
p-value > 0.05 between the two conditions).
"""

from repro.eval import human_evaluation_table

from benchmarks.common import emit_table, get_context

N_EXAMPLES = 20


def _check(rows):
    for row in rows:
        assert 0.6 < row["H"] <= 1.0, row
    gt = next(r for r in rows if r["source"] == "Ground-truth")
    predicted_h = [r["H"] for r in rows if r["source"] != "Ground-truth"]
    spread = max(abs(gt["H"] - h) for h in predicted_h)
    assert spread < 0.15, "predicted vs ground-truth rows should be close"


def test_table4_squad11(benchmark):
    ctx = get_context("squad11")
    rows = benchmark.pedantic(
        lambda: human_evaluation_table(ctx, n_examples=N_EXAMPLES),
        rounds=1,
        iterations=1,
    )
    emit_table(
        "table4_human_squad11", rows, "Table IV — Human evaluation (SQuAD-1.1)"
    )
    _check(rows)


def test_table4_squad20(benchmark):
    ctx = get_context("squad20")
    rows = benchmark.pedantic(
        lambda: human_evaluation_table(ctx, n_examples=N_EXAMPLES),
        rounds=1,
        iterations=1,
    )
    emit_table(
        "table4_human_squad20", rows, "Table IV — Human evaluation (SQuAD-2.0)"
    )
    _check(rows)
