"""Sec. IV-D1 in-text statistic — word reduction of distilled evidences.

Paper: on average 78.5% of words removed on SQuAD and 87.2% on TriviaQA.
Reproduced shape: >60% on SQuAD, >75% on TriviaQA, TriviaQA > SQuAD.
"""

from repro.eval import reduction_statistics

from benchmarks.common import emit, get_context


def test_word_reduction(benchmark):
    def run():
        return {
            key: reduction_statistics(get_context(key), n_examples=30)
            for key in ("squad11", "triviaqa-web")
        }

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    squad = stats["squad11"]
    trivia = stats["triviaqa-web"]
    emit(
        "word_reduction",
        "Word reduction (Sec. IV-D1)\n"
        f"  SQuAD-1.1    : {100 * squad['mean_reduction']:.1f}% "
        f"({squad['mean_context_words']:.0f} -> {squad['mean_evidence_words']:.0f} words)"
        "  [paper: 78.5%]\n"
        f"  TriviaQA-Web : {100 * trivia['mean_reduction']:.1f}% "
        f"({trivia['mean_context_words']:.0f} -> {trivia['mean_evidence_words']:.0f} words)"
        "  [paper: 87.2%]",
    )
    assert squad["mean_reduction"] > 0.6
    assert trivia["mean_reduction"] > 0.75
    assert trivia["mean_reduction"] > squad["mean_reduction"]
