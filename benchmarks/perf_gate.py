"""CI perf gate: merge benchmark JSON and compare against the baseline.

Usage (after running the perf benchmarks so that
``benchmarks/results/*.json`` exist)::

    python benchmarks/perf_gate.py --out BENCH_pr.json
    python benchmarks/perf_gate.py --write-baseline   # refresh baseline

The gate merges every known benchmark JSON into one ``BENCH_pr.json``
artifact and fails (exit 1) if any metric regressed more than
``--tolerance`` (default 30%, overridable via the ``PERF_GATE_TOLERANCE``
environment variable) against ``benchmarks/results/baseline.json``:
throughput metrics gate *downward*, and latency metrics — keys ending in
``_ms`` (the hot-path stage timings from ``bench_distill_profile.py``) —
gate *upward*.  Size metrics — keys ending in ``bytes`` (the snapshot
segment size from ``bench_snapshot.py``) — gate upward like latencies:
silent snapshot bloat slows worker spawn long before anything else
notices.  Cache-effectiveness ratios (``distill.clip_scores_hit_rate``)
gate downward like throughput: losing cross-call session reuse halves
the hit rate long before wall-clock regressions become visible on small
CI samples.

A few metrics gate against an *absolute* ceiling instead of the
baseline (``ABSOLUTE_CEILINGS``): telemetry overhead
(``obs.overhead_pct`` from ``bench_obs_overhead.py``) hovers near zero,
so any ratio-vs-baseline comparison would flake — it simply must stay
under a few percent.  These keys are excluded from baseline writes and
comparisons.

With ``PERF_GATE_MULTICORE=1`` the gate additionally enforces a hard
floor of 1.3x on ``batch.parallel_speedup`` regardless of the baseline —
only set it on runners with >= 2 CPUs.  On single-CPU runners (where the
process backend cannot beat serial) leave it unset and the gate relies
on ``snapshot.worker_warm_ms`` / ``snapshot.bytes`` instead.

Absolute wall-clock varies across runner hardware more
than relative throughput does, so latency baselines must be produced on
CI-comparable hardware (same rule the throughput baselines already
follow) and re-blessed with ``--write-baseline`` after an intentional
slowdown; service latency *percentiles* stay context-only.

Only metric keys present in *both* the baseline and the current run are
compared, so adding a new benchmark never breaks the gate — refresh the
baseline with ``--write-baseline`` to start gating it.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
SOURCE_FILES = (
    "batch_throughput.json",
    "service_latency.json",
    "service_saturation.json",
    "retrieval.json",
    "distill_profile.json",
    "snapshot.json",
    "obs_overhead.json",
    "fault_recovery.json",
    "ingest_recovery.json",
)
# Hard floor on multi-core batch speedup, enforced only when the runner
# opts in via PERF_GATE_MULTICORE=1 (a single-CPU runner cannot meet it).
MULTICORE_FLOOR = 1.3
# Metrics gated against an absolute ceiling instead of the baseline:
# near-zero noisy numbers (telemetry overhead hovers around 0-1%) would
# flake any ratio comparison, so they are excluded from the baseline and
# fail outright when they cross the ceiling.  Enforced whenever the
# metric was measured.
ABSOLUTE_CEILINGS = {"obs.overhead_pct": 5.0}
# Context-only payload keys carried into the artifact, keyed by source so
# two benchmarks reporting latencies never clobber each other.
CONTEXT_KEYS = ("latency_ms", "query_latency_ms", "cold_first_request_ms")


def collect_metrics(results_dir: pathlib.Path) -> tuple[dict, list[str]]:
    """Gather throughput metrics (and context) from benchmark JSON files."""
    metrics: dict[str, float] = {}
    extras: dict[str, dict] = {}
    sources: list[str] = []
    for filename in SOURCE_FILES:
        path = results_dir / filename
        if not path.exists():
            continue
        payload = json.loads(path.read_text())
        metrics.update(payload.get("metrics", {}))
        for key in CONTEXT_KEYS:
            if key in payload:
                extras.setdefault(key, {})[filename.removesuffix(".json")] = (
                    payload[key]
                )
        sources.append(filename)
    return {"metrics": metrics, **extras}, sources


def compare(
    current: dict[str, float], baseline: dict[str, float], tolerance: float
) -> tuple[list[str], list[str]]:
    """Regressions beyond tolerance, plus one info line per metric.

    Throughput metrics regress *downward* (below ``base * (1 - tol)``);
    latency and size metrics — any key ending in ``_ms`` or ``bytes`` —
    regress *upward*, so the gate protects the hot-path stage timings
    from ``bench_distill_profile.py`` and the snapshot segment size from
    ``bench_snapshot.py`` in the direction that actually hurts.
    Absolute wall-clock varies across runner hardware more than relative
    throughput does, so latency keys get double the tolerance: a slower
    runner shifts every ``_ms`` value together, while the multi-x
    regressions the gate exists to catch still trip it.
    """
    failures: list[str] = []
    report: list[str] = []
    for key in sorted(baseline):
        if key in ABSOLUTE_CEILINGS:
            continue  # gated against a fixed ceiling, not the baseline
        if key not in current:
            report.append(f"  {key:<36} baseline-only (not measured)")
            continue
        base, now = float(baseline[key]), float(current[key])
        delta = (now - base) / base if base else 0.0
        if key.endswith("_ms") or key.endswith("bytes"):
            ceiling = base * (1.0 + 2.0 * tolerance)
            regressed = now > ceiling
            direction = "above"
        else:
            floor = base * (1.0 - tolerance)
            regressed = now < floor
            direction = "below"
        status = "REGRESSED" if regressed else "ok"
        report.append(
            f"  {key:<36} {now:>9.2f} vs baseline {base:>9.2f} "
            f"({delta:+.1%}) {status}"
        )
        if regressed:
            failures.append(
                f"{key}: {now:.2f} is more than {tolerance:.0%} {direction} "
                f"baseline {base:.2f}"
            )
    return failures, report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results-dir", type=pathlib.Path, default=RESULTS_DIR
    )
    parser.add_argument(
        "--baseline",
        type=pathlib.Path,
        default=RESULTS_DIR / "baseline.json",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=pathlib.Path("BENCH_pr.json"),
        help="merged metrics artifact to write",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("PERF_GATE_TOLERANCE", "0.30")),
        help="allowed fractional regression vs baseline (throughput drop, "
        "or *_ms latency rise)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="overwrite the baseline with the current metrics and exit",
    )
    args = parser.parse_args(argv)

    current, sources = collect_metrics(args.results_dir)
    if not current["metrics"]:
        print(
            "perf gate: no benchmark JSON found — run the perf benchmarks "
            "first (bench_batch_throughput.py, bench_service_latency.py)",
            file=sys.stderr,
        )
        return 2
    current["sources"] = sources
    current["tolerance"] = args.tolerance

    args.out.write_text(json.dumps(current, indent=2, sort_keys=True) + "\n")
    print(f"perf gate: wrote {args.out} ({len(current['metrics'])} metrics)")

    if args.write_baseline:
        baseline_metrics = {
            key: value
            for key, value in current["metrics"].items()
            if key not in ABSOLUTE_CEILINGS
        }
        args.baseline.write_text(
            json.dumps({"metrics": baseline_metrics}, indent=2, sort_keys=True)
            + "\n"
        )
        print(f"perf gate: baseline refreshed at {args.baseline}")
        return 0

    if not args.baseline.exists():
        print(
            f"perf gate: no baseline at {args.baseline}; "
            "run with --write-baseline to create one",
            file=sys.stderr,
        )
        return 2
    baseline = json.loads(args.baseline.read_text())["metrics"]
    failures, report = compare(current["metrics"], baseline, args.tolerance)
    if os.environ.get("PERF_GATE_MULTICORE") == "1":
        speedup = current["metrics"].get("batch.parallel_speedup")
        if speedup is None:
            failures.append(
                "PERF_GATE_MULTICORE=1 but batch.parallel_speedup was not "
                "measured — run bench_batch_throughput.py"
            )
        elif float(speedup) < MULTICORE_FLOOR:
            failures.append(
                f"batch.parallel_speedup: {float(speedup):.2f} is below the "
                f"multi-core floor {MULTICORE_FLOOR} (PERF_GATE_MULTICORE=1)"
            )
    for key, ceiling in ABSOLUTE_CEILINGS.items():
        value = current["metrics"].get(key)
        if value is None:
            continue  # benchmark not run; nothing to enforce
        report.append(
            f"  {key:<36} {float(value):>9.2f} vs ceiling  {ceiling:>9.2f} "
            f"{'REGRESSED' if float(value) > ceiling else 'ok'}"
        )
        if float(value) > ceiling:
            failures.append(
                f"{key}: {float(value):.2f} exceeds the absolute ceiling "
                f"{ceiling:.2f}"
            )
    print(
        "perf gate: metrics vs baseline "
        f"(tolerance {args.tolerance:.0%}; *_ms and *bytes gate upward)"
    )
    print("\n".join(report))
    if failures:
        for failure in failures:
            print(f"perf gate FAILED: {failure}", file=sys.stderr)
        return 1
    print("perf gate: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
