"""Snapshot plane cost/benefit — gates worker warm-start and segment size.

Warms a parent pipeline over a squad11 dev slice, builds its
:class:`~repro.engine.snapshot.PipelineSnapshot`, then compares the
first-request latency of process workers spawned *with* the snapshot
(hydrating compiled artifacts, parse memos, and clip sessions
read-through) against workers spawned cold from an identical fresh
pipeline.  Both legs fork from parents with empty caches, so the only
difference between them is the snapshot handoff — exactly the cost the
plane exists to remove.  JSON metrics feed ``benchmarks/perf_gate.py``:

* ``snapshot.build_ms`` — one-time parent-side serialization cost; a
  latency metric, gated upward.
* ``snapshot.bytes`` — packed segment size; gated upward (keys ending in
  ``bytes`` gate like latencies), so silent snapshot bloat trips CI
  before it hurts spawn time.
* ``snapshot.worker_warm_ms`` — median first-request wall-clock of
  snapshot-spawned workers; gated upward.  This is the metric the 1-CPU
  CI box gates in place of multi-core speedup.
* ``snapshot.warm_speedup`` — cold first-request latency over warm;
  throughput-like, gated downward.  The run fails outright if warm
  workers are not at least 3× faster than cold ones.

The cold first-request latency rides along as context (absolute
wall-clock, too hardware-dependent to gate directly).
"""

from __future__ import annotations

import statistics
import time

from benchmarks.common import emit, emit_json, get_context, sample_size

N_EXAMPLES = sample_size("BENCH_SNAPSHOT_EXAMPLES", 10)
N_ROUNDS = sample_size("BENCH_SNAPSHOT_ROUNDS", 3)
MIN_WARM_SPEEDUP = 3.0


def _fresh_pipeline(ctx):
    """A pipeline with cold caches sharing only the trained artifacts."""
    from repro.core.pipeline import GCED
    from repro.parsing.dependency import SyntacticParser

    return GCED(
        qa_model=ctx.artifacts.reader,
        artifacts=ctx.artifacts,
        parser=SyntacticParser(),
    )


def _first_request_ms(ctx, triples, snapshot):
    """Wall-clock of one warmed-up process distiller's first batch.

    ``snapshot`` is a live snapshot (warm leg) or ``False`` (cold leg);
    pool spawn and initializer time are excluded — the distiller warms up
    in the constructor — so the measurement isolates what the *first
    request* pays, which is where hydration shows up.

    The reader's compiled-context cache is per-model state shared by both
    legs (and warmed by the parent's serial pass), so it is replaced with
    a fresh compiler for the measurement — otherwise forked "cold"
    workers would inherit the warm cache copy-on-write and the comparison
    would measure nothing.
    """
    from repro.core import BatchDistiller
    from repro.qa.compiled import ContextCompiler

    reader = ctx.artifacts.reader
    saved_compiler = reader.context_compiler
    reader.context_compiler = ContextCompiler()
    try:
        gced = _fresh_pipeline(ctx)
        with BatchDistiller(
            gced, workers=2, backend="process", snapshot=snapshot
        ) as batch:
            started = time.perf_counter()
            results = batch.distill_many(triples)
            elapsed_ms = 1000.0 * (time.perf_counter() - started)
    finally:
        reader.context_compiler = saved_compiler
    return elapsed_ms, [r.evidence for r in results]


def test_snapshot_warm_start():
    from repro.qa.compiled import ContextCompiler

    ctx = get_context("squad11")
    examples = ctx.dataset.answerable_dev()[:N_EXAMPLES]
    triples = [(e.question, e.primary_answer, e.context) for e in examples]

    # Deterministic warm state: a fresh compiled-context cache (the
    # reader's compiler is per-model state shared across benchmark
    # modules) and a fresh pipeline, warmed by serial traffic.
    reader = ctx.artifacts.reader
    saved_compiler = reader.context_compiler
    reader.context_compiler = ContextCompiler()
    try:
        parent = _fresh_pipeline(ctx)
        serial = [parent.distill(*triple) for triple in triples]

        snapshot = parent.build_snapshot()
        try:
            build_ms = snapshot.meta["build_ms"]
            nbytes = snapshot.nbytes
            assert nbytes > 0

            warm_ms_runs, cold_ms_runs = [], []
            for _ in range(N_ROUNDS):
                warm_ms, warm_out = _first_request_ms(ctx, triples, snapshot)
                cold_ms, cold_out = _first_request_ms(ctx, triples, False)
                # Byte-for-byte the serial outputs, snapshot on or off.
                assert warm_out == [r.evidence for r in serial]
                assert cold_out == [r.evidence for r in serial]
                warm_ms_runs.append(warm_ms)
                cold_ms_runs.append(cold_ms)
        finally:
            snapshot.close(unlink=True)
    finally:
        reader.context_compiler = saved_compiler

    worker_warm_ms = statistics.median(warm_ms_runs)
    cold_first_request_ms = statistics.median(cold_ms_runs)
    warm_speedup = (
        cold_first_request_ms / worker_warm_ms if worker_warm_ms else 0.0
    )
    assert warm_speedup >= MIN_WARM_SPEEDUP, (
        f"snapshot-spawned workers served their first request only "
        f"{warm_speedup:.2f}x faster than cold-spawned ones "
        f"(need >= {MIN_WARM_SPEEDUP}x): warm {worker_warm_ms:.1f}ms "
        f"vs cold {cold_first_request_ms:.1f}ms"
    )

    lines = [
        "snapshot plane: "
        f"{nbytes} bytes packed in {build_ms:.1f}ms "
        f"({', '.join(f'{k}={v}' for k, v in snapshot.meta['sections'].items())})",
        f"first request over {len(triples)} triples x {N_ROUNDS} rounds: "
        f"warm {worker_warm_ms:.1f}ms vs cold {cold_first_request_ms:.1f}ms "
        f"({warm_speedup:.1f}x)",
    ]
    emit("snapshot", "\n".join(lines))
    emit_json(
        "snapshot",
        {
            "examples": len(triples),
            "rounds": N_ROUNDS,
            "cold_first_request_ms": round(cold_first_request_ms, 3),
            "sections": dict(snapshot.meta["sections"]),
            "metrics": {
                "snapshot.build_ms": round(build_ms, 3),
                "snapshot.bytes": nbytes,
                "snapshot.worker_warm_ms": round(worker_warm_ms, 3),
                "snapshot.warm_speedup": round(warm_speedup, 3),
            },
        },
    )
