"""Worker crash recovery cost — gates the respawn-and-retry path.

Builds a process-backed :class:`~repro.core.batch.BatchDistiller`, kills
one worker mid-batch with a genuine ``SIGKILL`` (the deterministic
``REPRO_FAULTS`` plan, one-shot via a token file so respawned workers
cannot re-fire it), and measures how long the
:class:`~repro.engine.executor.ParallelExecutor` takes to notice the
broken pool, respawn the workers (re-hydrating the pipeline snapshot),
and retry the failed chunks.  Every round asserts the recovered batch is
byte-identical to a serial run of the same triples — recovery must be
invisible in the outputs, not just eventual.

JSON metrics feed ``benchmarks/perf_gate.py``:

* ``faults.recovery_ms`` — median respawn-and-retry wall-clock inside
  the executor; a latency metric, gated upward.  This is the number an
  operator's tail latency eats when a worker OOMs, so silent
  regressions (e.g. an accidental cold respawn) must trip CI.

The healthy-batch wall-clock and the recovered-batch wall-clock ride
along as context (absolute, hardware-dependent).
"""

from __future__ import annotations

import os
import statistics
import tempfile
import time

from benchmarks.common import emit, emit_json, get_context, sample_size

from repro.core import BatchDistiller
from repro.faults import ENV_VAR, uninstall

N_EXAMPLES = sample_size("BENCH_FAULTS_EXAMPLES", 8)
N_ROUNDS = sample_size("BENCH_FAULTS_ROUNDS", 3)


def _fresh_pipeline(ctx):
    from repro.core.pipeline import GCED
    from repro.parsing.dependency import SyntacticParser

    return GCED(
        qa_model=ctx.artifacts.reader,
        artifacts=ctx.artifacts,
        parser=SyntacticParser(),
    )


def _recovered_round(ctx, triples, reference):
    """One crash-and-recover batch; returns (batch_ms, recovery_ms)."""
    with tempfile.NamedTemporaryFile(delete=False) as handle:
        token = handle.name
    os.environ[ENV_VAR] = f"worker.distill:die:times=1,token={token}"
    try:
        gced = _fresh_pipeline(ctx)
        with BatchDistiller(gced, workers=2, backend="process") as batch:
            started = time.perf_counter()
            results = batch.distill_many(triples)
            batch_ms = 1000.0 * (time.perf_counter() - started)
            recovery = batch.executor.recovery_stats()
        assert recovery["pool_breaks"] == 1, (
            f"expected exactly one pool break, saw {recovery['pool_breaks']} "
            "(did the kill fault fire?)"
        )
        assert [r.evidence for r in results] == reference, (
            "recovered batch diverged from the serial reference"
        )
        return batch_ms, recovery["last_recovery_ms"]
    finally:
        os.environ.pop(ENV_VAR, None)
        uninstall()
        if os.path.exists(token):
            os.unlink(token)


def test_fault_recovery():
    ctx = get_context("squad11")
    examples = ctx.dataset.answerable_dev()[:N_EXAMPLES]
    triples = [(e.question, e.primary_answer, e.context) for e in examples]

    parent = _fresh_pipeline(ctx)
    reference = [parent.distill(*triple).evidence for triple in triples]

    # Healthy leg: same pool shape, no faults — the baseline wall-clock
    # a recovered batch is compared against in the context payload.
    gced = _fresh_pipeline(ctx)
    with BatchDistiller(gced, workers=2, backend="process") as batch:
        started = time.perf_counter()
        healthy = batch.distill_many(triples)
        healthy_ms = 1000.0 * (time.perf_counter() - started)
    assert [r.evidence for r in healthy] == reference

    batch_ms_runs, recovery_ms_runs = [], []
    for _ in range(N_ROUNDS):
        batch_ms, recovery_ms = _recovered_round(ctx, triples, reference)
        batch_ms_runs.append(batch_ms)
        recovery_ms_runs.append(recovery_ms)

    recovery_ms = statistics.median(recovery_ms_runs)
    recovered_batch_ms = statistics.median(batch_ms_runs)
    assert recovery_ms > 0.0, "executor reported no recovery time"

    lines = [
        f"fault recovery over {len(triples)} triples x {N_ROUNDS} rounds "
        "(one worker SIGKILLed mid-batch each round):",
        f"respawn-and-retry {recovery_ms:.1f}ms; recovered batch "
        f"{recovered_batch_ms:.1f}ms vs healthy {healthy_ms:.1f}ms; "
        "outputs byte-identical to serial every round",
    ]
    emit("fault_recovery", "\n".join(lines))
    emit_json(
        "fault_recovery",
        {
            "examples": len(triples),
            "rounds": N_ROUNDS,
            "healthy_batch_ms": round(healthy_ms, 3),
            "recovered_batch_ms": round(recovered_batch_ms, 3),
            "metrics": {
                "faults.recovery_ms": round(recovery_ms, 3),
            },
        },
    )
