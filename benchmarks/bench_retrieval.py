"""Retrieval subsystem throughput — index build, query, end-to-end ask.

Three measurements, all feeding the CI perf gate:

* **index build** (docs/sec): sharded inverted-index construction,
  serial vs thread-pool, with the byte-identity contract asserted on
  every run;
* **query** (queries/sec + p50/p95 ms): BM25 top-k over the built index,
  one query per dev example (question + answer terms);
* **ask** (asks/sec): the full open-context path — retrieve top-k,
  distill every candidate on the batch engine, re-rank by hybrid
  evidence score.

Results land in ``benchmarks/results/retrieval.{txt,json}``; the JSON
metrics are gated against ``baseline.json`` by ``perf_gate.py``.
"""

from __future__ import annotations

import statistics
import time

from benchmarks.common import emit, emit_json, get_context, sample_size

N_QUERIES = sample_size("BENCH_RETRIEVAL_QUERIES", 80)
N_ASKS = sample_size("BENCH_ASK_REQUESTS", 8)
BUILD_REPEATS = sample_size("BENCH_INDEX_BUILD_REPEATS", 5)


def _measure_build(docs: list[str], workers: int, backend: str):
    from repro.retrieval import CorpusRetriever, index_to_json

    started = time.perf_counter()
    for _ in range(BUILD_REPEATS):
        retriever = CorpusRetriever.build(
            docs, n_shards=4, workers=workers, backend=backend
        )
    elapsed = time.perf_counter() - started
    docs_per_sec = len(docs) * BUILD_REPEATS / elapsed
    return retriever, docs_per_sec, index_to_json(retriever.index)


def test_retrieval_throughput():
    from repro.core import BatchDistiller, OpenContextDistiller
    from repro.core.pipeline import GCED

    ctx = get_context("squad11")
    docs = list(ctx.dataset.contexts())
    examples = ctx.dataset.answerable_dev()

    retriever, serial_build, serial_bytes = _measure_build(docs, 1, "thread")
    _parallel, parallel_build, parallel_bytes = _measure_build(
        docs, 4, "thread"
    )
    assert parallel_bytes == serial_bytes, "parallel shard build diverged"

    queries = [
        f"{example.question} {example.primary_answer}"
        for example in (examples * (N_QUERIES // max(1, len(examples)) + 1))
    ][:N_QUERIES]
    latencies = []
    for query in queries:
        started = time.perf_counter()
        retriever.retrieve(query, k=3)
        latencies.append((time.perf_counter() - started) * 1000.0)
    queries_per_sec = 1000.0 * len(latencies) / sum(latencies)
    p50 = statistics.median(latencies)
    p95 = statistics.quantiles(latencies, n=20)[-1]

    gced = GCED(qa_model=ctx.artifacts.reader, artifacts=ctx.artifacts)
    with OpenContextDistiller(
        BatchDistiller(gced), retriever, top_k=2
    ) as distiller:
        started = time.perf_counter()
        outcomes = [
            distiller.ask(example.question, example.primary_answer)
            for example in examples[:N_ASKS]
        ]
        ask_elapsed = time.perf_counter() - started
    assert all(outcome.best is not None for outcome in outcomes)
    asks_per_sec = len(outcomes) / ask_elapsed

    lines = [
        "retrieval throughput (squad11 contexts)",
        f"  index build  serial   {serial_build:>9.1f} docs/s "
        f"({len(docs)} docs x {BUILD_REPEATS} builds)",
        f"  index build  thread:4 {parallel_build:>9.1f} docs/s (byte-identical)",
        f"  query top-3  {queries_per_sec:>9.1f} q/s   "
        f"p50 {p50:.2f}ms  p95 {p95:.2f}ms  ({len(queries)} queries)",
        f"  open-context ask (k=2) {asks_per_sec:>6.2f} asks/s "
        f"({len(outcomes)} asks, retrieve+distill+rank)",
    ]
    emit("retrieval", "\n".join(lines))
    emit_json(
        "retrieval",
        {
            "docs": len(docs),
            "queries": len(queries),
            "asks": len(outcomes),
            "query_latency_ms": {
                "p50": round(p50, 3),
                "p95": round(p95, 3),
            },
            "metrics": {
                "retrieval.build_docs_per_sec": round(serial_build, 2),
                "retrieval.queries_per_sec": round(queries_per_sec, 2),
                "retrieval.ask_per_sec": round(asks_per_sec, 2),
            },
        },
    )
