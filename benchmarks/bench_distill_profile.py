"""Hot-path profile of the distillation stages — gates the clip search.

Runs a cold pipeline over a squad11 dev slice and reports the per-call
cost of the two stages that dominate distillation time (``ase`` and
``oec``) plus the clip search's candidate-scoring throughput.  The full
per-stage/per-cache report lands in
``benchmarks/results/distill_profile.txt`` (uploaded as a CI artifact so
regressions are diagnosable from the workflow run); the JSON metrics feed
``benchmarks/perf_gate.py``:

* ``distill.oec_ms`` / ``distill.ase_ms`` — mean stage wall-clock per
  call.  Latency metrics (``*_ms``) gate in the *upward* direction, at
  double the base tolerance to absorb runner-hardware variance: the
  gate fails when they grow more than that above baseline.
* ``distill.clip_scores_per_sec`` — candidate-evidence scoring events
  (node-set cache lookups) per second of ``oec`` time; throughput, gated
  downward like the other ``*_per_sec`` metrics.
"""

from __future__ import annotations

from benchmarks.common import emit, emit_json, get_context, sample_size

N_EXAMPLES = sample_size("BENCH_N_EXAMPLES", 16)


def test_distill_stage_profile():
    from repro.core import BatchDistiller
    from repro.core.pipeline import GCED

    ctx = get_context("squad11")
    examples = ctx.dataset.answerable_dev()[:N_EXAMPLES]

    # Fresh pipeline (cold scorer/clip caches); the shared parser memo
    # stays warm, as in a long-lived deployment.
    gced = GCED(
        qa_model=ctx.artifacts.reader,
        artifacts=ctx.artifacts,
        parser=ctx.gced.wsptc.parser,
    )
    with BatchDistiller(gced) as batch:
        results = batch.distill_examples(examples)
    assert len(results) == len(examples)

    profile = batch.stats().profile
    oec = profile.stages["oec"]
    ase = profile.stages["ase"]
    assert oec.calls > 0 and ase.calls > 0
    clip_cache = profile.caches.get("clip_scores")
    clip_lookups = clip_cache.lookups if clip_cache is not None else 0
    clip_scores_per_sec = (
        round(clip_lookups / oec.seconds, 2) if oec.seconds else 0.0
    )

    emit("distill_profile", profile.report())
    emit_json(
        "distill_profile",
        {
            "examples": len(examples),
            "stages": {
                name: timing.to_dict()
                for name, timing in profile.stages.items()
            },
            "metrics": {
                "distill.oec_ms": round(oec.mean_ms, 3),
                "distill.ase_ms": round(ase.mean_ms, 3),
                "distill.clip_scores_per_sec": clip_scores_per_sec,
            },
        },
    )
