"""Hot-path profile of the distillation stages — gates the clip search.

Runs a cold pipeline over a squad11 dev slice, then re-distills the same
examples through a fresh :class:`BatchDistiller` sharing the warm
pipeline — the *repeated-context* workload modelling open-context
re-asks, ablation sweeps, and batch traffic whose finished-results memo
has aged out.  The full per-stage/per-cache report lands in
``benchmarks/results/distill_profile.txt`` (uploaded as a CI artifact so
regressions are diagnosable from the workflow run); the JSON metrics
feed ``benchmarks/perf_gate.py``:

* ``distill.oec_ms`` / ``distill.ase_ms`` — mean stage wall-clock per
  call on the *cold* pass.  Latency metrics (``*_ms``) gate in the
  *upward* direction, at double the base tolerance to absorb
  runner-hardware variance: the gate fails when they grow more than that
  above baseline.
* ``distill.clip_scores_per_sec`` — candidate-evidence scoring events
  (node-set cache lookups) per second of ``oec`` time over the whole
  workload (cold + repeated); throughput, gated downward like the other
  ``*_per_sec`` metrics.
* ``distill.clip_scores_hit_rate`` — shared-cache hit rate of the clip
  search over the whole workload; gated downward, so a regression back
  to per-call (non-content-keyed) sessions trips CI.
* ``qa.predict_ms`` / ``qa.predict_prepared_ms`` — mean single
  ``reader.predict`` latency on warm repeated contexts, through the
  compiled-context artifact vs the inline prepared path (compiler
  disabled); both gate upward.

The JSON payload also carries the parse / informativeness /
compiled-context hit rates and a ``repeated`` block with the
repeated-pass cache deltas; the repeated-context ``clip_scores`` hit
rate being 0% is a hard failure (cross-call session reuse broke), both
here and as a CI check on the uploaded artifact.
"""

from __future__ import annotations

import time

from benchmarks.common import emit, emit_json, get_context, sample_size

N_EXAMPLES = sample_size("BENCH_N_EXAMPLES", 16)
N_PREDICT_ROUNDS = sample_size("BENCH_PREDICT_ROUNDS", 5)


def _cache_counts(gced) -> dict[str, tuple[int, int]]:
    """Live (hits, misses) per shared cache."""
    return {
        name: cache.snapshot()[:2]
        for name, cache in gced.shared_caches().items()
    }


def _delta(after: dict, before: dict) -> dict[str, dict]:
    """Per-cache hit/miss deltas between two snapshots."""
    out = {}
    for name, (hits, misses) in after.items():
        hits0, misses0 = before.get(name, (0, 0))
        d_hits, d_misses = hits - hits0, misses - misses0
        lookups = d_hits + d_misses
        out[name] = {
            "hits": d_hits,
            "misses": d_misses,
            "hit_rate": round(d_hits / lookups, 4) if lookups else 0.0,
        }
    return out


def _clear_prediction_memos(reader) -> None:
    """Drop whole-prediction memos so predict re-runs span scoring.

    The compiled context memoizes the *final* prediction per (model,
    question); a latency metric over repeated pairs would otherwise
    measure a dictionary hit (~1µs), which is meaningless to gate and
    brittle against a near-zero baseline.  Clearing only the prediction
    memo keeps the artifact tables (tokens, preps, tags) warm — exactly
    the path ``qa.predict_ms`` exists to protect.
    """
    compiler = reader.context_compiler
    if compiler is None:
        return
    for _, compiled in compiler.cache.items():
        compiled._predictions.clear()


def _predict_ms(reader, pairs, rounds: int) -> float:
    """Mean warm predict latency over ``pairs``, ``rounds`` repetitions."""
    for question, context in pairs:  # warm caches (question + context side)
        reader.predict(question, context)
    elapsed = 0.0
    for _ in range(rounds):
        _clear_prediction_memos(reader)
        started = time.perf_counter()
        for question, context in pairs:
            reader.predict(question, context)
        elapsed += time.perf_counter() - started
    return 1000.0 * elapsed / (rounds * len(pairs))


def test_distill_stage_profile():
    from repro.core import BatchDistiller
    from repro.core.pipeline import GCED

    ctx = get_context("squad11")
    examples = ctx.dataset.answerable_dev()[:N_EXAMPLES]

    # Fresh pipeline (cold scorer/clip caches) AND a fresh compiled-
    # context cache: the shared reader's compiler is per-model state, so
    # without the reset the "cold" pass would inherit whatever earlier
    # benchmark modules compiled in the same pytest process, making the
    # *_ms metrics depend on file order.  Only the shared parser memo
    # stays warm, as in a long-lived deployment.
    from repro.qa.compiled import ContextCompiler

    reader = ctx.artifacts.reader
    saved_compiler = reader.context_compiler
    reader.context_compiler = ContextCompiler()
    try:
        gced = GCED(
            qa_model=reader,
            artifacts=ctx.artifacts,
            parser=ctx.gced.wsptc.parser,
        )
        with BatchDistiller(gced) as batch:
            results = batch.distill_examples(examples)
        assert len(results) == len(examples)

        cold_counts = _cache_counts(gced)
        cold_oec = gced.profile.stages["oec"]
        cold_ase = gced.profile.stages["ase"]
        assert cold_oec.calls > 0 and cold_ase.calls > 0
        cold_oec_ms = cold_oec.mean_ms
        cold_ase_ms = cold_ase.mean_ms

        # Repeated-context pass: a fresh distiller defeats the results
        # memo, so every example re-runs the stage plan against warm
        # content-keyed sessions and compiled contexts.
        with BatchDistiller(gced) as repeat:
            repeated = repeat.distill_examples(examples)
        assert [r.evidence for r in repeated] == [
            r.evidence for r in results
        ]
        repeat_delta = _delta(_cache_counts(gced), cold_counts)
        # Cross-call session reuse is the point of the repeated workload:
        # a 0% clip_scores hit rate means sessions went back to per-call.
        assert repeat_delta["clip_scores"]["hits"] > 0, (
            "repeated-context workload produced no clip_scores cache "
            "hits — cross-call session reuse is broken"
        )

        # Cumulative profile over both passes: stage timings and shared-
        # cache counters accumulate on the shared pipeline, so the repeat
        # distiller's stats view already covers the whole workload.
        profile = repeat.stats().profile
        total_oec = gced.profile.stages["oec"]
        clip_cache = gced.scoring_engine.cache.snapshot()
        clip_lookups = clip_cache.hits + clip_cache.misses
        clip_scores_per_sec = (
            round(clip_lookups / total_oec.seconds, 2)
            if total_oec.seconds
            else 0.0
        )
        clip_hit_rate = (
            round(clip_cache.hits / clip_lookups, 4) if clip_lookups else 0.0
        )

        # Warm single-predict latency: compiled artifact vs inline
        # prepared path, on the question/paragraph mix the repeated
        # workload serves.
        pairs = [(e.question, e.context) for e in examples[:8]]
        predict_compiled_ms = _predict_ms(reader, pairs, N_PREDICT_ROUNDS)
        reader.context_compiler = None
        predict_prepared_ms = _predict_ms(reader, pairs, N_PREDICT_ROUNDS)

        hit_rates = {
            name: stats["hit_rate"]
            for name, stats in _delta(_cache_counts(gced), {}).items()
            if name in ("clip_scores", "parse", "informativeness",
                        "compiled_contexts", "clip_sessions")
        }
    finally:
        reader.context_compiler = saved_compiler

    emit("distill_profile", profile.report())
    emit_json(
        "distill_profile",
        {
            "examples": len(examples),
            "repeated_examples": len(examples),
            "stages": {
                name: timing.to_dict()
                for name, timing in profile.stages.items()
            },
            "cache_hit_rates": hit_rates,
            "repeated": repeat_delta,
            "metrics": {
                "distill.oec_ms": round(cold_oec_ms, 3),
                "distill.ase_ms": round(cold_ase_ms, 3),
                "distill.clip_scores_per_sec": clip_scores_per_sec,
                "distill.clip_scores_hit_rate": clip_hit_rate,
                "qa.predict_ms": round(predict_compiled_ms, 3),
                "qa.predict_prepared_ms": round(predict_prepared_ms, 3),
            },
        },
    )
