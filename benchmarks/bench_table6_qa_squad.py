"""Table VI — QA baselines vs +GCED (ground-truth evidences), SQuAD.

Paper: every baseline improves when the context is replaced by the
distilled evidence (avg +3.5 EM / +1.5 F1 on 1.1, +4.1/+4.2 on 2.0).
Reproduced shape: every model's +GCED EM/F1 >= its baseline, positive mean
gain.
"""

import numpy as np

from repro.eval import qa_augmentation_table

from benchmarks.common import emit, emit_table, get_context

N_EXAMPLES = 60


def _check_and_summarize(rows, name):
    gains_em = [r["EM+GCED"] - r["EM"] for r in rows]
    gains_f1 = [r["F1+GCED"] - r["F1"] for r in rows]
    assert sum(1 for g in gains_em if g >= 0) >= 8, "nearly all models improve"
    assert np.mean(gains_em) > 0
    emit(
        f"{name}_summary",
        f"{name}: mean EM gain {np.mean(gains_em):+.2f}, "
        f"mean F1 gain {np.mean(gains_f1):+.2f} "
        f"(paper: +3.5/+1.5 on 1.1, +4.1/+4.2 on 2.0)",
    )


def test_table6_squad11(benchmark):
    ctx = get_context("squad11")
    rows = benchmark.pedantic(
        lambda: qa_augmentation_table(ctx, n_examples=N_EXAMPLES),
        rounds=1,
        iterations=1,
    )
    emit_table("table6_qa_squad11", rows, "Table VI — EM/F1 vs +GCED (SQuAD-1.1)")
    _check_and_summarize(rows, "table6_squad11")


def test_table6_squad20(benchmark):
    ctx = get_context("squad20")
    rows = benchmark.pedantic(
        lambda: qa_augmentation_table(ctx, n_examples=N_EXAMPLES),
        rounds=1,
        iterations=1,
    )
    emit_table("table6_qa_squad20", rows, "Table VI — EM/F1 vs +GCED (SQuAD-2.0)")
    _check_and_summarize(rows, "table6_squad20")
