"""Ingest durability cost — gates WAL throughput and crash recovery.

Two legs, both over the real :class:`~repro.retrieval.ingest.IngestManager`:

* **Throughput** — group-committed adds (append + crc + fsync per batch)
  into a fresh directory; ``ingest.docs_per_sec`` is the sustained
  durable-write rate, gated downward.  A regression here means the WAL
  write path grew an extra fsync, copy, or serialization pass.
* **Crash recovery** — a child process ingests the same corpus and is
  SIGKILLed mid-stream by a deterministic ``REPRO_FAULTS`` plan
  (``wal.append:die``, one-shot via a token file); the parent then times
  a cold :meth:`IngestManager.open` over the survivor directory.
  ``ingest.recovery_ms`` is the median torn-tail-truncate + replay
  wall-clock, gated upward.  Every round asserts no acknowledged write
  was lost and that the recovered index equals an independent offline
  rebuild (segment + WAL replay) — recovery must be correct, not just
  fast.

JSON metrics feed ``benchmarks/perf_gate.py``:

* ``ingest.docs_per_sec`` — durable ingest throughput (gated downward).
* ``ingest.recovery_ms`` — median crash-recovery wall-clock (gated
  upward, like every ``_ms`` key).

A kill-during-compaction recovery time rides along as context.
"""

from __future__ import annotations

import os
import pathlib
import statistics
import subprocess
import sys
import tempfile
import time

from benchmarks.common import emit, emit_json, sample_size

from repro.faults import ENV_VAR
from repro.retrieval import (
    BM25Scorer,
    IngestManager,
    MutableInvertedIndex,
    load_segment,
    replay_directory,
)

N_DOCS = sample_size("BENCH_INGEST_DOCS", 240)
BATCH = sample_size("BENCH_INGEST_BATCH", 8)
N_ROUNDS = sample_size("BENCH_INGEST_ROUNDS", 3)

SEED_CORPUS = [
    "the battle of hastings was fought in 1066",
    "denver broncos won the super bowl title",
    "beyonce was born and raised in houston texas",
    "the norman conquest followed the battle of hastings",
]

_CHILD = """
import sys
from repro.faults import install_from_env
from repro.retrieval import IngestManager

install_from_env()
directory, n_docs, batch = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
seed = {seed!r}
mode = sys.argv[4]
manager = IngestManager.open(directory, base_corpus=seed)
for start in range(0, n_docs, batch):
    texts = [
        f"synthetic corpus paragraph {{i}} about topic{{i % 17}} "
        f"entity{{i % 29}} token{{i}}"
        for i in range(start, min(start + batch, n_docs))
    ]
    ids = manager.add_documents(texts)
    for doc_id in ids:
        print(f"ACK {{doc_id}}", flush=True)
    if mode == "compact" and start >= n_docs // 2:
        manager.compact()
        print("ACK compact", flush=True)
print("DONE", flush=True)
"""


def _doc_text(i: int) -> str:
    return (
        f"synthetic corpus paragraph {i} about topic{i % 17} "
        f"entity{i % 29} token{i}"
    )


def _throughput_leg(directory: pathlib.Path) -> float:
    with IngestManager.open(directory, base_corpus=SEED_CORPUS) as manager:
        started = time.perf_counter()
        for start in range(0, N_DOCS, BATCH):
            manager.add_documents(
                [_doc_text(i) for i in range(start, min(start + BATCH, N_DOCS))]
            )
        elapsed = time.perf_counter() - started
        assert manager.stats()["docs_added"] == N_DOCS
    return N_DOCS / elapsed


def _offline_rebuild(directory: pathlib.Path) -> MutableInvertedIndex:
    segment = load_segment(directory / "segment.json")
    reference = MutableInvertedIndex(segment.index, segment.tombstones)
    records, _torn = replay_directory(directory / "wal")
    for record in records:
        if record.seq <= segment.applied_seq:
            continue
        if record.op == "add":
            reference.apply_add(record.doc_id, record.text)
        else:
            reference.apply_delete(record.doc_id)
    return reference


def _crashed_round(directory: pathlib.Path, plan: str, mode: str) -> float:
    """SIGKILL a child mid-ingest; return the parent's recovery ms."""
    with tempfile.NamedTemporaryFile(delete=False) as handle:
        token = handle.name
    try:
        result = subprocess.run(
            [
                sys.executable,
                "-c",
                _CHILD.format(seed=SEED_CORPUS),
                str(directory),
                str(N_DOCS),
                str(BATCH),
                mode,
            ],
            capture_output=True,
            text=True,
            timeout=300,
            env={**os.environ, ENV_VAR: f"{plan},token={token}"},
        )
    finally:
        if os.path.exists(token):
            os.unlink(token)
    lines = result.stdout.splitlines()
    assert "DONE" not in lines, (
        f"kill plan {plan!r} never fired ({result.stderr[-400:]!r})"
    )
    assert result.returncode != 0
    acked = [
        int(line.split()[1]) for line in lines if line.startswith("ACK ")
        and line != "ACK compact"
    ]
    assert acked, "child died before acknowledging any write"

    started = time.perf_counter()
    manager = IngestManager.open(directory)
    recovery_ms = 1000.0 * (time.perf_counter() - started)
    try:
        for doc_id in acked:
            assert manager.index.doc_text(doc_id), (
                f"acknowledged write {doc_id} lost after {plan!r}"
            )
        reference = _offline_rebuild(directory)
        assert manager.index.docs == reference.docs
        scorer = BM25Scorer()
        for query in ("topic3 entity7", "token11", "battle of hastings"):
            assert scorer.score_all(manager.index, query) == (
                scorer.score_all(reference, query)
            ), "recovered index diverged from the offline rebuild"
    finally:
        manager.close()
    return recovery_ms


def test_ingest_recovery(tmp_path):
    docs_per_sec = _throughput_leg(tmp_path / "throughput")

    kill_after = max(2, (N_DOCS // BATCH) // 2)
    recovery_runs = []
    for round_no in range(N_ROUNDS):
        recovery_runs.append(
            _crashed_round(
                tmp_path / f"crash-{round_no}",
                f"wal.append:die:times=1,skip={kill_after * BATCH}",
                "ingest",
            )
        )
    recovery_ms = statistics.median(recovery_runs)
    assert recovery_ms > 0.0

    compact_recovery_ms = _crashed_round(
        tmp_path / "crash-compact",
        "compaction.run:die:times=1,match=swap",
        "compact",
    )

    lines = [
        f"durable ingest over {N_DOCS} docs (batch={BATCH}, fsync per "
        f"batch) x {N_ROUNDS} crash rounds:",
        f"throughput {docs_per_sec:.0f} docs/s; crash recovery "
        f"{recovery_ms:.1f}ms (median), kill-during-compaction recovery "
        f"{compact_recovery_ms:.1f}ms; no acknowledged write lost, "
        "recovered index equals the offline rebuild every round",
    ]
    emit("ingest_recovery", "\n".join(lines))
    emit_json(
        "ingest_recovery",
        {
            "docs": N_DOCS,
            "batch": BATCH,
            "rounds": N_ROUNDS,
            "compact_recovery_ms": round(compact_recovery_ms, 3),
            "metrics": {
                "ingest.docs_per_sec": round(docs_per_sec, 3),
                "ingest.recovery_ms": round(recovery_ms, 3),
            },
        },
    )
