"""Telemetry overhead — gates the cost of the obs plane on the hot path.

Two questions, answered separately because they need different
instruments:

1. **Does tracing change results?**  One traced and one untraced leg
   distill the same squad11 dev triples through fresh pipelines; the
   evidence outputs must be byte-identical.  Tracing observes the
   pipeline, it never steers it.
2. **What does tracing cost?**  Naive A/B wall-clock legs cannot answer
   this on shared hardware: identical ~100ms legs vary by tens of
   percent under CPU steal and frequency scaling, drowning a ~1%
   effect.  Instead the bench measures *floors* — ``timeit``-style
   minimums of tight loops, which converge on the true cost because
   interference only ever adds time:

   * the enabled per-span cost (enter + exit + record, min over several
     windows of thousands of spans);
   * the disabled per-span cost (the null-span fast path: one
     contextvar read);
   * spans recorded per distill (deterministic — counted, not timed);
   * the per-distill floor (median across triples of each triple's
     fastest cold-pipeline run).

   ``overhead = spans_per_distill * enabled_span_cost / distill_floor``
   then resolves to a fraction of a percent even on a noisy box.

JSON metrics feed ``benchmarks/perf_gate.py``:

* ``obs.overhead_pct`` — traced-path overhead per distill, as above.
  Gated against an *absolute* ceiling of a few percent in
  ``perf_gate.py`` rather than relative to a baseline — a near-zero
  noisy number would flake any ratio-based comparison.

The component floors and the disabled-path overhead (which should be an
order of magnitude smaller still) ride along as context.
"""

from __future__ import annotations

import time

from benchmarks.common import emit, emit_json, get_context, sample_size

N_EXAMPLES = sample_size("BENCH_OBS_EXAMPLES", 12)
N_ROUNDS = sample_size("BENCH_OBS_ROUNDS", 5)
SPAN_LOOP = sample_size("BENCH_OBS_SPAN_LOOP", 20_000)
SPAN_WINDOWS = sample_size("BENCH_OBS_SPAN_WINDOWS", 5)


def _fresh_pipeline(ctx):
    """A pipeline with cold caches sharing only the trained artifacts."""
    from repro.core.pipeline import GCED
    from repro.parsing.dependency import SyntacticParser

    return GCED(
        qa_model=ctx.artifacts.reader,
        artifacts=ctx.artifacts,
        parser=SyntacticParser(),
    )


def _distill_all(ctx, triples, traced):
    """Distill every triple through one cold pipeline.

    Returns ``(evidence_outputs, span_count)``; the traced leg opens a
    real trace so every span on the distill path records.
    """
    from repro.obs import start_trace

    gced = _fresh_pipeline(ctx)
    if traced:
        with start_trace("bench.obs_overhead") as handle:
            results = [gced.distill(*triple) for triple in triples]
        return [r.evidence for r in results], len(handle.trace.spans)
    results = [gced.distill(*triple) for triple in triples]
    return [r.evidence for r in results], 0


def _span_floor_us(traced):
    """Per-span cost floor: min over windows of a tight span loop."""
    from repro.obs import start_trace
    from repro.obs.trace import span

    best = float("inf")
    for _ in range(SPAN_WINDOWS):
        if traced:
            with start_trace("bench.span_floor"):
                started = time.perf_counter()
                for _ in range(SPAN_LOOP):
                    with span("bench.span"):
                        pass
                elapsed = time.perf_counter() - started
        else:
            started = time.perf_counter()
            for _ in range(SPAN_LOOP):
                with span("bench.span"):
                    pass
            elapsed = time.perf_counter() - started
        best = min(best, 1e6 * elapsed / SPAN_LOOP)
    return best


def _distill_floor_ms(ctx, triples):
    """Typical per-distill floor: median across triples of each
    triple's fastest run over ``N_ROUNDS`` cold pipelines."""
    per_triple = [float("inf")] * len(triples)
    for _ in range(N_ROUNDS):
        gced = _fresh_pipeline(ctx)
        for index, triple in enumerate(triples):
            started = time.perf_counter()
            gced.distill(*triple)
            per_triple[index] = min(
                per_triple[index], time.perf_counter() - started
            )
    ordered = sorted(per_triple)
    return 1000.0 * ordered[len(ordered) // 2]


def test_obs_overhead():
    ctx = get_context("squad11")
    examples = ctx.dataset.answerable_dev()[:N_EXAMPLES]
    triples = [(e.question, e.primary_answer, e.context) for e in examples]

    # Byte-identity: traced and untraced legs must produce the same
    # evidence (and this doubles as warmup for shared per-model state).
    untraced_out, _ = _distill_all(ctx, triples, traced=False)
    traced_out, total_spans = _distill_all(ctx, triples, traced=True)
    assert traced_out == untraced_out, (
        "distill outputs diverged between traced and untraced legs"
    )
    assert total_spans > 0, "traced leg recorded no spans"
    # Root span excluded: it belongs to the whole leg, not to a distill.
    spans_per_distill = (total_spans - 1) / len(triples)

    enabled_span_us = _span_floor_us(traced=True)
    disabled_span_us = _span_floor_us(traced=False)
    distill_floor_ms = _distill_floor_ms(ctx, triples)

    distill_floor_us = 1000.0 * distill_floor_ms
    overhead_pct = 100.0 * enabled_span_us * spans_per_distill / distill_floor_us
    disabled_pct = (
        100.0 * disabled_span_us * spans_per_distill / distill_floor_us
    )

    emit(
        "obs_overhead",
        "telemetry overhead: "
        f"{spans_per_distill:.1f} spans/distill x {enabled_span_us:.2f}us "
        f"enabled ({disabled_span_us:.3f}us disabled) over a "
        f"{distill_floor_ms:.2f}ms distill floor -> "
        f"{overhead_pct:.2f}% traced, {disabled_pct:.3f}% untraced "
        f"(outputs byte-identical over {len(triples)} triples)",
    )
    emit_json(
        "obs_overhead",
        {
            "examples": len(triples),
            "rounds": N_ROUNDS,
            "spans_per_distill": round(spans_per_distill, 2),
            "enabled_span_us": round(enabled_span_us, 3),
            "disabled_span_us": round(disabled_span_us, 4),
            "distill_floor_ms": round(distill_floor_ms, 3),
            "disabled_overhead_pct": round(disabled_pct, 4),
            "metrics": {"obs.overhead_pct": round(overhead_pct, 3)},
        },
    )
