"""Table V — Human evaluation of distilled evidences on TriviaQA-Web/Wiki.

Paper: scores slightly below the SQuAD band (0.76-0.86) — TriviaQA is
noisier.  Reproduced shape: all rows above 0.6 with predicted ≈ ground
truth.
"""

from repro.eval import human_evaluation_table

from benchmarks.common import emit_table, get_context

N_EXAMPLES = 16


def _check(rows):
    for row in rows:
        assert 0.55 < row["H"] <= 1.0, row


def test_table5_triviaqa_web(benchmark):
    ctx = get_context("triviaqa-web")
    rows = benchmark.pedantic(
        lambda: human_evaluation_table(ctx, n_examples=N_EXAMPLES),
        rounds=1,
        iterations=1,
    )
    emit_table(
        "table5_human_triviaqa_web", rows, "Table V — Human evaluation (TriviaQA-Web)"
    )
    _check(rows)


def test_table5_triviaqa_wiki(benchmark):
    ctx = get_context("triviaqa-wiki")
    rows = benchmark.pedantic(
        lambda: human_evaluation_table(ctx, n_examples=N_EXAMPLES),
        rounds=1,
        iterations=1,
    )
    emit_table(
        "table5_human_triviaqa_wiki", rows, "Table V — Human evaluation (TriviaQA-Wiki)"
    )
    _check(rows)
