"""Service behaviour past capacity — coalescing and load shedding.

Two phases against the real HTTP serving stack, configured with a small
admission queue so saturation is reachable on a laptop:

1. **Coalesce** — rounds of identical concurrent requests for a triple
   the service has never seen, released together through a barrier.  The
   engine must be invoked exactly once per round (coalescing for the
   concurrent copies, the content-keyed memo for stragglers), proven by
   the distiller's ``n_distilled`` delta.
2. **Saturation** — open-loop traffic: one thread per request, each
   firing at its scheduled instant regardless of completions, with the
   inter-arrival gap pinned well below the measured per-request service
   time.  The bounded queue must shed the overflow as ``429`` responses
   that all carry ``Retry-After``, while admitted requests keep a
   bounded p95 (the queue, not the client, absorbs the overload).

Metrics land in ``benchmarks/results/service_saturation.{txt,json}``;
``service.shed_rate`` and ``service.coalesce_hit_rate`` are gated by
CI's perf gate (``benchmarks/perf_gate.py``), and the saturated p50/p95
ride along as context (service latency percentiles stay context-only —
absolute wall-clock under a thread storm varies too much across runner
hardware to gate).
"""

from __future__ import annotations

import threading
import time

from benchmarks.common import N_DEV, N_TRAIN, SEED, emit, emit_json, sample_size

MAX_QUEUE_DEPTH = 8
MAX_BATCH_SIZE = 4
# High enough that a barrier-released burst is still queued (coalescing
# window), low enough that saturation-phase batches flush promptly.
MAX_WAIT_MS = 25.0

COALESCE_ROUNDS = sample_size("BENCH_COALESCE_ROUNDS", 3)
COALESCE_CLIENTS = 8
SATURATION_REQUESTS = sample_size("BENCH_SATURATION_REQUESTS", 96)
# Open-loop arrival rate = this multiple of the measured *serial*
# capacity.  Micro-batching raises effective capacity well past serial,
# so this must sit far beyond the knee for a stable shed rate.
OVERLOAD_FACTOR = 8.0


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1)))
    return sorted_values[index]


def _probe_triples(examples, count: int, tag: str):
    """``count`` unique triples the service has never distilled.

    A nonce in the question makes each triple content-distinct (no memo
    hits, full engine work) while the context stays a real paragraph.
    """
    triples = []
    for i in range(count):
        example = examples[i % len(examples)]
        triples.append(
            (
                f"{example.question} [{tag} {i}]",
                example.primary_answer,
                example.context,
            )
        )
    return triples


def _run_coalesce_phase(service, client, triples) -> dict:
    """Barrier-released identical bursts: one engine invocation each."""
    from repro.service import ServiceError

    before = client.stats()["scheduler"]
    invocations = []
    for triple in triples:
        distilled_before = service.distiller.stats().n_distilled
        barrier = threading.Barrier(COALESCE_CLIENTS)
        payloads: list[dict] = []
        errors: list[Exception] = []
        lock = threading.Lock()

        def one():
            barrier.wait()
            try:
                payload = client.distill(*triple)
            except ServiceError as exc:  # pragma: no cover - would fail below
                with lock:
                    errors.append(exc)
                return
            with lock:
                payloads.append(payload)

        threads = [
            threading.Thread(target=one) for _ in range(COALESCE_CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, f"coalesce burst errored: {errors[0]}"
        assert len(payloads) == COALESCE_CLIENTS
        # Every copy of the burst saw the same evidence.
        evidences = {payload["evidence"] for payload in payloads}
        assert len(evidences) == 1
        invocations.append(
            service.distiller.stats().n_distilled - distilled_before
        )
    # N identical concurrent requests -> exactly 1 engine invocation.
    assert invocations == [1] * len(triples), invocations
    after = client.stats()["scheduler"]
    submitted = after["submitted"] - before["submitted"]
    coalesced = after["coalesced"] - before["coalesced"]
    return {
        "rounds": len(triples),
        "clients_per_round": COALESCE_CLIENTS,
        "engine_invocations": sum(invocations),
        "submitted": submitted,
        "coalesced": coalesced,
        "coalesce_hit_rate": round(coalesced / submitted, 4)
        if submitted
        else 0.0,
    }


def _run_saturation_phase(service, client, triples, interval_s: float) -> dict:
    """Open-loop dispatch: fire request i at t0 + i*interval, no matter what."""
    from repro.service import ServiceError

    latencies: list[float] = []
    shed: list[float] = []
    failures: list[str] = []
    depth_samples: list[int] = []
    lock = threading.Lock()
    t0 = time.perf_counter() + 0.1

    def one(index: int, triple) -> None:
        delay = t0 + index * interval_s - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        started = time.perf_counter()
        try:
            payload = client.distill(*triple)
        except ServiceError as exc:
            with lock:
                if exc.status == 429 and exc.retry_after is not None:
                    shed.append(exc.retry_after)
                else:
                    failures.append(f"HTTP {exc.status}: {exc}")
            return
        elapsed = time.perf_counter() - started
        with lock:
            latencies.append(elapsed)
            assert "evidence" in payload

    threads = [
        threading.Thread(target=one, args=(i, triple))
        for i, triple in enumerate(triples)
    ]
    for thread in threads:
        thread.start()
    # Sample the queue while the storm is in flight: the bound must hold.
    while any(thread.is_alive() for thread in threads):
        depth_samples.append(client.stats()["scheduler"]["queue_depth"])
        time.sleep(0.02)
    for thread in threads:
        thread.join(timeout=120)

    assert not failures, f"non-shed failure under saturation: {failures[0]}"
    total = len(triples)
    assert len(latencies) + len(shed) == total
    # Past capacity the bounded queue must shed, but not everything: the
    # queue's worth of admitted requests still completes.
    assert 0 < len(shed) < total, (len(shed), total)
    assert all(hint > 0 for hint in shed), "a 429 lacked Retry-After"
    assert max(depth_samples, default=0) <= MAX_QUEUE_DEPTH
    latencies.sort()
    return {
        "requests": total,
        "interval_ms": round(1000 * interval_s, 2),
        "completed": len(latencies),
        "shed": len(shed),
        "shed_rate": round(len(shed) / total, 4),
        "max_observed_queue_depth": max(depth_samples, default=0),
        "retry_after_mean_s": round(sum(shed) / len(shed), 3),
        "p50_ms": round(1000 * _percentile(latencies, 0.50), 2),
        "p95_ms": round(1000 * _percentile(latencies, 0.95), 2),
    }


def test_service_saturation():
    from repro.service import DistillService, ServiceClient, ServiceConfig
    from repro.service.server import start_server

    service = DistillService.build(
        ServiceConfig(
            dataset="squad11",
            seed=SEED,
            n_train=N_TRAIN,
            n_dev=N_DEV,
            max_batch_size=MAX_BATCH_SIZE,
            max_wait_ms=MAX_WAIT_MS,
            max_queue_depth=MAX_QUEUE_DEPTH,
        )
    )
    examples = service.dataset.answerable_dev()
    assert examples, "no dev examples to serve"

    server, _thread = start_server(service, quiet=True)
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}", timeout=120)
    try:
        assert client.healthz()["status"] == "ok"
        # Warm the shared stage caches so the service-time estimate (and
        # the saturation run) measure steady-state work, not cold fills.
        warmup = _probe_triples(examples, 8, "warmup")
        started = time.perf_counter()
        for triple in warmup:
            client.distill(*triple)
        service_time_s = (time.perf_counter() - started) / len(warmup)

        coalesce = _run_coalesce_phase(
            service, client, _probe_triples(examples, COALESCE_ROUNDS, "co")
        )
        saturation = _run_saturation_phase(
            service,
            client,
            _probe_triples(examples, SATURATION_REQUESTS, "sat"),
            interval_s=service_time_s / OVERLOAD_FACTOR,
        )
        scheduler = client.stats()["scheduler"]
    finally:
        server.shutdown()
        server.server_close()
        service.close()

    lines = [
        "service saturation, HTTP + bounded admission on squad11 "
        f"(queue depth {MAX_QUEUE_DEPTH}, ~{OVERLOAD_FACTOR:g}x overload)",
        f"  coalesce: {coalesce['rounds']} rounds x "
        f"{coalesce['clients_per_round']} identical concurrent requests -> "
        f"{coalesce['engine_invocations']} engine invocations "
        f"(hit rate {coalesce['coalesce_hit_rate']:.2f})",
        f"  shedding: {saturation['shed']}/{saturation['requests']} shed "
        f"({saturation['shed_rate']:.0%}), max queue depth observed "
        f"{saturation['max_observed_queue_depth']}, mean Retry-After "
        f"{saturation['retry_after_mean_s']:.2f}s",
        f"  admitted: {saturation['completed']} served, "
        f"p50={saturation['p50_ms']:.2f}ms p95={saturation['p95_ms']:.2f}ms "
        f"at {saturation['interval_ms']:.1f}ms inter-arrival",
        f"  scheduler totals: {scheduler['shed']} shed, "
        f"{scheduler['coalesced']} coalesced, "
        f"mean batch {scheduler['mean_batch_size']:.1f}",
    ]
    emit("service_saturation", "\n".join(lines))
    emit_json(
        "service_saturation",
        {
            "config": {
                "max_queue_depth": MAX_QUEUE_DEPTH,
                "max_batch_size": MAX_BATCH_SIZE,
                "max_wait_ms": MAX_WAIT_MS,
                "overload_factor": OVERLOAD_FACTOR,
            },
            "coalesce": coalesce,
            "saturation": saturation,
            "scheduler": scheduler,
            "metrics": {
                "service.shed_rate": saturation["shed_rate"],
                "service.coalesce_hit_rate": coalesce["coalesce_hit_rate"],
            },
            "latency_ms": {
                "service.saturated": {
                    "p50": saturation["p50_ms"],
                    "p95": saturation["p95_ms"],
                }
            },
        },
    )
