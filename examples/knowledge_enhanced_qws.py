"""Knowledge-enhanced QWS — the paper's future-work extension, working.

Sec. IV-G's failure case: for "In the Bible, who was the mother of
Solomon?" GCED distilled an unreadable evidence because it "doesn't have
knowledge to know the relationship among child, David, and wife".  With an
entity knowledge graph plugged into QWS, the question entity "Solomon"
expands through David to Bathsheba, so the right sentence material becomes
protected clue words and the distilled evidence improves.

Run:  python examples/knowledge_enhanced_qws.py
"""

from repro import GCED, QATrainer
from repro.lexicon import KnowledgeGraph

CORPUS = [
    "Solomon was the child of David and his wife Bathsheba according to "
    "the scriptures. David ruled the kingdom for forty years before his "
    "death. The court in the capital grew famous during those years.",
    "The temple in the capital was completed after seven years of "
    "construction. Many workers carried stone from the quarries in the "
    "mountains.",
]

QUESTION = "Who was the mother of Solomon?"
ANSWER = "Bathsheba"


def main() -> None:
    artifacts = QATrainer(seed=0).train(CORPUS)

    # Without world knowledge: QWS only matches lexical relatives of
    # "mother" and "Solomon".
    plain = GCED(qa_model=artifacts.reader, artifacts=artifacts)
    plain_result = plain.distill(QUESTION, ANSWER, CORPUS[0])

    # With a knowledge graph: Solomon --child_of--> David --married_to-->
    # Bathsheba, so "David" and "wife"-sentence material become clues.
    graph = KnowledgeGraph()
    graph.add_triples(
        [
            ("Solomon", "child_of", "David"),
            ("David", "married_to", "Bathsheba"),
            ("Solomon", "built", "the temple"),
        ]
    )
    knowing = GCED(
        qa_model=artifacts.reader, artifacts=artifacts, knowledge=graph
    )
    knowing_result = knowing.distill(QUESTION, ANSWER, CORPUS[0])

    print(f"Q: {QUESTION}")
    print(f"A: {ANSWER}\n")
    print("Without knowledge graph:")
    print(f"  clue words : {', '.join(plain_result.qws.clue_words) or '(none)'}")
    print(f"  evidence   : {plain_result.evidence}")
    print(f"  readability: {plain_result.scores.readability:.3f}\n")
    print("With knowledge graph (Solomon -> David -> Bathsheba):")
    print(f"  clue words : {', '.join(knowing_result.qws.clue_words)}")
    print(f"  evidence   : {knowing_result.evidence}")
    print(f"  readability: {knowing_result.scores.readability:.3f}\n")
    print(
        "The knowledge graph protects the David bridge, so the clip step "
        "can no longer cut 'the child of David' out of the evidence."
    )
    path = graph.relation_path("Solomon", "Bathsheba")
    print("Relation chain used:", " ; ".join(path or []))


if __name__ == "__main__":
    main()
