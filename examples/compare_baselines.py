"""Compare GCED against sentence-level and trivial evidence baselines.

Reproduces the paper's Fig. 1 argument quantitatively: sentence-level
evidences are informative but verbose; answer windows are concise but cut
through syntax; GCED balances all three criteria.

Run:  python examples/compare_baselines.py
"""

from repro import GCED, QATrainer
from repro.baselines import (
    FullContextBaseline,
    RandomSpanBaseline,
    SentenceSelectorBaseline,
    WindowBaseline,
)
from repro.datasets import load_dataset
from repro.eval.tables import format_table
from repro.text.tokenizer import word_tokens


def main() -> None:
    dataset = load_dataset("squad11", seed=2, n_train=60, n_dev=30)
    artifacts = QATrainer(seed=0).train(dataset.contexts())
    gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)

    baselines = [
        FullContextBaseline(),
        SentenceSelectorBaseline(artifacts.reader),
        WindowBaseline(window=6),
        RandomSpanBaseline(seed=0),
    ]

    examples = dataset.answerable_dev()[:15]
    rows = []
    for name, extract in [(b.name, b.extract) for b in baselines] + [
        ("GCED", lambda q, a, c: gced.distill(q, a, c).evidence)
    ]:
        informativeness, readability, lengths = [], [], []
        for example in examples:
            evidence = extract(
                example.question, example.primary_answer, example.context
            )
            scores = gced.scorer.score(
                example.question, example.primary_answer, evidence
            )
            informativeness.append(max(0.0, scores.informativeness))
            readability.append(scores.readability)
            lengths.append(len(word_tokens(evidence)))
        n = len(examples)
        rows.append(
            {
                "method": name,
                "I": sum(informativeness) / n,
                "R": sum(readability) / n,
                "mean_words": sum(lengths) / n,
            }
        )
    print(format_table(rows, title="Evidence extraction methods compared"))
    gced_row = next(r for r in rows if r["method"] == "GCED")
    sentence_row = next(r for r in rows if r["method"] == "sentence-selector")
    print(
        f"\nGCED keeps informativeness within {abs(gced_row['I'] - sentence_row['I']):.2f} "
        f"of sentence selection while using "
        f"{gced_row['mean_words']:.1f} vs {sentence_row['mean_words']:.1f} words."
    )


if __name__ == "__main__":
    main()
