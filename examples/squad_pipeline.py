"""SQuAD-style end-to-end pipeline: generate data, distill, measure gains.

Reproduces the Table VI experiment in miniature: distilled ground-truth
evidences replace the contexts, and every simulated baseline improves.

Run:  python examples/squad_pipeline.py
"""

from repro.eval import (
    ExperimentContext,
    format_table,
    qa_augmentation_table,
    reduction_statistics,
)


def main() -> None:
    print("Building SQuAD-1.1 experiment context (dataset + artifacts + models)...")
    ctx = ExperimentContext.build("squad11", seed=0, n_train=80, n_dev=40)

    print("\nSample distillation:")
    example = ctx.dataset.answerable_dev()[0]
    result = ctx.gold_evidence(example)
    print(f"  Q: {example.question}")
    print(f"  A: {example.primary_answer}")
    print(f"  context ({len(example.context)} chars): {example.context[:120]}...")
    print(f"  evidence: {result.evidence}")

    print("\nQA augmentation (Table VI shape):")
    rows = qa_augmentation_table(ctx, n_examples=30)
    print(format_table(rows))
    mean_gain = sum(r["EM+GCED"] - r["EM"] for r in rows) / len(rows)
    print(f"\nMean EM gain from +GCED: {mean_gain:+.2f} points")

    stats = reduction_statistics(ctx, n_examples=20)
    print(
        f"Word reduction: {100 * stats['mean_reduction']:.1f}% "
        f"({stats['mean_context_words']:.0f} -> "
        f"{stats['mean_evidence_words']:.0f} words per context)"
    )


if __name__ == "__main__":
    main()
