"""Batch distillation with JSONL export and an HTML review page.

The deployment workflow: distill evidences for a whole dataset split with
the cache-aware batch runner, persist them as JSONL for the serving layer,
and render an HTML page a reviewer can open to audit the evidences.

Run:  python examples/batch_export.py
"""

import pathlib

from repro import GCED, QATrainer
from repro.core import BatchDistiller, write_results_jsonl
from repro.datasets import load_dataset
from repro.viz import evidence_html

OUT_DIR = pathlib.Path("batch_output")


def main() -> None:
    dataset = load_dataset("squad11", seed=4, n_train=40, n_dev=20)
    artifacts = QATrainer(seed=0).train(dataset.contexts())
    gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)

    examples = dataset.answerable_dev()[:12]
    # Fan distillation out over the engine's thread-pool executor; results
    # come back in input order regardless of worker count.
    with BatchDistiller(gced, workers=4) as batch:
        results = batch.distill_examples(examples)
        stats = batch.stats()
    print(stats.summary())
    print(stats.profile.report())

    OUT_DIR.mkdir(exist_ok=True)
    jsonl_path = OUT_DIR / "evidences.jsonl"
    count = write_results_jsonl(
        jsonl_path,
        (
            (e.question, e.primary_answer, r)
            for e, r in zip(examples, results)
        ),
    )
    print(f"wrote {count} records to {jsonl_path}")

    blocks = [
        evidence_html(e.question, e.primary_answer, e.context, r)
        for e, r in zip(examples, results)
    ]
    html_path = OUT_DIR / "review.html"
    html_path.write_text(
        "<html><head><meta charset='utf-8'><style>"
        "body{font-family:sans-serif;max-width:50em;margin:2em auto}"
        "mark{background:#fdf3b4} mark.answer{background:#a6e3a1}"
        ".gced-evidence{border-bottom:1px solid #ccc;padding:1em 0}"
        "</style></head><body><h1>GCED evidence review</h1>"
        + "\n".join(blocks)
        + "</body></html>"
    )
    print(f"wrote review page to {html_path}")


if __name__ == "__main__":
    main()
