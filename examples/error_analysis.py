"""Error analysis over distilled evidences (Sec. IV-G).

Distills evidences for a TriviaQA-style dataset (the harder setting),
triages the weak ones into the paper's failure categories, and prints the
worst cases with their diagnostics.

Run:  python examples/error_analysis.py
"""

from collections import Counter

from repro.eval import ExperimentContext
from repro.eval.error_analysis import CATEGORY_DESCRIPTIONS, analyze_errors


def main() -> None:
    print("Building TriviaQA-Web context (long, noisy contexts)...")
    ctx = ExperimentContext.build("triviaqa-web", seed=0, n_train=50, n_dev=30)
    diagnoses = analyze_errors(ctx, n_examples=25)

    counts = Counter(d.category for d in diagnoses)
    print("\nCategory distribution:")
    for category, count in counts.most_common():
        print(f"  {category:<22} {count:>3}  - {CATEGORY_DESCRIPTIONS[category]}")

    problems = [d for d in diagnoses if d.category != "ok"]
    print(f"\n{len(problems)} / {len(diagnoses)} evidences flagged. Worst cases:")
    for diagnosis in problems[:4]:
        print(f"\n  [{diagnosis.category}]")
        print(f"  Q: {diagnosis.question}")
        print(f"  A: {diagnosis.answer}")
        print(f"  evidence: {diagnosis.evidence}")
        print(
            f"  I={diagnosis.informativeness:.2f} R={diagnosis.readability:.2f} "
            f"ratio={diagnosis.length_ratio:.1f} "
            f"context={diagnosis.context_sentences} sentences"
        )


if __name__ == "__main__":
    main()
