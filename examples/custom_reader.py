"""Extending the library with a custom QA reader.

GCED is reader-agnostic: anything implementing `QAModel` (or, easier, the
`SpanScoringQA` scoring hook) can drive ASE and the informativeness
metric.  This example plugs in a tiny domain-specific reader that knows
product-support conventions ("Error 1234 means ...") and uses it to
distill evidences over a support knowledge base.

Run:  python examples/custom_reader.py
"""

from repro import GCED, QATrainer
from repro.qa import SpanScoringQA
from repro.text.tokenizer import Token

SUPPORT_KB = [
    "Error 4013 appears when the device firmware update was interrupted. "
    "Restart the device while holding the power button for 10 seconds. "
    "If the problem persists, contact the support team with the serial "
    "number.",
    "Error 7291 appears when the license key has expired. Renew the "
    "subscription from the account page and restart the application "
    "afterwards. The grace period lasts for 14 days.",
    "The backup service stores snapshots every 6 hours by default. "
    "Administrators can change the schedule in the settings panel. Old "
    "snapshots are pruned after 30 days.",
]


class SupportReader(SpanScoringQA):
    """A reader with one domain prior: error codes answer 'error' questions."""

    name = "support-reader"

    def __init__(self) -> None:
        self._fallback_window = 12

    def score_span(
        self,
        question_terms: list[str],
        tokens: list[Token],
        start: int,
        end: int,
        bounds: tuple[int, int] | None = None,
    ) -> float:
        lo, hi = bounds if bounds is not None else (0, len(tokens))
        terms = set(question_terms)
        score = 0.0
        for idx in range(max(lo, start - self._fallback_window),
                         min(hi, end + self._fallback_window + 1)):
            token = tokens[idx]
            if token.is_word and token.lower in terms and not (start <= idx <= end):
                distance = start - idx if idx < start else idx - end
                score += 0.9 ** distance
        # Domain prior: numeric spans right after the word "Error" are
        # error codes and answer "which error" questions directly.
        if "error" in terms and start > 0 and tokens[start - 1].lower == "error":
            score += 2.0
        return score


def main() -> None:
    artifacts = QATrainer(seed=0).train(SUPPORT_KB)
    reader = SupportReader()
    gced = GCED(qa_model=reader, artifacts=artifacts)

    cases = [
        ("Which error appears when the license key has expired?", SUPPORT_KB[1]),
        ("How long does the grace period last?", SUPPORT_KB[1]),
        ("How often does the backup service store snapshots?", SUPPORT_KB[2]),
    ]
    for question, context in cases:
        prediction = reader.predict(question, context)
        result = gced.distill(question, prediction.text, context)
        print(f"Q: {question}")
        print(f"A: {prediction.text}")
        print(f"Evidence: {result.evidence}")
        print()


if __name__ == "__main__":
    main()
