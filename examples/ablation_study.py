"""Run the Table VIII ablation on a freshly generated SQuAD-2.0 dataset.

Shows how the `GCEDConfig.ablate` switches map to the paper's rows and how
each removed component hurts its matching criterion.

Run:  python examples/ablation_study.py
"""

from repro.eval import ExperimentContext, ablation_table, format_table


def main() -> None:
    print("Building SQuAD-2.0 context...")
    ctx = ExperimentContext.build("squad20", seed=0, n_train=60, n_dev=30)
    print("Running 8 pipeline variants (full + 7 ablations)...\n")
    rows = ablation_table(ctx, model_name="BERT-large", n_examples=16)
    print(format_table(rows, title="Table VIII — component ablation"))

    by = {r["source"]: r for r in rows}
    full = by["full"]
    print("\nWhat each ablation hurts (vs full):")
    checks = [
        ("w/o ASE", "C", "conciseness (whole context enters the tree)"),
        ("w/o QWS", "I", "informativeness (no clue words protected)"),
        ("w/o GROW", "R", "readability (disconnected fragments)"),
        ("w/o CLIP", "C", "conciseness (nothing pruned)"),
        ("w/o R", "R", "readability (clip ignores fluency)"),
    ]
    for source, key, label in checks:
        delta = by[source][key] - full[key]
        print(f"  {source:<9} {key} {delta:+.2f}   <- {label}")


if __name__ == "__main__":
    main()
