"""Quickstart: distill an informative-yet-concise evidence for a QA pair.

Run:  python examples/quickstart.py
"""

from repro import GCED, QATrainer

# 1. A small corpus: the contexts your QA system answers over.  In a real
#    deployment these are your documents; fitting takes seconds.
CORPUS = [
    "The American Football Conference champion Denver Broncos defeated the "
    "National Football Conference champion Carolina Panthers to earn the "
    "Super Bowl title. The game was played at a stadium in Santa Clara. "
    "Many fans attended the ceremony before the game.",
    "Beyonce Giselle Knowles-Carter was born and raised in Houston, Texas. "
    "She performed in various singing and dancing competitions as a child. "
    "Her mother designed costumes for the group.",
    "William the Conqueror led the Norman conquest of England and won the "
    "Battle of Hastings in 1066. He was a duke from Normandy. The battle "
    "changed English history.",
]


def main() -> None:
    # 2. "Fine-tune" the QA artifacts on the corpus (TF-IDF, embeddings,
    #    language model, attention) and build the GCED pipeline.
    artifacts = QATrainer(seed=0).train(CORPUS)
    gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)

    # 3. Distill evidence for a QA pair.  The answer may be a model
    #    prediction or a ground-truth label — GCED explains either.
    question = "Which NFL team won the Super Bowl title?"
    answer = "Denver Broncos"
    result = gced.distill(question, answer, CORPUS[0])

    print(f"Q: {question}")
    print(f"A: {answer}")
    print(f"Evidence: {result.evidence}")
    print(
        f"Scores: I={result.scores.informativeness:.2f} "
        f"C={result.scores.conciseness:.2f} "
        f"R={result.scores.readability:.2f} "
        f"H={result.scores.hybrid:.2f}"
    )
    print(f"Words removed: {100 * result.reduction:.0f}% of the context")
    print()
    print("Full trace (the paper's traceability property):")
    print(result.explain())


if __name__ == "__main__":
    main()
