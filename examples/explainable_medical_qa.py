"""Explainable QA for a high-stakes domain (the paper's motivation).

The introduction motivates GCED with evidence-based medicine: an answer
without supporting evidence will not be trusted.  This example builds a
small clinical-notes-style corpus, answers questions with the heuristic
reader, and attaches a distilled evidence to every answer — including the
"unreliable answer" detection pattern from Sec. IV-D3: when the evidence
does not actually support the question, the user can see it.

Run:  python examples/explainable_medical_qa.py
"""

from repro import GCED, QATrainer

CLINICAL_NOTES = [
    "Patient Ardan Holt reported persistent headaches and blurred vision "
    "after the accident. The examination revealed elevated blood pressure "
    "of 165 over 95. Doctor Reyes prescribed a beta blocker and scheduled "
    "a follow-up in two weeks. The patient also mentioned occasional "
    "dizziness in the mornings.",
    "Nurse Calloway recorded a temperature of 38.9 degrees for patient "
    "Mira Voss during the evening round. The fever responded to standard "
    "antipyretics within four hours. Blood cultures were collected before "
    "treatment and sent to the laboratory. Her appetite remained normal "
    "throughout the stay.",
    "Patient Jonas Bell received the influenza vaccine at the Northfield "
    "clinic in October. He experienced mild soreness at the injection site "
    "for one day. No other adverse reactions were reported during the "
    "observation period. The clinic recommended annual vaccination for "
    "all staff members.",
]

QUESTIONS = [
    ("What did Doctor Reyes prescribe?", CLINICAL_NOTES[0]),
    ("What temperature did Nurse Calloway record?", CLINICAL_NOTES[1]),
    ("Where did Jonas Bell receive the influenza vaccine?", CLINICAL_NOTES[2]),
]


def main() -> None:
    artifacts = QATrainer(seed=0).train(CLINICAL_NOTES)
    gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)

    for question, context in QUESTIONS:
        prediction = artifacts.reader.predict(question, context)
        result = gced.distill(question, prediction.text, context)
        print(f"Q: {question}")
        print(f"A: {prediction.text}")
        print(f"Evidence: {result.evidence}")
        supported = result.scores.informativeness >= 0.5
        verdict = "supported" if supported else "NOT SUPPORTED - verify manually"
        print(f"Support check: {verdict} (I={result.scores.informativeness:.2f})")
        print()


if __name__ == "__main__":
    main()
