"""Docs health check: relative links, heading anchors, live quickstart.

Two passes over ``README.md`` + ``docs/*.md``:

1. **Links** — every relative markdown link must point at a file that
   exists, and every ``#fragment`` (in-page or cross-file) must match a
   real heading under GitHub's slugification (lowercase, spaces to
   dashes, punctuation stripped).  Links that resolve outside the repo
   (the CI badge's ``../../actions/...`` site-relative URL) and absolute
   ``scheme://`` URLs are skipped — this check is offline.
2. **Quickstart** — the first fenced ``bash`` block under the README's
   ``## Quickstart`` heading is executed verbatim (with ``src`` on
   ``PYTHONPATH`` so no install step is required), so the front-door
   example can never rot.

Exit 0 when everything passes; 1 with one line per problem otherwise.
Run as ``python tools/check_docs.py [--no-quickstart]``.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import re
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

FENCE_RE = re.compile(r"^(```|~~~)", re.MULTILINE)
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$", re.MULTILINE)
# Inline markdown links: [text](target).  Images share the syntax; the
# badge image resolves outside the repo and is skipped like any other.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
QUICKSTART_RE = re.compile(
    r"^##\s+Quickstart\s*$.*?^```bash\s*$(.*?)^```\s*$",
    re.MULTILINE | re.DOTALL,
)


def doc_files() -> list[pathlib.Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def strip_fenced_code(text: str) -> str:
    """Blank out fenced code blocks so ``# comments`` aren't headings."""
    out: list[str] = []
    in_fence = False
    fence = ""
    for line in text.splitlines():
        stripped = line.lstrip()
        if not in_fence and (
            stripped.startswith("```") or stripped.startswith("~~~")
        ):
            in_fence, fence = True, stripped[:3]
            out.append("")
        elif in_fence and stripped.startswith(fence):
            in_fence = False
            out.append("")
        else:
            out.append("" if in_fence else line)
    return "\n".join(out)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, spaces->dashes."""
    # Inline markup contributes its text, not its syntax.
    heading = re.sub(r"[`*_]", "", heading)
    heading = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def anchors_for(path: pathlib.Path, cache: dict) -> set[str]:
    if path not in cache:
        slugs: set[str] = set()
        seen: dict[str, int] = {}
        for match in HEADING_RE.finditer(strip_fenced_code(path.read_text())):
            slug = github_slug(match.group(2))
            count = seen.get(slug, 0)
            seen[slug] = count + 1
            slugs.add(slug if count == 0 else f"{slug}-{count}")
        cache[path] = slugs
    return cache[path]


def check_links(files: list[pathlib.Path]) -> list[str]:
    problems: list[str] = []
    anchor_cache: dict[pathlib.Path, set[str]] = {}
    for source in files:
        rel_source = source.relative_to(REPO_ROOT)
        for match in LINK_RE.finditer(strip_fenced_code(source.read_text())):
            target = match.group(1)
            if "://" in target or target.startswith("mailto:"):
                continue
            path_part, _, fragment = target.partition("#")
            if path_part:
                resolved = (source.parent / path_part).resolve()
                if not resolved.is_relative_to(REPO_ROOT):
                    continue  # site-relative (badge) — not a repo file
                if not resolved.exists():
                    problems.append(
                        f"{rel_source}: broken link '{target}' "
                        f"({path_part} does not exist)"
                    )
                    continue
            else:
                resolved = source
            if fragment and resolved.suffix == ".md":
                if fragment not in anchors_for(resolved, anchor_cache):
                    problems.append(
                        f"{rel_source}: anchor '#{fragment}' not found in "
                        f"{resolved.relative_to(REPO_ROOT)}"
                    )
    return problems


def run_quickstart() -> list[str]:
    readme = (REPO_ROOT / "README.md").read_text()
    match = QUICKSTART_RE.search(readme)
    if not match:
        return ["README.md: no bash block found under '## Quickstart'"]
    script = match.group(1)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(REPO_ROOT / "src"), env.get("PYTHONPATH", "")])
    )
    print("running README quickstart:")
    print("\n".join(f"  | {line}" for line in script.strip().splitlines()))
    proc = subprocess.run(
        ["bash", "-euo", "pipefail", "-c", script],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    if proc.returncode != 0:
        tail = "\n".join((proc.stdout + proc.stderr).splitlines()[-20:])
        return [
            f"README.md: quickstart exited {proc.returncode}:\n{tail}"
        ]
    return []


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--no-quickstart",
        action="store_true",
        help="only check links/anchors; skip executing the README quickstart",
    )
    args = parser.parse_args(argv)

    files = doc_files()
    problems = check_links(files)
    checked = ", ".join(str(f.relative_to(REPO_ROOT)) for f in files)
    print(f"checked links/anchors in: {checked}")
    if not args.no_quickstart and not problems:
        problems.extend(run_quickstart())
    if problems:
        for problem in problems:
            print(f"docs check FAILED: {problem}", file=sys.stderr)
        return 1
    print("docs check: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
