"""Prometheus exposition lint — ``promtool check metrics``, pure python.

Validates Prometheus text-format (0.0.4) output against the rules
:func:`repro.obs.metrics.lint_exposition` enforces: metric/label name
syntax, ``HELP``/``TYPE`` ordering and uniqueness, counters ending in
``_total``, parseable sample values, no duplicate samples, well-formed
histograms (``le`` labels, cumulative monotone buckets, ``+Inf`` bucket
equal to ``_count``, ``_sum``/``_count`` present), and a trailing
newline.

Three input modes::

    python tools/check_metrics.py exposition.txt   # lint a file
    curl -s host:8080/metrics | python tools/check_metrics.py -
    python tools/check_metrics.py --sample         # self-contained check

``--sample`` builds a tiny in-process :class:`DistillService`, serves a
couple of requests through it, renders its live ``/metrics`` exposition,
and lints that — so CI validates the *real* registry output on every
run, not a fixture that can drift from the code.

Exit 0 when clean; 1 with one line per problem otherwise.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.metrics import lint_exposition, parse_exposition  # noqa: E402

SAMPLE_CORPUS = [
    "The American Football Conference champion Denver Broncos defeated "
    "the Carolina Panthers to earn the Super Bowl title.",
    "The Rams won the battle after a long siege of the fortress.",
    "Marie Curie received the Nobel Prize in Physics for research on "
    "radiation phenomena.",
    "The committee approved the budget for the new railway station.",
]


def sample_exposition() -> str:
    """Render live ``/metrics`` text from a tiny exercised service."""
    from repro.service import DistillService

    with DistillService.from_corpus(
        SAMPLE_CORPUS, corpus_info="check_metrics"
    ) as service:
        service.distill(
            "Which NFL team won the Super Bowl title?",
            "Denver Broncos",
            SAMPLE_CORPUS[0],
        )
        service.ask("Who won the battle?", "the Rams", k=2)
        return service.telemetry.metrics_text()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "source",
        nargs="?",
        help="exposition file to lint, or '-' for stdin",
    )
    parser.add_argument(
        "--sample",
        action="store_true",
        help="lint the live exposition of a small in-process service",
    )
    args = parser.parse_args(argv)

    if args.sample == (args.source is not None):
        parser.error("pass exactly one of: a file, '-', or --sample")

    if args.sample:
        text = sample_exposition()
        origin = "--sample service"
    elif args.source == "-":
        text = sys.stdin.read()
        origin = "stdin"
    else:
        path = pathlib.Path(args.source)
        if not path.exists():
            print(f"check_metrics: no such file: {path}", file=sys.stderr)
            return 2
        text = path.read_text()
        origin = str(path)

    problems = lint_exposition(text)
    if problems:
        for problem in problems:
            print(f"check_metrics: {origin}: {problem}", file=sys.stderr)
        return 1
    families = parse_exposition(text)
    samples = sum(len(family["samples"]) for family in families.values())
    print(
        f"check_metrics: {origin}: ok "
        f"({len(families)} families, {samples} samples)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
