"""Dataset containers mirroring the SQuAD JSON schema."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["QAExample", "QADataset"]


@dataclass(frozen=True)
class QAExample:
    """One question-answer-context triple.

    Attributes:
        example_id: stable unique id (seed-derived, reproducible).
        question: natural-language question.
        context: the passage containing (for answerable questions) the
            answer span.
        answers: acceptable gold answer strings (empty for unanswerable).
        answer_start: character offset of the first gold answer in the
            context, or -1 for unanswerable questions.
        is_impossible: SQuAD-2.0 unanswerable flag.
        relation: the KB relation the question asks about (generator
            metadata, useful for error analysis).
    """

    example_id: str
    question: str
    context: str
    answers: tuple[str, ...]
    answer_start: int = -1
    is_impossible: bool = False
    relation: str = ""

    def __post_init__(self) -> None:
        if not self.is_impossible:
            if not self.answers:
                raise ValueError(f"{self.example_id}: answerable without answers")
            if self.answer_start < 0:
                raise ValueError(f"{self.example_id}: missing answer_start")
            gold = self.answers[0]
            found = self.context[self.answer_start : self.answer_start + len(gold)]
            if found != gold:
                raise ValueError(
                    f"{self.example_id}: answer_start mismatch "
                    f"({found!r} != {gold!r})"
                )

    @property
    def primary_answer(self) -> str:
        """The canonical gold answer ("" for unanswerable questions)."""
        return self.answers[0] if self.answers else ""


@dataclass
class QADataset:
    """A named dataset with train/dev splits.

    ``key`` matches the registry dataset keys: "squad11", "squad20",
    "triviaqa-web", "triviaqa-wiki".
    """

    key: str
    train: list[QAExample] = field(default_factory=list)
    dev: list[QAExample] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.train) + len(self.dev)

    def contexts(self) -> Iterator[str]:
        """All unique contexts (training corpus for the QA artifacts)."""
        seen: set[str] = set()
        for example in self.train + self.dev:
            if example.context not in seen:
                seen.add(example.context)
                yield example.context

    def answerable_dev(self) -> list[QAExample]:
        """Dev examples with at least one gold answer."""
        return [e for e in self.dev if not e.is_impossible]

    def calibration_triples(
        self, limit: int | None = None
    ) -> list[tuple[str, str, str]]:
        """(question, context, gold) triples for baseline calibration."""
        triples = [
            (e.question, e.context, e.primary_answer)
            for e in self.train
            if not e.is_impossible
        ]
        return triples[:limit] if limit else triples
