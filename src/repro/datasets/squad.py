"""Synthetic SQuAD-style dataset generator.

Passages are Wikipedia-style: an anchor entity introduced first, two to
four fact sentences about it (with embellishments), plus distractor
sentences about *other* entities of the same types — exactly the material
that creates competing candidate spans for QA models and redundant
subtrees for GCED to clip.

SQuAD-2.0 passages additionally carry unanswerable questions: a question
about an anchor relation whose fact sentence was *not* included.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.kb import Entity, Fact, KnowledgeBase
from repro.datasets.templates import (
    generic_noise,
    question_slots,
    realize_question,
    realize_statement,
)
from repro.datasets.types import QADataset, QAExample
from repro.utils.rng import rng_from

__all__ = ["SquadGenerator"]


def _locate(context: str, answer: str) -> tuple[str, int]:
    """Find ``answer`` in ``context`` case-insensitively.

    Returns the *context surface form* and its offset, so the stored gold
    span always matches the passage verbatim.
    """
    pos = context.find(answer)
    if pos < 0:
        pos = context.lower().find(answer.lower())
    if pos < 0:
        raise ValueError(f"answer {answer!r} not found in generated context")
    return context[pos : pos + len(answer)], pos


class SquadGenerator:
    """Generates SQuAD-1.1 or SQuAD-2.0 style datasets.

    Args:
        version: "1.1" or "2.0".
        seed: master generation seed.
        kb: shared knowledge base (a fresh one is built if omitted).
        embellish: probability of decorating each fact sentence.
    """

    def __init__(
        self,
        version: str = "1.1",
        seed: int = 0,
        kb: KnowledgeBase | None = None,
        embellish: float = 0.55,
    ) -> None:
        if version not in ("1.1", "2.0"):
            raise ValueError("version must be '1.1' or '2.0'")
        self.version = version
        self.seed = seed
        self.kb = kb or KnowledgeBase(seed=seed)
        self.embellish = embellish

    @property
    def key(self) -> str:
        return "squad11" if self.version == "1.1" else "squad20"

    # ------------------------------------------------------------ passages
    def _anchor_facts(
        self, rng: np.random.Generator
    ) -> tuple[Entity, list[Fact]]:
        """Pick an anchor entity and its available facts."""
        kind = rng.random()
        if kind < 0.55:
            person = self.kb.people[int(rng.integers(0, len(self.kb.people)))]
            return person, self.kb.facts_about(person)
        if kind < 0.75:
            idx = int(rng.integers(0, len(self.kb.teams)))
            team = self.kb.teams[idx]
            opponent = self.kb.teams[(idx + 1 + int(rng.integers(0, len(self.kb.teams) - 1))) % len(self.kb.teams)]
            return team, self.kb.facts_about_team(team, opponent)
        if kind < 0.8:
            city = self.kb.cities[int(rng.integers(0, len(self.kb.cities)))]
            return city, self.kb.facts_about_city(city)
        if kind < 0.88:
            band = self.kb.bands[int(rng.integers(0, len(self.kb.bands)))]
            return band, self.kb.facts_about_band(band)
        if kind < 0.94:
            country = self.kb.countries[int(rng.integers(0, len(self.kb.countries)))]
            return country, self.kb.facts_about_country(country)
        battle = self.kb.battles[int(rng.integers(0, len(self.kb.battles)))]
        return battle, self.kb.facts_about_battle(battle)

    def _distractor_sentence(
        self, anchor: Entity, rng: np.random.Generator
    ) -> str:
        """A fact sentence about a different entity (same-type distractors)."""
        if anchor.etype == "person" or rng.random() < 0.4:
            other = self.kb.people[int(rng.integers(0, len(self.kb.people)))]
            if other.name == anchor.name:
                other = self.kb.people[
                    (int(rng.integers(0, len(self.kb.people))) + 1)
                    % len(self.kb.people)
                ]
            facts = self.kb.facts_about(other)
        elif anchor.etype == "team":
            idx = int(rng.integers(0, len(self.kb.teams)))
            other = self.kb.teams[idx]
            opponent = self.kb.teams[(idx + 1) % len(self.kb.teams)]
            facts = self.kb.facts_about_team(other, opponent)
        elif anchor.etype == "city":
            other = self.kb.cities[int(rng.integers(0, len(self.kb.cities)))]
            facts = self.kb.facts_about_city(other)
        else:
            other = self.kb.battles[int(rng.integers(0, len(self.kb.battles)))]
            facts = self.kb.facts_about_battle(other)
        fact = facts[int(rng.integers(0, len(facts)))]
        return realize_statement(fact, rng, embellish=self.embellish)

    def _build_passage(
        self, rng: np.random.Generator
    ) -> tuple[str, list[Fact], list[Fact]]:
        """Build one passage; returns (context, included facts, held-out facts)."""
        anchor, facts = self._anchor_facts(rng)
        order = list(rng.permutation(len(facts)))
        n_included = int(rng.integers(2, min(4, len(facts)) + 1))
        included = [facts[i] for i in order[:n_included]]
        held_out = [facts[i] for i in order[n_included:]]

        sentences = [
            realize_statement(fact, rng, embellish=self.embellish)
            for fact in included
        ]
        n_distractors = int(rng.integers(1, 3))
        for _ in range(n_distractors):
            sentences.append(self._distractor_sentence(anchor, rng))
        if rng.random() < 0.5:
            sentences.append(generic_noise(rng))
        # Keep the first anchor sentence first (introduces the entity),
        # lightly shuffle the rest.
        head, tail = sentences[0], sentences[1:]
        rng.shuffle(tail)
        context = " ".join([head] + tail)
        return context, included, held_out

    # ------------------------------------------------------------ examples
    def _examples_for_passage(
        self,
        context: str,
        included: list[Fact],
        held_out: list[Fact],
        rng: np.random.Generator,
        passage_id: str,
    ) -> list[QAExample]:
        examples: list[QAExample] = []
        n_questions = int(rng.integers(1, 4))
        askable = [
            (fact, slot)
            for fact in included
            for slot in question_slots(fact.relation)
        ]
        order = list(rng.permutation(len(askable)))
        for qi in order[:n_questions]:
            fact, slot = askable[qi]
            question, answer = realize_question(fact, slot, rng)
            surface, start = _locate(context, answer)
            examples.append(
                QAExample(
                    example_id=f"{passage_id}-q{len(examples)}",
                    question=question,
                    context=context,
                    answers=(surface,),
                    answer_start=start,
                    relation=f"{fact.relation}:{slot}",
                )
            )
        if self.version == "2.0" and held_out and rng.random() < 0.45:
            fact = held_out[int(rng.integers(0, len(held_out)))]
            slots = question_slots(fact.relation)
            if slots:
                slot = slots[int(rng.integers(0, len(slots)))]
                question, _answer = realize_question(fact, slot, rng)
                examples.append(
                    QAExample(
                        example_id=f"{passage_id}-imp",
                        question=question,
                        context=context,
                        answers=(),
                        is_impossible=True,
                        relation=f"{fact.relation}:{slot}",
                    )
                )
        return examples

    def generate(self, n_train: int = 120, n_dev: int = 60) -> QADataset:
        """Generate a dataset with approximately the requested split sizes.

        Sizes count *examples*; passages carry 1-4 examples each, so the
        generator keeps building passages until both splits are filled.
        """
        dataset = QADataset(key=self.key)
        rng = rng_from(self.seed, f"squad-{self.version}")
        passage_idx = 0
        while len(dataset.train) < n_train or len(dataset.dev) < n_dev:
            passage_id = f"{self.key}-p{passage_idx}"
            context, included, held_out = self._build_passage(rng)
            examples = self._examples_for_passage(
                context, included, held_out, rng, passage_id
            )
            target = (
                dataset.train
                if len(dataset.train) < n_train
                else dataset.dev
            )
            target.extend(examples)
            passage_idx += 1
        return dataset
