"""Dataset serialization in the SQuAD JSON schema.

Generated datasets can be exported for inspection or external tools and
re-imported; real SQuAD-format files (v1.1/v2.0) can be loaded directly,
so the pipeline runs on the genuine datasets when they are available.
"""

from __future__ import annotations

import json
import pathlib

from repro.datasets.types import QADataset, QAExample

__all__ = ["to_squad_json", "from_squad_json", "save_dataset", "load_dataset_json"]


def to_squad_json(dataset: QADataset) -> dict:
    """Render both splits in the SQuAD JSON structure.

    Splits are stored as two top-level "data" articles titled "train" and
    "dev"; each unique context becomes one paragraph.
    """
    articles = []
    for split_name, examples in (("train", dataset.train), ("dev", dataset.dev)):
        paragraphs: dict[str, list[QAExample]] = {}
        for example in examples:
            paragraphs.setdefault(example.context, []).append(example)
        articles.append(
            {
                "title": split_name,
                "paragraphs": [
                    {
                        "context": context,
                        "qas": [
                            {
                                "id": e.example_id,
                                "question": e.question,
                                "is_impossible": e.is_impossible,
                                "answers": [
                                    {"text": a, "answer_start": e.answer_start}
                                    for a in e.answers
                                ],
                            }
                            for e in qas
                        ],
                    }
                    for context, qas in paragraphs.items()
                ],
            }
        )
    return {"version": dataset.key, "data": articles}


def from_squad_json(payload: dict, key: str | None = None) -> QADataset:
    """Parse a SQuAD-schema dict (exported or genuine) into a QADataset.

    Articles titled "train"/"dev" map onto the corresponding splits;
    anything else (real SQuAD article titles) goes to ``train``.
    """
    dataset = QADataset(key=key or str(payload.get("version", "imported")))
    for article in payload["data"]:
        split = dataset.dev if article.get("title") == "dev" else dataset.train
        for paragraph in article["paragraphs"]:
            context = paragraph["context"]
            for qa in paragraph["qas"]:
                answers = tuple(a["text"] for a in qa.get("answers", ()))
                is_impossible = bool(qa.get("is_impossible", not answers))
                start = (
                    qa["answers"][0]["answer_start"]
                    if answers and not is_impossible
                    else -1
                )
                split.append(
                    QAExample(
                        example_id=str(qa["id"]),
                        question=qa["question"],
                        context=context,
                        answers=() if is_impossible else answers,
                        answer_start=start,
                        is_impossible=is_impossible,
                    )
                )
    return dataset


def save_dataset(dataset: QADataset, path: str | pathlib.Path) -> None:
    """Write a dataset to disk as SQuAD-schema JSON."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(to_squad_json(dataset), indent=2))


def load_dataset_json(path: str | pathlib.Path, key: str | None = None) -> QADataset:
    """Read a SQuAD-schema JSON file from disk."""
    payload = json.loads(pathlib.Path(path).read_text())
    return from_squad_json(payload, key=key)
