"""Dataset registry: build any of the four evaluation datasets by key."""

from __future__ import annotations

from repro.datasets.kb import KnowledgeBase
from repro.datasets.squad import SquadGenerator
from repro.datasets.triviaqa import TriviaQAGenerator
from repro.datasets.types import QADataset

__all__ = ["DATASET_KEYS", "load_dataset"]

DATASET_KEYS = ("squad11", "squad20", "triviaqa-web", "triviaqa-wiki")


def load_dataset(
    key: str,
    seed: int = 0,
    n_train: int = 120,
    n_dev: int = 60,
    kb: KnowledgeBase | None = None,
) -> QADataset:
    """Generate the dataset registered under ``key``.

    The real corpora have 90k-130k examples; the synthetic defaults are
    sized so a full experiment sweep runs in minutes on a laptop while
    keeping per-cell sample sizes statistically meaningful.  Pass larger
    ``n_train`` / ``n_dev`` for higher-fidelity runs.
    """
    kb = kb or KnowledgeBase(seed=seed)
    if key == "squad11":
        return SquadGenerator("1.1", seed=seed, kb=kb).generate(n_train, n_dev)
    if key == "squad20":
        return SquadGenerator("2.0", seed=seed, kb=kb).generate(n_train, n_dev)
    if key == "triviaqa-web":
        return TriviaQAGenerator("web", seed=seed, kb=kb).generate(n_train, n_dev)
    if key == "triviaqa-wiki":
        return TriviaQAGenerator("wiki", seed=seed, kb=kb).generate(n_train, n_dev)
    raise KeyError(f"unknown dataset {key!r}; known: {DATASET_KEYS}")
