"""Statement and question templates realizing KB facts into text.

Every statement template embeds the fact's literal answer slots verbatim,
so generated contexts always contain the exact gold span.  Embellishments
(leading adverbials, appositives, trailing clauses) add the redundant
material the Grow-and-Clip algorithm is designed to remove.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.kb import Fact

__all__ = [
    "realize_statement",
    "realize_question",
    "question_slots",
    "intro_sentence",
    "generic_noise",
    "web_noise",
]

# relation -> list of statement templates.  {name} is the subject.
_STATEMENTS: dict[str, tuple[str, ...]] = {
    "born_in": (
        "{name} was born in {place} in {year}.",
        "{name} was born in {year} in the city of {place}.",
    ),
    "died_in": (
        "{name} died in {place} in {year}.",
        "{name} passed away in {year} in {place}.",
    ),
    "capital_of": (
        "The capital of {name} is {capital}.",
        "{capital} serves as the capital of {name}.",
    ),
    "country_population": (
        "{name} has a population of about {population} people.",
        "Roughly {population} people live in {name}.",
    ),
    "profession": (
        "{name} was a celebrated {profession}.",
        "{name} worked for many years as a {profession}.",
    ),
    "created_work": (
        "{name} created the {kind} {work} in {year}.",
        "{name} completed the famous {kind} {work} in {year}.",
    ),
    "award": (
        "{name} received {award} in {year}.",
        "{name} was honored with {award} in {year}.",
    ),
    "studied_at": (
        "{name} studied at the {university}.",
        "{name} graduated from the {university}.",
    ),
    "discovered": (
        "{name} discovered {thing} in {year}.",
        "{name} identified {thing} in {year} after a long expedition.",
    ),
    "won_championship": (
        "The {winner} defeated the {loser} to win {event} in {year}.",
        "The {winner} beat the {loser} and captured {event} in {year}.",
    ),
    "home_city": (
        "The {name} are a {sport} team based in {city}.",
        "The {name} play {sport} in their home city of {city}.",
    ),
    "located_in": (
        "{name} is a city in {country}.",
        "{name} lies in the western region of {country}.",
    ),
    "founded_year": (
        "{name} was founded in {year}.",
        "The city of {name} was established in {year}.",
    ),
    "population": (
        "{name} has a population of {population} inhabitants.",
        "Around {population} people live in {name}.",
    ),
    "river": (
        "{river} flows through the center of {name}.",
        "{river} runs along the old quarter of {name}.",
    ),
    "band_formed": (
        "{name} were a {genre} band formed in {place} in {year}.",
        "{name} formed in {place} in {year} and played {genre} music.",
    ),
    "band_album": (
        "{name} released the album {album} in {year}.",
        "{name} recorded the album {album} in {year}.",
    ),
    "band_singer": (
        "{singer} sang lead vocals for {name}.",
        "{name} featured {singer} as the lead singer.",
    ),
    "battle_year": (
        "The {name} was fought in {year}.",
        "In {year}, the {name} took place near the town walls.",
    ),
    "battle_winner": (
        "{winner} won the {name} after a long campaign.",
        "The {name} ended with a decisive victory for {winner}.",
    ),
}

# relation -> slot -> (question template, uses subject name).
_QUESTIONS: dict[str, dict[str, tuple[str, ...]]] = {
    "born_in": {
        "place": ("Where was {name} born?", "In which city was {name} born?"),
        "year": ("When was {name} born?", "In which year was {name} born?"),
    },
    "died_in": {
        "place": ("Where did {name} die?",),
        "year": ("When did {name} die?",),
    },
    "capital_of": {
        "capital": ("What is the capital of {name}?",),
    },
    "country_population": {
        "population": ("What is the population of {name}?",),
    },
    "profession": {
        "profession": (
            "What was the profession of {name}?",
            "What did {name} work as?",
        ),
    },
    "created_work": {
        "work": ("Which {kind} did {name} create?",),
        "year": ("When did {name} create {work}?",),
    },
    "award": {
        "award": ("Which award did {name} receive?",),
        "year": ("When did {name} receive {award}?",),
    },
    "studied_at": {
        "university": ("Where did {name} study?",),
    },
    "discovered": {
        "thing": ("What did {name} discover?",),
        "year": ("When did {name} discover {thing}?",),
    },
    "won_championship": {
        "winner": ("Which team won {event} in {year}?",),
        "loser": ("Which team did the {winner} defeat to win {event}?",),
        "year": ("When did the {winner} win {event}?",),
    },
    "home_city": {
        "city": ("Where are the {name} based?",),
    },
    "located_in": {
        "country": ("In which country is {name}?",),
    },
    "founded_year": {
        "year": ("When was {name} founded?",),
    },
    "population": {
        "population": ("What is the population of {name}?",),
    },
    "river": {
        "river": ("Which river flows through {name}?",),
    },
    "band_formed": {
        "year": ("When were {name} formed?",),
        "place": ("Where were {name} formed?",),
        "genre": ("What kind of music did {name} play?",),
    },
    "band_album": {
        "album": ("Which album did {name} release?",),
        "year": ("When did {name} release {album}?",),
    },
    "band_singer": {
        "singer": ("Who sang lead vocals for {name}?",),
    },
    "battle_year": {
        "year": ("When was the {name} fought?",),
    },
    "battle_winner": {
        "winner": ("Who won the {name}?",),
    },
}

_LEADING = (
    "In the early years, ",
    "According to the chronicle, ",
    "As the records show, ",
    "During that remarkable period, ",
    "After years of preparation, ",
)
_TRAILING = (
    " which attracted wide attention",
    " after a long and difficult struggle",
    " to the surprise of many observers",
    " despite the doubts of the critics",
    " following months of careful work",
)
_APPOSITIVE_PERSON = (
    ", a figure admired by many,",
    ", whose reputation grew steadily,",
    ", known throughout the region,",
)

_GENERIC_NOISE = (
    "The local archive preserves many documents from that period.",
    "Historians continue to debate the details of the era.",
    "Several letters from those years survive in private collections.",
    "The surrounding countryside was known for its quiet villages.",
    "Visitors today can still see traces of that history.",
    "Many stories about those days were passed down through families.",
)
_WEB_NOISE = (
    "Read the full story and share your thoughts in the comments.",
    "Sign up for the newsletter to get weekly history highlights.",
    "This article was last updated by the editorial team.",
    "Related topics and further reading are listed below.",
    "Photo credits appear at the end of the page.",
)


def _fields(fact: Fact) -> dict[str, str]:
    fields = {"name": fact.subject.name}
    fields.update({k: str(v) for k, v in fact.answer_of.items()})
    return fields


def question_slots(relation: str) -> list[str]:
    """Askable slots of a relation."""
    return list(_QUESTIONS.get(relation, {}))


def realize_statement(
    fact: Fact,
    rng: np.random.Generator,
    embellish: float = 0.5,
) -> str:
    """Render a fact as a declarative sentence, optionally embellished.

    Embellishment never touches the answer-slot substrings, so the gold
    span always survives verbatim.
    """
    templates = _STATEMENTS[fact.relation]
    sentence = templates[int(rng.integers(0, len(templates)))].format(
        **_fields(fact)
    )
    if rng.random() < embellish:
        kind = rng.random()
        if kind < 0.4:
            lead = _LEADING[int(rng.integers(0, len(_LEADING)))]
            if sentence.startswith("The "):
                # Only the article loses its capital; proper nouns keep it.
                sentence = lead + "the " + sentence[4:]
            else:
                sentence = lead + sentence
        elif kind < 0.7 and fact.subject.etype == "person" and sentence.startswith(
            fact.subject.name + " "
        ):
            appositive = _APPOSITIVE_PERSON[
                int(rng.integers(0, len(_APPOSITIVE_PERSON)))
            ]
            sentence = (
                fact.subject.name
                + appositive
                + sentence[len(fact.subject.name) :]
            )
        else:
            trailing = _TRAILING[int(rng.integers(0, len(_TRAILING)))]
            sentence = sentence[:-1] + trailing + "."
    return sentence


def realize_question(
    fact: Fact, slot: str, rng: np.random.Generator
) -> tuple[str, str]:
    """Render a question about ``slot`` of ``fact``; returns (question, answer)."""
    templates = _QUESTIONS[fact.relation][slot]
    question = templates[int(rng.integers(0, len(templates)))].format(
        **_fields(fact)
    )
    answer = str(fact.answer_of[slot])
    # Strip a leading article from answers like "the Laurel Medal": SQuAD
    # gold spans are usually article-free, and normalization drops articles
    # anyway, but the span must match the context surface exactly.
    return question, answer


def intro_sentence(fact: Fact, rng: np.random.Generator) -> str:
    """An anchor-introducing first sentence (profession/home facts work best)."""
    return realize_statement(fact, rng, embellish=0.2)


def generic_noise(rng: np.random.Generator) -> str:
    """A content-free filler sentence (Wikipedia-style)."""
    return _GENERIC_NOISE[int(rng.integers(0, len(_GENERIC_NOISE)))]


def web_noise(rng: np.random.Generator) -> str:
    """A web-boilerplate filler sentence (TriviaQA-Web style)."""
    return _WEB_NOISE[int(rng.integers(0, len(_WEB_NOISE)))]
