"""Dataset substrate: synthetic SQuAD- and TriviaQA-style corpora.

The real datasets are unavailable offline; these generators preserve the
structural properties GCED's evaluation depends on (see DESIGN.md): span
answers inside multi-sentence contexts, typed distractor spans, SQuAD-2.0
unanswerable questions, and TriviaQA's longer, noisier web-style contexts.
"""

from repro.datasets.types import QAExample, QADataset
from repro.datasets.kb import KnowledgeBase, Entity, Fact
from repro.datasets.squad import SquadGenerator
from repro.datasets.triviaqa import TriviaQAGenerator
from repro.datasets.loader import load_dataset, DATASET_KEYS

__all__ = [
    "QAExample",
    "QADataset",
    "KnowledgeBase",
    "Entity",
    "Fact",
    "SquadGenerator",
    "TriviaQAGenerator",
    "load_dataset",
    "DATASET_KEYS",
]
