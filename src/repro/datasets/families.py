"""Family-relation passages — the workload for knowledge-enhanced QWS.

Generates the paper's Sec. IV-G failure pattern at scale: passages where
the answer to "Who was the mother of X?" is only reachable through a
relational bridge ("X was the child of Y and his wife Z"), plus the triple
inventory for building the matching knowledge graph.
"""

from __future__ import annotations

from repro.datasets.kb import SURNAMES, KnowledgeBase
from repro.datasets.templates import generic_noise
from repro.datasets.types import QADataset, QAExample
from repro.lexicon.knowledge import KnowledgeGraph
from repro.utils.rng import rng_from

__all__ = ["FamilyGenerator"]

_FEMALE_NAMES = (
    "Beatrice", "Delia", "Fiona", "Helena", "Jocelyn", "Lavinia", "Nadia",
    "Petra", "Rosalind", "Theodora", "Vivian", "Xenia", "Zelda", "Blanche",
    "Dorothea", "Felicity", "Harriet", "Josephine",
)
_MALE_NAMES = (
    "Adrian", "Casper", "Edmund", "Gregor", "Ivor", "Konrad", "Magnus",
    "Osmond", "Quentin", "Silas", "Ulric", "Walter", "Yorick", "Ambrose",
    "Cornelius", "Emeric", "Gideon", "Ignatius",
)

_PASSAGE_TEMPLATES = (
    "{child} was the child of {father} and his wife {mother} according to "
    "the chronicle.",
    "{child} grew up as the son of {father} and his wife {mother} in the "
    "old capital.",
)
_FATHER_FACTS = (
    "{father} governed the province for many years.",
    "{father} commanded the garrison at the border.",
    "{father} managed the family estate near the river.",
)
_SIBLING_FACTS = (
    "{child} had brothers named {brother1} and {brother2} through as many houses.",
    "The household also raised {brother1} and {brother2} in those years.",
)


class FamilyGenerator:
    """Generates family QA passages and the matching knowledge triples.

    Args:
        seed: generation seed.
        kb: optional shared knowledge base (only used for name pools).
    """

    def __init__(self, seed: int = 0, kb: KnowledgeBase | None = None) -> None:
        self.seed = seed
        self.kb = kb

    def _name(self, rng, pool: tuple[str, ...], used: set[str]) -> str:
        for _ in range(50):
            given = pool[int(rng.integers(0, len(pool)))]
            surname = SURNAMES[int(rng.integers(0, len(SURNAMES)))]
            name = f"{given} {surname}"
            if name not in used:
                used.add(name)
                return name
        raise RuntimeError("name pool exhausted")  # pragma: no cover

    def generate(
        self, n_examples: int = 30
    ) -> tuple[QADataset, KnowledgeGraph, list[dict]]:
        """Build the dataset, its knowledge graph, and family metadata.

        The metadata list has one dict per example with keys ``child``,
        ``father``, ``mother``, ``brothers`` — used by evaluations that
        check whether the relational *bridge* (the father) survives
        distillation.
        """
        rng = rng_from(self.seed, "families")
        dataset = QADataset(key="families")
        graph = KnowledgeGraph()
        families: list[dict] = []
        used: set[str] = set()
        for idx in range(n_examples):
            father = self._name(rng, _MALE_NAMES, used)
            mother = self._name(rng, _FEMALE_NAMES, used)
            child = self._name(rng, _MALE_NAMES, used)
            brother1 = self._name(rng, _MALE_NAMES, used)
            brother2 = self._name(rng, _MALE_NAMES, used)

            fields = {
                "child": child,
                "father": father,
                "mother": mother,
                "brother1": brother1,
                "brother2": brother2,
            }
            key_sentence = _PASSAGE_TEMPLATES[
                int(rng.integers(0, len(_PASSAGE_TEMPLATES)))
            ].format(**fields)
            sentences = [
                key_sentence,
                _SIBLING_FACTS[int(rng.integers(0, len(_SIBLING_FACTS)))].format(
                    **fields
                ),
                _FATHER_FACTS[int(rng.integers(0, len(_FATHER_FACTS)))].format(
                    **fields
                ),
            ]
            if rng.random() < 0.6:
                sentences.append(generic_noise(rng))
            context = " ".join(sentences)
            question = f"Who was the mother of {child}?"
            start = context.find(mother)
            dataset.dev.append(
                QAExample(
                    example_id=f"family-{idx}",
                    question=question,
                    context=context,
                    answers=(mother,),
                    answer_start=start,
                    relation="mother_of",
                )
            )
            dataset.train.append(dataset.dev[-1])  # shared corpus for fitting

            graph.add_relation(child, "child_of", father)
            graph.add_relation(father, "married_to", mother)
            graph.add_relation(child, "sibling_of", brother1)
            graph.add_relation(child, "sibling_of", brother2)
            families.append(
                {
                    "child": child,
                    "father": father,
                    "mother": mother,
                    "brothers": (brother1, brother2),
                }
            )
        return dataset, graph, families
