"""Synthetic TriviaQA-style dataset generator.

TriviaQA contexts are distantly supervised: long, noisy, and full of
off-topic material.  The generator reproduces that contrast with SQuAD:

* contexts are 2-3x longer (7-12 sentences vs 3-6),
* many more same-type distractor facts (several entities per passage),
* boilerplate noise — archive prose for the Wiki variant, web chrome
  ("Sign up for the newsletter ...") for the Web variant,
* the answer-bearing sentence is buried at a random position.

These are the properties behind the paper's TriviaQA observations: bigger
+GCED gains (Table VII vs VI) and larger degradation under predicted
answers (Fig. 7c/d).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.kb import Fact, KnowledgeBase
from repro.datasets.squad import SquadGenerator, _locate
from repro.datasets.templates import (
    generic_noise,
    question_slots,
    realize_question,
    realize_statement,
    web_noise,
)
from repro.datasets.types import QADataset, QAExample
from repro.utils.rng import rng_from

__all__ = ["TriviaQAGenerator"]


class TriviaQAGenerator:
    """Generates TriviaQA-Web / TriviaQA-Wiki style datasets.

    Args:
        variant: "web" or "wiki".
        seed: master generation seed.
        kb: shared knowledge base.
    """

    def __init__(
        self,
        variant: str = "web",
        seed: int = 0,
        kb: KnowledgeBase | None = None,
    ) -> None:
        if variant not in ("web", "wiki"):
            raise ValueError("variant must be 'web' or 'wiki'")
        self.variant = variant
        self.seed = seed
        self.kb = kb or KnowledgeBase(seed=seed)
        # Reuse SQuAD's anchor/distractor machinery over the same KB.
        self._squad = SquadGenerator(version="1.1", seed=seed, kb=self.kb)

    @property
    def key(self) -> str:
        return f"triviaqa-{self.variant}"

    def _noise_sentence(self, rng: np.random.Generator) -> str:
        if self.variant == "web" and rng.random() < 0.6:
            return web_noise(rng)
        return generic_noise(rng)

    def _build_context(
        self, rng: np.random.Generator
    ) -> tuple[str, Fact]:
        """One noisy context centered on a single answer-bearing fact."""
        anchor, facts = self._squad._anchor_facts(rng)
        fact = facts[int(rng.integers(0, len(facts)))]
        key_sentence = realize_statement(fact, rng, embellish=0.7)

        sentences: list[str] = []
        n_support = int(rng.integers(1, 3))
        support_pool = [f for f in facts if f is not fact]
        rng.shuffle(support_pool)
        for extra in support_pool[:n_support]:
            sentences.append(realize_statement(extra, rng, embellish=0.6))
        n_distractors = int(rng.integers(3, 6))
        for _ in range(n_distractors):
            sentences.append(self._squad._distractor_sentence(anchor, rng))
        n_noise = int(rng.integers(2, 4))
        for _ in range(n_noise):
            sentences.append(self._noise_sentence(rng))
        rng.shuffle(sentences)
        # Bury the key sentence at a random position.
        insert_at = int(rng.integers(0, len(sentences) + 1))
        sentences.insert(insert_at, key_sentence)
        return " ".join(sentences), fact

    def generate(self, n_train: int = 120, n_dev: int = 60) -> QADataset:
        """Generate a dataset with the requested split sizes."""
        dataset = QADataset(key=self.key)
        rng = rng_from(self.seed, f"triviaqa-{self.variant}")
        idx = 0
        while len(dataset.train) < n_train or len(dataset.dev) < n_dev:
            context, fact = self._build_context(rng)
            slots = question_slots(fact.relation)
            slot = slots[int(rng.integers(0, len(slots)))]
            question, answer = realize_question(fact, slot, rng)
            surface, start = _locate(context, answer)
            example = QAExample(
                example_id=f"{self.key}-e{idx}",
                question=question,
                context=context,
                answers=(surface,),
                answer_start=start,
                relation=f"{fact.relation}:{slot}",
            )
            if len(dataset.train) < n_train:
                dataset.train.append(example)
            else:
                dataset.dev.append(example)
            idx += 1
        return dataset
