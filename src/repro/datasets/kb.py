"""Synthetic knowledge base: entities and facts behind the generated corpora.

Entities are composed from curated name parts, giving thousands of distinct
people, teams, cities, works and events while every generated passage stays
grammatical and parseable.  Facts are typed relations with literal slots;
question/statement templates in :mod:`repro.datasets.templates` realize
them into text.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import rng_from

__all__ = ["Entity", "Fact", "KnowledgeBase"]

GIVEN_NAMES = (
    "Adrian", "Beatrice", "Casper", "Delia", "Edmund", "Fiona", "Gregor",
    "Helena", "Ivor", "Jocelyn", "Konrad", "Lavinia", "Magnus", "Nadia",
    "Osmond", "Petra", "Quentin", "Rosalind", "Silas", "Theodora",
    "Ulric", "Vivian", "Walter", "Xenia", "Yorick", "Zelda", "Ambrose",
    "Blanche", "Cornelius", "Dorothea", "Emeric", "Felicity", "Gideon",
    "Harriet", "Ignatius", "Josephine",
)
SURNAMES = (
    "Ashworth", "Blackwood", "Carmichael", "Davenport", "Ellsworth",
    "Fairbanks", "Galloway", "Hawthorne", "Ironside", "Jardine",
    "Kingsley", "Lockhart", "Merriweather", "Northcote", "Oakes",
    "Pemberton", "Quimby", "Ravenscroft", "Sinclair", "Thornbury",
    "Underhill", "Vanderberg", "Whitfield", "Yarrow", "Zimmerman",
    "Abernathy", "Bellamy", "Crowther", "Dunmore", "Everhart",
    "Fenwick", "Greenfield", "Holloway", "Ingram", "Jessop", "Kirkwood",
)
PROFESSIONS = (
    ("physicist", "science"), ("chemist", "science"), ("biologist", "science"),
    ("astronomer", "science"), ("mathematician", "science"),
    ("composer", "arts"), ("painter", "arts"), ("novelist", "arts"),
    ("poet", "arts"), ("architect", "arts"), ("singer", "arts"),
    ("explorer", "history"), ("general", "history"), ("historian", "history"),
    ("engineer", "science"), ("philosopher", "history"),
)
CITY_NAMES = (
    "Ashford", "Brookhaven", "Caldwell", "Dunmere", "Eastvale",
    "Fairmont", "Glenbrook", "Harrowgate", "Ironbridge", "Jasperville",
    "Kingsport", "Larkspur", "Meadowbrook", "Northfield", "Oakhurst",
    "Pinecrest", "Quarryville", "Ridgemont", "Silverton", "Thornbury",
    "Umberfield", "Valemont", "Westbrook", "Yarmouth", "Zephyrhills",
    "Alderton", "Briarcliff", "Coventry", "Drumlin", "Elmsworth",
)
COUNTRY_NAMES = (
    "Valdoria", "Keldan", "Morravia", "Ostrania", "Pelagia", "Quintara",
    "Rossmark", "Sylvania", "Tarvain", "Ulmenor", "Vostria", "Wendalia",
)
RIVER_NAMES = (
    "Alder", "Briar", "Crestwood", "Darrow", "Ebonmere", "Fenwick",
    "Greywater", "Hollybrook", "Silverrun", "Thistle",
)
TEAM_MASCOTS = (
    "Falcons", "Mariners", "Stallions", "Wolves", "Titans", "Comets",
    "Raiders", "Pioneers", "Huskies", "Cougars", "Thunderbolts", "Rams",
)
EVENT_NAMES = (
    "Continental Cup", "Meridian Trophy", "Harvest Classic",
    "Northern Shield", "Golden Pennant", "Summit Championship",
)
SPORTS = ("football", "basketball", "baseball", "hockey")
AWARD_NAMES = (
    "Laurel Medal", "Stellar Prize", "Meridian Award", "Golden Quill",
    "Crescent Honor", "Beacon Prize",
)
WORK_ADJECTIVES = (
    "Silent", "Golden", "Winter", "Crimson", "Distant", "Hidden",
    "Restless", "Amber", "Wandering", "Forgotten",
)
WORK_NOUNS = (
    "River", "Garden", "Voyage", "Symphony", "Harbor", "Letters",
    "Meadow", "Lantern", "Orchard", "Horizon",
)
WORK_KINDS_BY_DOMAIN = {
    "arts": ("novel", "symphony", "painting", "song", "poem"),
    "science": ("treatise", "monograph", "textbook"),
    "history": ("memoir", "chronicle", "atlas"),
}
DISCOVERY_ITEMS = (
    "the spiral nebula", "the coastal current", "the twin comet",
    "the mineral spring", "the ancient aqueduct", "the cave paintings",
    "the migratory route", "the underground lake",
)
INVENTION_ITEMS = (
    "the rotary printing press", "the compact seismograph",
    "the portable loom", "the double-lens telescope",
    "the mechanical harvester", "the pneumatic drill",
)
UNIVERSITY_STEMS = (
    "Ashford", "Kingsport", "Northfield", "Silverton", "Valemont",
    "Coventry", "Ridgemont", "Harrowgate",
)
BATTLE_PLACES = (
    "Harrowgate", "Drumlin", "Eastvale", "Thornbury", "Quarryville",
    "Larkspur", "Ironbridge", "Glenbrook",
)
BAND_ADJECTIVES = (
    "Velvet", "Midnight", "Electric", "Wandering", "Golden", "Silver",
    "Crimson", "Northern", "Restless", "Hollow",
)
BAND_NOUNS = (
    "Foxes", "Rivers", "Lanterns", "Sparrows", "Echoes", "Harbors",
    "Pilots", "Gardens", "Mirrors", "Tides",
)
GENRES = ("folk", "jazz", "rock", "blues", "soul")
SONG_ADJECTIVES = (
    "Lonely", "Burning", "Quiet", "Endless", "Broken", "Shining",
)
SONG_NOUNS = (
    "Road", "Night", "Heart", "Summer", "Letter", "Bridge",
)


@dataclass(frozen=True)
class Entity:
    """A typed named entity with attributes.

    ``etype`` is one of: "person", "team", "city", "country", "river",
    "university", "work", "event", "battle".
    """

    name: str
    etype: str
    attributes: dict = field(default_factory=dict, hash=False, compare=False)

    def attr(self, key: str):
        return self.attributes.get(key)


@dataclass(frozen=True)
class Fact:
    """A relation instance: ``relation(subject, object)`` with qualifiers.

    ``answer_of`` maps question-slot names ("object", "year", "place") to
    the literal surface string a question about that slot expects.
    """

    relation: str
    subject: Entity
    answer_of: dict = field(hash=False, compare=False)

    def slots(self) -> list[str]:
        return list(self.answer_of)


class KnowledgeBase:
    """Deterministic entity/fact pools derived from a seed.

    Args:
        seed: generation seed; two KBs with equal seeds are identical.
        n_people / n_teams / n_cities: pool sizes (names are combinatorial,
            so large pools stay distinct).
    """

    def __init__(
        self,
        seed: int = 0,
        n_people: int = 120,
        n_teams: int = 24,
        n_cities: int = 30,
    ) -> None:
        self.seed = seed
        rng = rng_from(seed, "kb")
        self.rivers = [Entity(f"{name} River", "river") for name in RIVER_NAMES]
        self.cities = self._make_cities(rng, n_cities)
        self.countries = self._make_countries(rng)
        self.universities = [
            Entity(f"University of {stem}", "university", {"city": stem})
            for stem in UNIVERSITY_STEMS
        ]
        self.people = self._make_people(rng, n_people)
        self.teams = self._make_teams(rng, n_teams)
        self.battles = self._make_battles(rng)
        self.bands = self._make_bands(rng)

    # ------------------------------------------------------------- builders
    def _make_cities(self, rng: np.random.Generator, n: int) -> list[Entity]:
        cities = []
        for i in range(min(n, len(CITY_NAMES))):
            name = CITY_NAMES[i]
            cities.append(
                Entity(
                    name,
                    "city",
                    {
                        "country": str(rng.choice(COUNTRY_NAMES)),
                        "founded": int(rng.integers(1050, 1900)),
                        "population": int(rng.integers(40, 900)) * 1000,
                        "river": str(rng.choice(RIVER_NAMES)) + " River",
                    },
                )
            )
        return cities

    def _make_countries(self, rng: np.random.Generator) -> list[Entity]:
        """Country entities; each country's capital is one of its cities."""
        by_country: dict[str, list[Entity]] = {}
        for city in self.cities:
            by_country.setdefault(city.attributes["country"], []).append(city)
        countries = []
        for name in COUNTRY_NAMES:
            cities = by_country.get(name)
            capital = (
                cities[0].name
                if cities
                else CITY_NAMES[int(rng.integers(0, len(CITY_NAMES)))]
            )
            countries.append(
                Entity(
                    name,
                    "country",
                    {
                        "capital": capital,
                        "population": int(rng.integers(2, 90)) * 1_000_000,
                    },
                )
            )
        return countries

    def _make_people(self, rng: np.random.Generator, n: int) -> list[Entity]:
        pairs = [(g, s) for g in GIVEN_NAMES for s in SURNAMES]
        order = rng.permutation(len(pairs))
        people = []
        for k in range(min(n, len(pairs))):
            given, surname = pairs[order[k]]
            profession, domain = PROFESSIONS[int(rng.integers(0, len(PROFESSIONS)))]
            birth_year = int(rng.integers(1720, 1975))
            city = self.cities[int(rng.integers(0, len(self.cities)))]
            death_year = birth_year + int(rng.integers(55, 90))
            death_city = self.cities[int(rng.integers(0, len(self.cities)))]
            work_kind = str(
                rng.choice(WORK_KINDS_BY_DOMAIN.get(domain, ("volume",)))
            )
            work_title = (
                f"The {rng.choice(WORK_ADJECTIVES)} {rng.choice(WORK_NOUNS)}"
            )
            people.append(
                Entity(
                    f"{given} {surname}",
                    "person",
                    {
                        "given": given,
                        "surname": surname,
                        "profession": profession,
                        "domain": domain,
                        "birth_year": birth_year,
                        "birth_city": city.name,
                        "death_year": death_year,
                        "death_city": death_city.name,
                        "work_title": work_title,
                        "work_kind": work_kind,
                        "work_year": birth_year + int(rng.integers(24, 45)),
                        "award": str(rng.choice(AWARD_NAMES)),
                        "award_year": birth_year + int(rng.integers(30, 55)),
                        "university": str(
                            rng.choice([u.name for u in self.universities])
                        ),
                        "discovery": str(
                            rng.choice(
                                DISCOVERY_ITEMS
                                if domain != "science"
                                else DISCOVERY_ITEMS + INVENTION_ITEMS
                            )
                        ),
                        "discovery_year": birth_year + int(rng.integers(25, 50)),
                    },
                )
            )
        return people

    def _make_teams(self, rng: np.random.Generator, n: int) -> list[Entity]:
        combos = [(c, m) for c in CITY_NAMES for m in TEAM_MASCOTS]
        order = rng.permutation(len(combos))
        teams = []
        for k in range(min(n, len(combos))):
            city, mascot = combos[order[k]]
            teams.append(
                Entity(
                    f"{city} {mascot}",
                    "team",
                    {
                        "city": city,
                        "mascot": mascot,
                        "sport": str(rng.choice(SPORTS)),
                        "event": str(rng.choice(EVENT_NAMES)),
                        "title_year": int(rng.integers(1950, 2021)),
                    },
                )
            )
        return teams

    def _make_battles(self, rng: np.random.Generator) -> list[Entity]:
        battles = []
        for place in BATTLE_PLACES:
            winner = self.people[int(rng.integers(0, len(self.people)))]
            battles.append(
                Entity(
                    f"Battle of {place}",
                    "battle",
                    {
                        "place": place,
                        "year": int(rng.integers(1100, 1900)),
                        "winner": winner.name,
                    },
                )
            )
        return battles

    def _make_bands(self, rng: np.random.Generator) -> list[Entity]:
        combos = [(a, n) for a in BAND_ADJECTIVES for n in BAND_NOUNS]
        order = rng.permutation(len(combos))
        bands = []
        for k in range(20):
            adjective, noun = combos[order[k]]
            formed = int(rng.integers(1955, 2010))
            singer = self.people[int(rng.integers(0, len(self.people)))]
            bands.append(
                Entity(
                    f"The {adjective} {noun}",
                    "band",
                    {
                        "genre": str(rng.choice(GENRES)),
                        "formed_year": formed,
                        "origin": str(rng.choice(CITY_NAMES)),
                        "album": f"The {rng.choice(WORK_ADJECTIVES)} {rng.choice(WORK_NOUNS)}",
                        "album_year": formed + int(rng.integers(1, 8)),
                        "song": f"{rng.choice(SONG_ADJECTIVES)} {rng.choice(SONG_NOUNS)}",
                        "singer": singer.name,
                    },
                )
            )
        return bands

    # ---------------------------------------------------------------- facts
    def facts_about(self, person: Entity) -> list[Fact]:
        """All relation instances available for a person entity."""
        a = person.attributes
        return [
            Fact("born_in", person, {"place": a["birth_city"], "year": str(a["birth_year"])}),
            Fact("died_in", person, {"place": a["death_city"], "year": str(a["death_year"])}),
            Fact("profession", person, {"profession": a["profession"]}),
            Fact(
                "created_work",
                person,
                {"work": a["work_title"], "year": str(a["work_year"]), "kind": a["work_kind"]},
            ),
            Fact("award", person, {"award": "the " + a["award"], "year": str(a["award_year"])}),
            Fact("studied_at", person, {"university": a["university"]}),
            Fact(
                "discovered",
                person,
                {"thing": a["discovery"], "year": str(a["discovery_year"])},
            ),
        ]

    def facts_about_team(self, team: Entity, opponent: Entity) -> list[Fact]:
        a = team.attributes
        return [
            Fact(
                "won_championship",
                team,
                {
                    "winner": team.name,
                    "loser": opponent.name,
                    "event": "the " + a["event"],
                    "year": str(a["title_year"]),
                },
            ),
            Fact("home_city", team, {"city": a["city"], "sport": a["sport"]}),
        ]

    def facts_about_city(self, city: Entity) -> list[Fact]:
        a = city.attributes
        return [
            Fact("located_in", city, {"country": a["country"]}),
            Fact("founded_year", city, {"year": str(a["founded"])}),
            Fact("population", city, {"population": f"{a['population']:,}"}),
            Fact("river", city, {"river": "The " + a["river"]}),
        ]

    def facts_about_country(self, country: Entity) -> list[Fact]:
        a = country.attributes
        return [
            Fact("capital_of", country, {"capital": a["capital"]}),
            Fact(
                "country_population",
                country,
                {"population": f"{a['population']:,}"},
            ),
        ]

    def facts_about_band(self, band: Entity) -> list[Fact]:
        a = band.attributes
        return [
            Fact(
                "band_formed",
                band,
                {"year": str(a["formed_year"]), "place": a["origin"], "genre": a["genre"]},
            ),
            Fact(
                "band_album",
                band,
                {"album": a["album"], "year": str(a["album_year"])},
            ),
            Fact("band_singer", band, {"singer": a["singer"]}),
        ]

    def facts_about_battle(self, battle: Entity) -> list[Fact]:
        a = battle.attributes
        return [
            Fact("battle_year", battle, {"year": str(a["year"])}),
            Fact("battle_winner", battle, {"winner": a["winner"]}),
        ]
