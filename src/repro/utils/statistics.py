"""Shared statistical helpers (dependency-free of the eval package)."""

from __future__ import annotations

import numpy as np
from scipy import stats as scipy_stats

__all__ = ["paired_pvalue", "mean_confidence_interval"]


def paired_pvalue(sample_a: list[float], sample_b: list[float]) -> float:
    """Two-sided paired t-test p-value; 1.0 for degenerate inputs.

    Pairs are truncated to the shorter sample (panel discards may drop
    items from one condition only).
    """
    n = min(len(sample_a), len(sample_b))
    if n < 2:
        return 1.0
    a = np.asarray(sample_a[:n], dtype=float)
    b = np.asarray(sample_b[:n], dtype=float)
    diff = a - b
    if np.allclose(diff, 0.0):
        return 1.0
    result = scipy_stats.ttest_rel(a, b)
    return float(result.pvalue)


def mean_confidence_interval(
    values: list[float], confidence: float = 0.95
) -> tuple[float, float, float]:
    """(mean, lower, upper) of a Student-t confidence interval."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("empty sample")
    mean = float(arr.mean())
    if arr.size == 1:
        return mean, mean, mean
    sem = scipy_stats.sem(arr)
    if sem == 0.0:
        return mean, mean, mean
    half = sem * scipy_stats.t.ppf((1 + confidence) / 2.0, arr.size - 1)
    return mean, mean - float(half), mean + float(half)
