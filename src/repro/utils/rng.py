"""Deterministic random-number helpers.

Every stochastic component in the library (attention projections, dataset
generation, simulated rater noise, calibrated model errors) derives its
randomness from an explicit integer seed.  ``derive_seed`` produces stable
sub-seeds from a parent seed and a string label, so independent components
never share streams and experiments are reproducible bit-for-bit.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "rng_from"]

_MASK_32 = 0xFFFFFFFF


def derive_seed(parent_seed: int, label: str) -> int:
    """Derive a stable 32-bit sub-seed from ``parent_seed`` and ``label``.

    The derivation is a SHA-256 hash, so distinct labels give statistically
    independent streams and the mapping is identical across platforms and
    Python versions (unlike the built-in ``hash``).

    >>> derive_seed(42, "attention") == derive_seed(42, "attention")
    True
    >>> derive_seed(42, "attention") != derive_seed(42, "raters")
    True
    """
    payload = f"{parent_seed}:{label}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:4], "big") & _MASK_32


def rng_from(seed: int, label: str | None = None) -> np.random.Generator:
    """Build a :class:`numpy.random.Generator` from a seed and optional label."""
    if label is not None:
        seed = derive_seed(seed, label)
    return np.random.default_rng(seed)
