"""Lightweight wall-clock timing for the experiment harness.

Accumulators are lock-guarded and the in-flight measurement state is
thread-local, so one :class:`Timer` can be shared by the serving layer's
scheduler thread and any callers reading :attr:`totals` concurrently.
"""

from __future__ import annotations

import threading
import time

__all__ = ["Timer"]


class Timer:
    """Context-manager stopwatch accumulating named durations.

    >>> timer = Timer()
    >>> with timer.measure("parse"):
    ...     pass
    >>> "parse" in timer.totals
    True
    """

    def __init__(self) -> None:
        self.totals: dict[str, float] = {}
        self.counts: dict[str, int] = {}
        self._lock = threading.Lock()
        self._local = threading.local()

    def measure(self, label: str) -> "Timer":
        self._local.label = label
        return self

    def __enter__(self) -> "Timer":
        self._local.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        elapsed = time.perf_counter() - getattr(self._local, "start", 0.0)
        label = getattr(self._local, "label", None) or "unlabeled"
        with self._lock:
            self.totals[label] = self.totals.get(label, 0.0) + elapsed
            self.counts[label] = self.counts.get(label, 0) + 1
        self._local.label = None

    def mean(self, label: str) -> float:
        """Mean duration of a label, or 0.0 if it was never measured."""
        if self.counts.get(label, 0) == 0:
            return 0.0
        return self.totals[label] / self.counts[label]

    def report(self) -> str:
        """Human-readable summary, slowest stages first."""
        lines = ["stage                 total(s)   calls    mean(ms)"]
        for label in sorted(self.totals, key=self.totals.get, reverse=True):
            lines.append(
                f"{label:<20} {self.totals[label]:>9.3f} {self.counts[label]:>7d} "
                f"{1000.0 * self.mean(label):>11.3f}"
            )
        return "\n".join(lines)
