"""Lightweight wall-clock timing for the experiment harness."""

from __future__ import annotations

import time

__all__ = ["Timer"]


class Timer:
    """Context-manager stopwatch accumulating named durations.

    >>> timer = Timer()
    >>> with timer.measure("parse"):
    ...     pass
    >>> "parse" in timer.totals
    True
    """

    def __init__(self) -> None:
        self.totals: dict[str, float] = {}
        self.counts: dict[str, int] = {}
        self._label: str | None = None
        self._start = 0.0

    def measure(self, label: str) -> "Timer":
        self._label = label
        return self

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        elapsed = time.perf_counter() - self._start
        label = self._label or "unlabeled"
        self.totals[label] = self.totals.get(label, 0.0) + elapsed
        self.counts[label] = self.counts.get(label, 0) + 1
        self._label = None

    def mean(self, label: str) -> float:
        """Mean duration of a label, or 0.0 if it was never measured."""
        if self.counts.get(label, 0) == 0:
            return 0.0
        return self.totals[label] / self.counts[label]

    def report(self) -> str:
        """Human-readable summary, slowest stages first."""
        lines = ["stage                 total(s)   calls    mean(ms)"]
        for label in sorted(self.totals, key=self.totals.get, reverse=True):
            lines.append(
                f"{label:<20} {self.totals[label]:>9.3f} {self.counts[label]:>7d} "
                f"{1000.0 * self.mean(label):>11.3f}"
            )
        return "\n".join(lines)
