"""Lightweight wall-clock timing for the experiment harness.

:class:`Timer` keeps one :class:`~repro.obs.metrics.TimingAccumulator`
per label — the repo's single timing primitive, shared with the
engine's stage profiling.  Accumulators are lock-guarded and the
in-flight measurement state is thread-local, so one :class:`Timer` can
be shared by the serving layer's scheduler thread and any callers
reading :attr:`totals` concurrently.
"""

from __future__ import annotations

import threading
import time

from repro.obs.metrics import TimingAccumulator

__all__ = ["Timer"]


class Timer:
    """Context-manager stopwatch accumulating named durations.

    >>> timer = Timer()
    >>> with timer.measure("parse"):
    ...     pass
    >>> "parse" in timer.totals
    True
    """

    def __init__(self) -> None:
        self._acc: dict[str, TimingAccumulator] = {}
        self._lock = threading.Lock()
        self._local = threading.local()

    def measure(self, label: str) -> "Timer":
        self._local.label = label
        return self

    def __enter__(self) -> "Timer":
        self._local.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        elapsed = time.perf_counter() - getattr(self._local, "start", 0.0)
        label = getattr(self._local, "label", None) or "unlabeled"
        with self._lock:
            acc = self._acc.get(label)
            if acc is None:
                acc = self._acc[label] = TimingAccumulator()
            acc.observe(elapsed)
        self._local.label = None

    @property
    def totals(self) -> dict[str, float]:
        """Accumulated seconds per label (snapshot)."""
        with self._lock:
            return {label: acc.seconds for label, acc in self._acc.items()}

    @property
    def counts(self) -> dict[str, int]:
        """Measurement counts per label (snapshot)."""
        with self._lock:
            return {label: acc.calls for label, acc in self._acc.items()}

    def accumulator(self, label: str) -> TimingAccumulator:
        """A copy of one label's accumulator (zeroed if never measured)."""
        with self._lock:
            acc = self._acc.get(label)
            return (
                TimingAccumulator(acc.calls, acc.seconds)
                if acc is not None
                else TimingAccumulator()
            )

    def mean(self, label: str) -> float:
        """Mean duration of a label, or 0.0 if it was never measured."""
        with self._lock:
            acc = self._acc.get(label)
            return acc.seconds / acc.calls if acc and acc.calls else 0.0

    def report(self) -> str:
        """Human-readable summary, slowest stages first."""
        with self._lock:
            rows = sorted(
                self._acc.items(), key=lambda item: item[1].seconds, reverse=True
            )
            lines = ["stage                 total(s)   calls    mean(ms)"]
            for label, acc in rows:
                lines.append(
                    f"{label:<20} {acc.seconds:>9.3f} {acc.calls:>7d} "
                    f"{acc.mean_ms:>11.3f}"
                )
        return "\n".join(lines)
