"""Small caching helpers used by the QA models and parsers.

Parsing and attention are the most expensive stages of the GCED pipeline
and are frequently re-invoked on the same sentence (e.g. once by ASE, once
by WSPTC, once per clip candidate when re-scoring).  A bounded LRU cache
keyed on the raw text keeps the pipeline near-linear in practice.

``MISSING`` is the shared not-found sentinel: ``cache.get(key, MISSING)``
distinguishes "never cached" from "cached a falsy value" (including
``None``), which plain ``get(key) is None`` cannot.
"""

from __future__ import annotations

import functools
import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable, NamedTuple

__all__ = ["CacheSnapshot", "LRUCache", "MISSING", "memoize_method"]


class _MissingType:
    """Singleton sentinel distinct from every cacheable value."""

    _instance: "_MissingType | None" = None

    def __new__(cls) -> "_MissingType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<missing>"


MISSING = _MissingType()

_MEMO_CREATE_LOCK = threading.Lock()


class CacheSnapshot(NamedTuple):
    """A consistent point-in-time view of one :class:`LRUCache`.

    ``bytes`` is 0 unless the cache was built with a ``size_estimator``.
    Compares equal to a plain ``(hits, misses, size, bytes)`` tuple.
    """

    hits: int
    misses: int
    size: int
    bytes: int = 0


class LRUCache:
    """A minimal least-recently-used cache with a fixed capacity.

    Lookups and insertions are guarded by a lock, so instances can be
    shared by the threads of a
    :class:`~repro.engine.executor.ParallelExecutor`.

    Besides the entry-count ``capacity``, a cache may be bounded by a
    *byte budget*: pass ``size_estimator`` (a callable ``value -> int``
    giving the byte footprint of one cached value) together with
    ``max_bytes``, and the least-recently-used entries are evicted until
    the measured total fits the budget.  The measurement is taken at
    :meth:`put` time; values that grow afterwards (lazily compiled
    artifacts) call :meth:`reaccount` so the accounted total tracks the
    estimator exactly — with cooperating values the budget is an
    invariant, not a guideline.  The most recent entry is never evicted
    on byte pressure, so a single oversized value still caches (a cache
    that rejects its own inserts would silently degrade to a 0% hit
    rate).

    A cache may also carry a read-through ``loader`` (installed after
    construction, e.g. by the pipeline-snapshot plane): on a :meth:`get`
    miss the loader is consulted with the key and, when it yields a value
    (anything but ``MISSING``), the value is inserted and returned.
    Loader traffic is counted separately (``loader_hits`` /
    ``loader_misses``) so hit rates keep measuring real cache behaviour.
    Loaders never pickle with the cache.

    >>> cache = LRUCache(capacity=2)
    >>> cache.put("a", 1); cache.put("b", 2); cache.put("c", 3)
    >>> cache.get("a") is None
    True
    >>> cache.get("c")
    3
    """

    def __init__(
        self,
        capacity: int = 1024,
        size_estimator: Callable[[Any], int] | None = None,
        max_bytes: int | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        if max_bytes is not None and size_estimator is None:
            raise ValueError("max_bytes requires a size_estimator")
        self.capacity = capacity
        self.max_bytes = max_bytes
        self._estimate = size_estimator
        self._sizes: dict[Hashable, int] | None = (
            {} if size_estimator is not None else None
        )
        self._bytes = 0
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.loader: Callable[[Hashable], Any] | None = None
        self.loader_hits = 0
        self.loader_misses = 0
        self._lock = threading.RLock()

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        # Loaders close over process-local resources (snapshot segments)
        # and never travel; the receiving process re-attaches its own.
        state["loader"] = None
        from repro.engine.snapshot import externalizing

        if externalizing():
            # Snapshot-plane pickling: the warm entries ride the shared
            # snapshot segment instead of the payload, so the pickled
            # cache is an empty shell that rehydrates read-through.
            state["_data"] = OrderedDict()
            if state["_sizes"] is not None:
                state["_sizes"] = {}
            state["_bytes"] = 0
            state["hits"] = 0
            state["misses"] = 0
            state["loader_hits"] = 0
            state["loader_misses"] = 0
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # Pickles from before the read-through loader existed lack the
        # loader fields; default them so hydration wiring stays optional.
        self.__dict__.setdefault("loader", None)
        self.__dict__.setdefault("loader_hits", 0)
        self.__dict__.setdefault("loader_misses", 0)
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value, refreshing its recency, or ``default``.

        Pass ``default=MISSING`` to tell a cached ``None`` (a hit) apart
        from an absent key (a miss).  Misses consult the read-through
        ``loader`` (if installed) before giving up; the lock is released
        around the loader call, so a slow load never blocks other
        threads' lookups.
        """
        with self._lock:
            value = self._data.get(key, MISSING)
            if value is not MISSING:
                self.hits += 1
                self._data.move_to_end(key)
                return value
            self.misses += 1
            loader = self.loader
        if loader is not None:
            loaded = loader(key)
            if loaded is not MISSING:
                with self._lock:
                    self.loader_hits += 1
                self.put(key, loaded)
                return loaded
            with self._lock:
                self.loader_misses += 1
        return default

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Stats-free lookup: no hit/miss counting, no recency refresh.

        For probes that are not part of the cache's own workload — e.g.
        a side cache checking whether the main cache already holds a
        value — so observability counters keep measuring real traffic.
        """
        with self._lock:
            value = self._data.get(key, MISSING)
            return default if value is MISSING else value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert ``value``, evicting least-recently-used entries while the
        cache exceeds its entry capacity or (estimated) byte budget."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                if self._sizes is not None:
                    self._bytes -= self._sizes.pop(key, 0)
            self._data[key] = value
            if self._sizes is not None:
                size = int(self._estimate(value))
                self._sizes[key] = size
                self._bytes += size
            while len(self._data) > self.capacity or (
                self.max_bytes is not None
                and self._bytes > self.max_bytes
                and len(self._data) > 1
            ):
                evicted, _ = self._data.popitem(last=False)
                if self._sizes is not None:
                    self._bytes -= self._sizes.pop(evicted, 0)

    def items(self) -> list[tuple[Hashable, Any]]:
        """A point-in-time list of ``(key, value)`` pairs, LRU-first.

        Taken under the lock (safe against concurrent mutation); used by
        the snapshot plane to export warm entries without recency churn.
        """
        with self._lock:
            return list(self._data.items())

    def reaccount(self, key: Hashable) -> int:
        """Re-measure one entry's byte footprint after it grew in place.

        Lazily-materialized values (compiled-context tables) call this
        through their owning cache binding whenever a new table fills in,
        so the accounted total always equals the estimator applied to the
        *current* values — making ``max_bytes`` a real invariant.  Runs
        the same eviction loop as :meth:`put`; returns the new size (0 if
        the key is absent or the cache has no estimator).
        """
        if self._sizes is None:
            return 0
        with self._lock:
            value = self._data.get(key, MISSING)
            if value is MISSING:
                return 0
            size = int(self._estimate(value))
            self._bytes += size - self._sizes.get(key, 0)
            self._sizes[key] = size
            while (
                self.max_bytes is not None
                and self._bytes > self.max_bytes
                and len(self._data) > 1
            ):
                evicted, _ = self._data.popitem(last=False)
                self._bytes -= self._sizes.pop(evicted, 0)
            return size

    def record_hits(self, n: int = 1) -> None:
        """Credit ``n`` hits that were served without a :meth:`get` lookup.

        Batch deduplication resolves several logical lookups with one
        physical distillation; callers credit the extra occurrences here
        instead of mutating ``hits`` directly (which would race with the
        lock-guarded counter updates in :meth:`get`).
        """
        with self._lock:
            self.hits += n

    def snapshot(self) -> CacheSnapshot:
        """A consistent :class:`CacheSnapshot` taken under the lock."""
        with self._lock:
            return CacheSnapshot(
                self.hits, self.misses, len(self._data), self._bytes
            )

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            if self._sizes is not None:
                self._sizes.clear()
            self._bytes = 0
            self.hits = 0
            self.misses = 0
            self.loader_hits = 0
            self.loader_misses = 0


def memoize_method(maxsize: int = 1024) -> Callable:
    """Decorator memoizing an instance method on hashable arguments.

    Unlike ``functools.lru_cache`` applied to a method, the cache lives on
    the *instance* (stored under ``_memo_<name>``), so instances can be
    garbage-collected and do not share entries.
    """

    def decorator(func: Callable) -> Callable:
        attr = f"_memo_{func.__name__}"

        @functools.wraps(func)
        def wrapper(self, *args):
            cache: LRUCache | None = getattr(self, attr, None)
            if cache is None:
                # Double-checked under a lock: concurrent first calls from
                # a thread pool must not each install their own cache.
                with _MEMO_CREATE_LOCK:
                    cache = getattr(self, attr, None)
                    if cache is None:
                        cache = LRUCache(capacity=maxsize)
                        setattr(self, attr, cache)
            value = cache.get(args, MISSING)
            if value is MISSING:
                value = func(self, *args)
                cache.put(args, value)
            return value

        return wrapper

    return decorator
