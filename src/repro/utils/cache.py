"""Small caching helpers used by the QA models and parsers.

Parsing and attention are the most expensive stages of the GCED pipeline
and are frequently re-invoked on the same sentence (e.g. once by ASE, once
by WSPTC, once per clip candidate when re-scoring).  A bounded LRU cache
keyed on the raw text keeps the pipeline near-linear in practice.
"""

from __future__ import annotations

import functools
from collections import OrderedDict
from typing import Any, Callable, Hashable

__all__ = ["LRUCache", "memoize_method"]


class LRUCache:
    """A minimal least-recently-used cache with a fixed capacity.

    >>> cache = LRUCache(capacity=2)
    >>> cache.put("a", 1); cache.put("b", 2); cache.put("c", 3)
    >>> cache.get("a") is None
    True
    >>> cache.get("c")
    3
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value, refreshing its recency, or ``default``."""
        if key not in self._data:
            self.misses += 1
            return default
        self.hits += 1
        self._data.move_to_end(key)
        return self._data[key]

    def put(self, key: Hashable, value: Any) -> None:
        """Insert ``value``, evicting the least-recently-used entry if full."""
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if len(self._data) > self.capacity:
            self._data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()
        self.hits = 0
        self.misses = 0


def memoize_method(maxsize: int = 1024) -> Callable:
    """Decorator memoizing an instance method on hashable arguments.

    Unlike ``functools.lru_cache`` applied to a method, the cache lives on
    the *instance* (stored under ``_memo_<name>``), so instances can be
    garbage-collected and do not share entries.
    """

    def decorator(func: Callable) -> Callable:
        attr = f"_memo_{func.__name__}"

        @functools.wraps(func)
        def wrapper(self, *args):
            cache: LRUCache | None = getattr(self, attr, None)
            if cache is None:
                cache = LRUCache(capacity=maxsize)
                setattr(self, attr, cache)
            sentinel = object()
            value = cache.get(args, sentinel)
            if value is sentinel:
                value = func(self, *args)
                cache.put(args, value)
            return value

        return wrapper

    return decorator
