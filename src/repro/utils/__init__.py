"""Shared utilities: deterministic RNG, caching, timing."""

from repro.utils.rng import derive_seed, rng_from
from repro.utils.cache import LRUCache, memoize_method
from repro.utils.timing import Timer

__all__ = ["derive_seed", "rng_from", "LRUCache", "memoize_method", "Timer"]
