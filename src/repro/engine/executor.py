"""Batch executors — who runs the pipeline over many items, and where.

:class:`SerialExecutor` runs everything inline; :class:`ParallelExecutor`
fans chunks out to a thread or process pool.  Both present the same
``map`` contract:

* the returned list preserves input order, always;
* an optional ``key`` groups similar items (e.g. same context paragraph)
  into the same chunk, so each worker's caches stay hot;
* chunks execute as single tasks, bounding scheduling overhead.

Process pools need picklable work: pass a module-level ``fn`` and use
``initializer``/``initargs`` to install heavyweight state (a configured
pipeline) once per worker instead of once per task.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import (
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.faults import fault_point
from repro.obs.logs import get_logger

_log = get_logger("executor")

__all__ = [
    "Executor",
    "ParallelExecutor",
    "SerialExecutor",
    "WarmupReport",
    "build_executor",
]

_BACKENDS = ("thread", "process")


@dataclass(frozen=True)
class WarmupReport:
    """Timing and per-worker findings of one :meth:`Executor.warmup`.

    Attributes:
        seconds: wall-clock of the warmup barrier (pool spawn plus every
            initializer run for pools; ~0 for serial).
        worker_infos: whatever the warmup probes returned, one entry per
            non-None probe result (process pools report per-worker facts
            like snapshot-load milliseconds here).
    """

    seconds: float = 0.0
    worker_infos: tuple = field(default=())


class Executor:
    """Common interface: ordered ``map`` with optional locality grouping."""

    workers: int = 1

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        key: Callable[[Any], Any] | None = None,
    ) -> list:
        raise NotImplementedError

    def warmup(self, probe: Callable | None = None) -> WarmupReport:
        """Spin up pool workers now (no-op for serial execution).

        Long-lived callers (the batch distiller, the serving layer) call
        this at construction so worker spawn and per-worker initializers
        — unpickling a configured pipeline is the expensive part — run
        during startup instead of inside the first measured ``map``.
        Returns a :class:`WarmupReport`; ``probe`` (a picklable zero-arg
        callable) replaces the default barrier task so callers can
        collect per-worker facts.
        """
        return WarmupReport()

    def close(self) -> None:
        """Release pool resources (no-op for serial execution)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialExecutor(Executor):
    """Runs every item inline, in input order.

    The ``key`` grouping still applies (items are *processed* in locality
    order) so serial and parallel runs traverse caches the same way.
    """

    workers = 1

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        key: Callable[[Any], Any] | None = None,
    ) -> list:
        items = list(items)
        fault_point("executor.map", detail=f"serial:{len(items)}")
        results: list[Any] = [None] * len(items)
        for idx in _locality_order(items, key):
            results[idx] = fn(items[idx])
        return results


class ParallelExecutor(Executor):
    """Thread- or process-pool executor with context-grouped chunking.

    Args:
        workers: pool size (≥ 1; ``0`` means one per CPU).
        backend: ``"thread"`` (shared memory, shared caches, GIL-bound) or
            ``"process"`` (true parallelism, per-worker caches; work must
            be picklable).
        chunks_per_worker: how many chunks to cut per worker — higher
            values balance skewed chunk costs, lower values maximize
            per-chunk cache locality.
        initializer / initargs: run once in each pool worker before any
            task; use for per-process pipeline setup.

    The pool is created lazily on first ``map`` and reused until
    :meth:`close`, so process workers amortize their setup cost across
    batches.
    """

    def __init__(
        self,
        workers: int = 2,
        backend: str = "thread",
        chunks_per_worker: int = 4,
        initializer: Callable | None = None,
        initargs: tuple = (),
    ) -> None:
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        if workers < 0:
            raise ValueError("workers must be non-negative")
        if chunks_per_worker < 1:
            raise ValueError("chunks_per_worker must be at least 1")
        self.workers = workers or os.cpu_count() or 1
        self.backend = backend
        self.chunks_per_worker = chunks_per_worker
        self._initializer = initializer
        self._initargs = initargs
        self._pool: ThreadPoolExecutor | ProcessPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        self._closed = False
        self.last_warmup: WarmupReport | None = None
        # Crash-recovery bookkeeping (see map()): how many times the
        # process pool broke, how many chunks were re-run after a
        # respawn, and the wall-clock of the most recent recovery.
        self.pool_breaks = 0
        self.chunk_retries = 0
        self.last_recovery_ms = 0.0

    def _ensure_pool(self):
        # Double-checked under a lock: concurrent first maps (e.g. two
        # scheduler flushes racing) must not each create a pool, which
        # would leak the loser's worker threads/processes.
        if self._pool is None:
            with self._pool_lock:
                if self._closed:
                    # Refuse, loudly: recreating the pool here used to
                    # silently resurrect a closed executor — workers (and
                    # their initializer state, possibly a now-unlinked
                    # snapshot) respawned behind the caller's back.
                    raise RuntimeError(
                        "executor is closed; create a new one instead of "
                        "mapping on a closed executor"
                    )
                if self._pool is None:
                    pool_cls = (
                        ThreadPoolExecutor
                        if self.backend == "thread"
                        else ProcessPoolExecutor
                    )
                    self._pool = pool_cls(
                        max_workers=self.workers,
                        initializer=self._initializer,
                        initargs=self._initargs,
                    )
        return self._pool

    def set_initargs(self, initargs: tuple) -> None:
        """Replace the initializer arguments for *future* pool spawns.

        Existing workers are untouched — callers refresh them in place
        (e.g. by broadcasting an adopt task); this only ensures a later
        :meth:`_respawn` re-initializes workers from current state (a
        fresh snapshot handle) instead of the one captured at build time.
        """
        with self._pool_lock:
            self._initargs = initargs

    def warmup(self, probe: Callable | None = None) -> WarmupReport:
        """Create the pool and run per-worker initializers eagerly.

        Submits one barrier task per worker so process workers spawn (and
        unpickle their initializer state — the warm pipeline) now rather
        than lazily inside the first real batch.  Best effort: a fast
        worker may serve several barriers, but the dominant cost (pool
        creation plus initializer runs for every spawned worker) is paid
        here either way.  Idempotent; safe to call on a warm pool.  The
        report (also kept as ``last_warmup``) carries the barrier's
        wall-clock and the non-None probe results.
        """
        started = time.perf_counter()
        pool = self._ensure_pool()
        task = probe or _warm_worker
        infos = []
        for future in [pool.submit(task) for _ in range(self.workers)]:
            info = future.result()
            if info is not None:
                infos.append(info)
        report = WarmupReport(
            seconds=time.perf_counter() - started, worker_infos=tuple(infos)
        )
        self.last_warmup = report
        return report

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        key: Callable[[Any], Any] | None = None,
    ) -> list:
        items = list(items)
        if not items:
            return []
        fault_point("executor.map", detail=f"{self.backend}:{len(items)}")
        order = _locality_order(items, key)
        chunks = _chunk(order, self.workers * self.chunks_per_worker)
        results: list[Any] = [None] * len(items)
        failed = self._map_chunks(fn, items, chunks, results)
        if failed:
            # A dead worker (kill -9, OOM kill, hard crash) marks the
            # whole ProcessPoolExecutor broken and fails every in-flight
            # chunk, not just the one the victim was running.  Respawn
            # the pool once — fresh workers re-run the initializer,
            # re-hydrating the snapshot, whose segment the coordinator
            # still owns — and retry only the failed chunks.
            started = time.perf_counter()
            self._respawn()
            still_failed = self._map_chunks(fn, items, failed, results)
            with self._pool_lock:
                self.chunk_retries += len(failed) - len(still_failed)
                self.last_recovery_ms = (time.perf_counter() - started) * 1000.0
            if still_failed:
                # Broke twice in a row: respawn again so the executor
                # stays usable (the distiller falls back to serial
                # in-parent execution), then surface the failure.
                self._respawn()
                raise BrokenProcessPool(
                    f"process pool broke twice; {len(still_failed)} chunk(s) "
                    "unrecovered"
                )
        return results

    def _map_chunks(
        self,
        fn: Callable[[Any], Any],
        items: list,
        chunks: list[list[int]],
        results: list,
    ) -> list[list[int]]:
        """Run ``chunks`` on the pool, filling ``results`` in place.

        Returns the chunks that failed with :class:`BrokenProcessPool`
        (submit- or result-side) instead of raising, so the caller can
        retry exactly those after a respawn.  Any other exception — a
        genuine error from ``fn`` — propagates unchanged.
        """
        pool = self._ensure_pool()
        futures: list[tuple[Future, list[int]]] = []
        broken_at = len(chunks)
        for pos, chunk in enumerate(chunks):
            try:
                futures.append(
                    (pool.submit(_run_chunk, fn, [items[i] for i in chunk]), chunk)
                )
            except BrokenProcessPool:
                broken_at = pos
                break
        failed = list(chunks[broken_at:])
        for future, chunk in futures:
            try:
                values = future.result()
            except BrokenProcessPool:
                failed.append(chunk)
                continue
            for idx, value in zip(chunk, values):
                results[idx] = value
        return failed

    def _respawn(self) -> None:
        """Replace a broken pool with a fresh one (same initializer).

        The snapshot handle in ``initargs`` is still valid — the
        coordinator owns the shared-memory segment until :meth:`close`
        — so respawned workers re-hydrate from it in their initializer.
        Raises if the executor was closed meanwhile.
        """
        with self._pool_lock:
            if self._closed:
                raise RuntimeError("executor is closed")
            pool, self._pool = self._pool, None
            self.pool_breaks += 1
            breaks = self.pool_breaks
        if pool is not None:
            pool.shutdown(wait=True)
        _log.warning(
            "process pool broken; respawning workers",
            backend=self.backend,
            workers=self.workers,
            pool_breaks=breaks,
        )

    def recovery_stats(self) -> dict:
        """Pool-break counters for ``/stats`` and the recovery bench."""
        with self._pool_lock:
            return {
                "pool_breaks": self.pool_breaks,
                "chunk_retries": self.chunk_retries,
                "last_recovery_ms": round(self.last_recovery_ms, 3),
            }

    def close(self) -> None:
        """Shut the pool down and mark the executor closed.

        Terminal: later ``map``/``warmup`` calls raise instead of
        silently recreating the pool (the old behaviour, which leaked
        respawned workers past teardown).  Idempotent.
        """
        with self._pool_lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


def _run_chunk(fn: Callable[[Any], Any], chunk_items: list) -> list:
    """Execute one chunk inline inside a pool worker."""
    return [fn(item) for item in chunk_items]


def _warm_worker() -> None:
    """Barrier task: forces worker spawn + initializer before real work."""


def _locality_order(
    items: Sequence[Any], key: Callable[[Any], Any] | None
) -> list[int]:
    """Indices of ``items`` in processing order (stable-sorted by ``key``)."""
    if key is None:
        return list(range(len(items)))
    return sorted(range(len(items)), key=lambda i: key(items[i]))


def _chunk(order: list[int], n_chunks: int) -> list[list[int]]:
    """Split ``order`` into ≤ ``n_chunks`` contiguous, balanced runs."""
    n_chunks = max(1, min(n_chunks, len(order)))
    size, extra = divmod(len(order), n_chunks)
    chunks: list[list[int]] = []
    start = 0
    for c in range(n_chunks):
        end = start + size + (1 if c < extra else 0)
        chunks.append(order[start:end])
        start = end
    return chunks


def build_executor(
    workers: int = 1, backend: str = "thread", **kwargs
) -> Executor:
    """Executor for ``workers``: serial for 1, parallel otherwise (0 = per CPU)."""
    if workers == 0:
        workers = os.cpu_count() or 1
    if workers <= 1:
        return SerialExecutor()
    return ParallelExecutor(workers=workers, backend=backend, **kwargs)
