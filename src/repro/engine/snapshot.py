"""Read-only pipeline snapshot plane for multi-process scaling.

Process-pool workers used to start cold: each one re-derived the parent's
warm state — compiled paragraph artifacts, trigram LM tables, parse
memos, retrieval postings — from scratch, duplicating both the compute
and the memory N ways.  A :class:`PipelineSnapshot` serializes that warm
state *once* in the parent as named byte sections, places them in a
single :mod:`multiprocessing.shared_memory` segment (N workers map one
copy; pickled inline as a fallback when shared memory is unavailable),
and hands workers a small picklable :class:`SnapshotHandle` through the
pool initializer.  Workers hydrate lazily from the snapshot into their
local caches — read-through, never write-back — so their first request
hits warm artifacts instead of recompiling.

Three cooperating pieces live here:

* **Externalized pickling** — :func:`dump_for_workers` pickles an object
  graph under a thread-local flag that snapshot-aware classes
  (:class:`~repro.lm.ngram.NGramLanguageModel`,
  :class:`~repro.retrieval.index.InvertedIndex`,
  :class:`~repro.utils.cache.LRUCache`) consult in ``__getstate__`` to
  drop their bulky tables from the payload; the dropped state rides the
  shared segment instead and re-attaches on first use.
* **The active-snapshot registry** — one process-global snapshot,
  installed by the worker initializer via :func:`activate`, that hollow
  objects read their sections back from
  (:func:`load_active_section`).
* **Entry maps** — :func:`pack_entry_map` / :class:`EntryMap`, a
  two-level pickle (outer key table, per-entry payloads) so workers
  deserialize only the cache entries their traffic actually touches.

Everything here is stdlib-only and import-cycle safe: lower layers
(``utils``, ``lm``, ``retrieval``) import this module lazily inside
``__getstate__``/rehydration paths only.
"""

from __future__ import annotations

import atexit
import contextlib
import os
import pickle
import secrets
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.faults import fault_point

__all__ = [
    "EntryMap",
    "PipelineSnapshot",
    "SnapshotHandle",
    "activate",
    "active",
    "deactivate",
    "dump_for_workers",
    "externalize_warm_state",
    "externalizing",
    "load_active_section",
    "pack_entry_map",
]

_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL

# ------------------------------------------------------- externalized pickling

_EXTERNALIZE = threading.local()


@contextlib.contextmanager
def externalize_warm_state() -> Iterator[None]:
    """While active (per thread), snapshot-aware ``__getstate__`` methods
    drop their warm tables from pickles, leaving hollow shells that
    rehydrate from the active snapshot.  Re-entrant."""
    _EXTERNALIZE.depth = getattr(_EXTERNALIZE, "depth", 0) + 1
    try:
        yield
    finally:
        _EXTERNALIZE.depth -= 1


def externalizing() -> bool:
    """True while the calling thread is inside :func:`externalize_warm_state`."""
    return getattr(_EXTERNALIZE, "depth", 0) > 0


def dump_for_workers(obj: Any) -> bytes:
    """Pickle ``obj`` with warm state externalized (the worker payload).

    The result is deliberately compact — caches pickle empty, LM counts
    and index postings pickle hollow — because the bulky state travels
    once through the snapshot's shared segment instead of N times through
    initializer pickles.
    """
    with externalize_warm_state():
        return pickle.dumps(obj, protocol=_PICKLE_PROTOCOL)


# ------------------------------------------------------------ snapshot plane


@dataclass(frozen=True)
class SnapshotHandle:
    """The picklable description workers need to attach a snapshot.

    Exactly one of ``shm_name`` (shared-memory segment holding the packed
    sections) or ``inline`` (the packed bytes themselves, the fallback
    transport) is set.
    """

    layout: tuple[tuple[str, int, int], ...]
    fingerprint: str
    nbytes: int
    shm_name: str | None = None
    inline: bytes | None = None
    meta: dict = field(default_factory=dict)
    generation: int = 0


class PipelineSnapshot:
    """Named read-only byte sections, packed once, mapped by N workers.

    Built parent-side from ``sections`` (name → packed bytes); workers
    re-open it from a :class:`SnapshotHandle` via :meth:`attach`.  The
    parent owns the shared-memory segment and must :meth:`close` with
    ``unlink=True`` when done (the batch distiller does this for the
    snapshots it builds); workers just :meth:`close`.
    """

    def __init__(
        self,
        sections: Mapping[str, bytes],
        fingerprint: str = "",
        meta: dict | None = None,
        use_shared_memory: bool = True,
        generation: int = 0,
    ) -> None:
        layout: list[tuple[str, int, int]] = []
        offset = 0
        for name, blob in sections.items():
            layout.append((name, offset, len(blob)))
            offset += len(blob)
        self.layout: tuple[tuple[str, int, int], ...] = tuple(layout)
        self.fingerprint = fingerprint
        self.meta = dict(meta or {})
        self.nbytes = offset
        # Monotonic refresh counter: a snapshot rebuilt over a changed
        # data plane (e.g. post-compaction) carries a higher generation,
        # letting live pools adopt it idempotently without a respawn.
        self.generation = int(generation)
        self._owner = True
        self._closed = False
        self._shm = None
        self._inline: bytes | None = None
        packed = b"".join(sections.values())
        if use_shared_memory and packed:
            try:
                from multiprocessing import shared_memory

                shm = shared_memory.SharedMemory(
                    create=True,
                    size=len(packed),
                    name=f"repro_snap_{secrets.token_hex(6)}",
                )
                shm.buf[: len(packed)] = packed
                self._shm = shm
                # The close() path unlinks on the happy path; this
                # registry catches coordinator death by signal, which
                # otherwise leaks the segment in /dev/shm.
                _register_owned(shm)
            except (OSError, ValueError):
                # No usable /dev/shm (restricted containers): ship the
                # packed bytes inline through the initializer pickle.
                self._inline = packed
        else:
            self._inline = packed

    # -------------------------------------------------------------- transport
    @property
    def shm_name(self) -> str | None:
        return self._shm.name if self._shm is not None else None

    @property
    def handle(self) -> SnapshotHandle:
        """A fresh picklable handle describing this snapshot."""
        return SnapshotHandle(
            layout=self.layout,
            fingerprint=self.fingerprint,
            nbytes=self.nbytes,
            shm_name=self.shm_name,
            inline=self._inline,
            meta=dict(self.meta),
            generation=self.generation,
        )

    @classmethod
    def attach(cls, handle: SnapshotHandle) -> "PipelineSnapshot":
        """Open a worker-side view of the snapshot a handle describes."""
        fault_point("snapshot.attach", detail=handle.shm_name or "inline")
        snapshot = cls.__new__(cls)
        snapshot.layout = handle.layout
        snapshot.fingerprint = handle.fingerprint
        snapshot.meta = dict(handle.meta)
        snapshot.nbytes = handle.nbytes
        snapshot.generation = handle.generation
        snapshot._owner = False
        snapshot._closed = False
        snapshot._shm = None
        snapshot._inline = handle.inline
        if handle.shm_name is not None:
            from multiprocessing import shared_memory

            snapshot._shm = shared_memory.SharedMemory(name=handle.shm_name)
        return snapshot

    # --------------------------------------------------------------- sections
    def section_names(self) -> tuple[str, ...]:
        return tuple(name for name, _offset, _length in self.layout)

    def section(self, name: str) -> bytes:
        """The packed bytes of one section (copied out of the segment)."""
        if self._closed:
            raise RuntimeError("snapshot is closed")
        for section_name, offset, length in self.layout:
            if section_name == name:
                if self._shm is not None:
                    return bytes(self._shm.buf[offset : offset + length])
                assert self._inline is not None
                return self._inline[offset : offset + length]
        raise KeyError(name)

    # --------------------------------------------------------------- lifetime
    def close(self, unlink: bool = False) -> None:
        """Release the segment mapping; owners pass ``unlink=True`` to
        remove the segment from the system.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        deactivate(self)
        shm, self._shm = self._shm, None
        if shm is not None:
            shm.close()
            if unlink and self._owner:
                try:
                    shm.unlink()
                except FileNotFoundError:
                    pass
                _discard_owned(shm.name)

    def __enter__(self) -> "PipelineSnapshot":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close(unlink=self._owner)


# ---------------------------------------------- owned-segment leak guard
#
# The normal lifecycle unlinks owned segments in close(); this registry
# covers the coordinator dying *by signal* (SIGTERM from an operator or
# supervisor, SIGHUP from a lost terminal), which skips finally blocks
# and would leave repro_snap_* segments pinned in /dev/shm.  The first
# owned segment installs an atexit hook plus chaining signal handlers
# that unlink everything still registered before re-delivering the
# signal.  SIGKILL is uncatchable by design — nothing in-process can
# cover it.
#
# Ownership is per-PID: fork-spawned pool workers inherit this module
# state (registry, handlers, atexit hooks), and a worker terminated
# with SIGTERM — exactly what ProcessPoolExecutor does when tearing
# down a broken pool — must NOT unlink the segment the coordinator is
# still serving from.  Cleanup runs only in the process that created
# the segment.

_OWNED: dict[str, Any] = {}
_OWNED_PID: int | None = None
_CLEANUP_LOCK = threading.Lock()
_CLEANUP_INSTALLED = False
_PREVIOUS_HANDLERS: dict[int, Any] = {}


def _unlink_owned_segments() -> None:
    """Unlink every still-registered owned segment (idempotent).

    A no-op in forked children: only the creating process owns the
    segments, even though children inherit a copy of the registry.
    """
    with _CLEANUP_LOCK:
        if _OWNED_PID != os.getpid():
            return
        owned = list(_OWNED.values())
        _OWNED.clear()
    for shm in owned:
        try:
            shm.unlink()
        except (FileNotFoundError, OSError):
            pass


def _handle_fatal_signal(signum, frame) -> None:
    _unlink_owned_segments()
    previous = _PREVIOUS_HANDLERS.get(signum)
    if callable(previous):
        previous(signum, frame)
    else:
        # Restore the default disposition and re-deliver, so the exit
        # status still says "killed by signal" to the supervisor.
        signal.signal(signum, signal.SIG_DFL)
        signal.raise_signal(signum)


def _register_owned(shm) -> None:
    global _CLEANUP_INSTALLED, _OWNED_PID
    with _CLEANUP_LOCK:
        if _OWNED_PID != os.getpid():
            # First registration in this process — drop entries (and the
            # installed-flag) inherited across a fork: they belong to
            # the parent, which is still alive and serving from them.
            _OWNED.clear()
            _OWNED_PID = os.getpid()
            _CLEANUP_INSTALLED = False
        _OWNED[shm.name] = shm
        if _CLEANUP_INSTALLED:
            return
        _CLEANUP_INSTALLED = True
        atexit.register(_unlink_owned_segments)
        for signum in (signal.SIGTERM, signal.SIGHUP):
            try:
                _PREVIOUS_HANDLERS[signum] = signal.signal(
                    signum, _handle_fatal_signal
                )
            except (ValueError, OSError):
                # Not the main thread (or an exotic platform): atexit
                # still covers ordinary interpreter exits.
                pass


def _discard_owned(name: str) -> None:
    with _CLEANUP_LOCK:
        _OWNED.pop(name, None)


# ------------------------------------------------- active-snapshot registry

_ACTIVE: PipelineSnapshot | None = None


def activate(snapshot: PipelineSnapshot) -> None:
    """Install ``snapshot`` as this process's source for hollow objects."""
    global _ACTIVE
    _ACTIVE = snapshot


def active() -> PipelineSnapshot | None:
    return _ACTIVE


def deactivate(snapshot: PipelineSnapshot | None = None) -> None:
    """Remove the active snapshot (or only ``snapshot``, if it is active)."""
    global _ACTIVE
    if snapshot is None or snapshot is _ACTIVE:
        _ACTIVE = None


def load_active_section(name: str) -> bytes | None:
    """The named section of the active snapshot, or None if unavailable."""
    snapshot = _ACTIVE
    if snapshot is None:
        return None
    try:
        return snapshot.section(name)
    except (KeyError, RuntimeError):
        return None


# ------------------------------------------------------------- entry maps


def pack_entry_map(entries: Mapping[Any, Any]) -> bytes:
    """Pack a cache-export mapping as a two-level pickle.

    The outer pickle carries the key table and per-entry *byte strings*;
    an attached :class:`EntryMap` unpickles individual entries on demand,
    so a worker deserializes only what its traffic touches.  Entries that
    fail to pickle are dropped (snapshots are best-effort accelerators,
    never correctness carriers).
    """
    packed: dict[Any, bytes] = {}
    for key, value in entries.items():
        try:
            packed[key] = pickle.dumps(value, protocol=_PICKLE_PROTOCOL)
        except Exception:
            continue
    return pickle.dumps(packed, protocol=_PICKLE_PROTOCOL)


class EntryMap:
    """Lazy reader over a :func:`pack_entry_map` blob."""

    def __init__(self, blob: bytes) -> None:
        self._entries: dict[Any, bytes] = pickle.loads(blob)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Any) -> bool:
        return key in self._entries

    def keys(self):
        return self._entries.keys()

    def get(self, key: Any, default: Any = None) -> Any:
        raw = self._entries.get(key)
        if raw is None:
            return default
        return pickle.loads(raw)


def timed_ms(started: float) -> float:
    """Milliseconds elapsed since ``started`` (a ``perf_counter`` value)."""
    return round((time.perf_counter() - started) * 1000.0, 3)
