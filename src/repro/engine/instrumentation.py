"""Per-stage observability: timings, counters, and cache hit rates.

A :class:`PipelineProfile` accumulates across every context a pipeline
runs.  Profiles are plain picklable data and support :meth:`merge`, so
parallel workers can profile locally and ship their numbers back to the
coordinating :class:`~repro.core.batch.BatchDistiller`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.obs.metrics import TimingAccumulator

__all__ = ["CacheStats", "PipelineProfile", "StageTiming"]


class StageTiming(TimingAccumulator):
    """Accumulated wall-clock of one stage.

    The shared :class:`~repro.obs.metrics.TimingAccumulator` (calls +
    seconds + ``mean_ms``) extended with a halt counter for stages that
    short-circuit the pipeline.
    """

    __slots__ = ("halts",)

    def __init__(
        self, calls: int = 0, seconds: float = 0.0, halts: int = 0
    ) -> None:
        super().__init__(calls, seconds)
        self.halts = halts

    def merge(self, other: "StageTiming") -> None:
        super().merge(other)
        self.halts += getattr(other, "halts", 0)

    def __eq__(self, other) -> bool:
        return super().__eq__(other) and self.halts == other.halts

    def to_dict(self) -> dict:
        return {
            "calls": self.calls,
            "seconds": self.seconds,
            "mean_ms": self.mean_ms,
            "halts": self.halts,
        }


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss snapshot of one shared cache.

    ``bytes`` is the cache's estimated memory footprint; it stays 0 for
    caches bounded by entry count only (no size estimator installed).
    """

    name: str
    hits: int
    misses: int
    size: int = 0
    bytes: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def describe(self) -> str:
        """``name 85% (17/20)`` — the one-line digest of this cache."""
        return (
            f"{self.name} {100 * self.hit_rate:.0f}% "
            f"({self.hits}/{self.lookups})"
        )

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": self.size,
            "bytes": self.bytes,
            "hit_rate": self.hit_rate,
        }


@dataclass
class PipelineProfile:
    """Everything the engine observed while running pipelines.

    Attributes:
        stages: per-stage timing accumulators, in first-seen order (which
            matches pipeline order for a fixed plan).
        counters: free-form event counts (contexts run, early halts, ...).
        caches: latest shared-cache snapshots, by cache name.
    """

    stages: dict[str, StageTiming] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    caches: dict[str, CacheStats] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Accumulation must be safe under thread-pool execution; the lock
        # is excluded from pickling so profiles still travel to/from
        # worker processes.
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # ------------------------------------------------------------ recording
    def record_stage(
        self, name: str, seconds: float, halted: bool = False
    ) -> None:
        """Add one stage execution to the accumulators."""
        with self._lock:
            timing = self.stages.get(name)
            if timing is None:
                timing = self.stages[name] = StageTiming()
            timing.calls += 1
            timing.seconds += seconds
            if halted:
                timing.halts += 1

    def count(self, name: str, n: int = 1) -> None:
        """Bump a named counter."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + n

    def record_cache(self, stats: CacheStats) -> None:
        """Store the latest snapshot of a shared cache."""
        with self._lock:
            self.caches[stats.name] = stats

    # ------------------------------------------------------------ combining
    def merge(self, other: "PipelineProfile") -> None:
        """Fold another profile (e.g. from a worker process) into this one.

        Timings and counters add; cache snapshots add hit/miss counts
        (each worker owns its own cache instances).  ``other`` may be a
        *live* profile another thread is still recording into (the
        serving layer snapshots the pipeline profile mid-flush), so its
        dicts are copied under its own lock first; the two locks are
        never held together.
        """
        with other._lock:
            stages = {
                name: StageTiming(
                    calls=timing.calls,
                    seconds=timing.seconds,
                    halts=timing.halts,
                )
                for name, timing in other.stages.items()
            }
            counters = dict(other.counters)
            caches = dict(other.caches)
        with self._lock:
            self._merge_locked(stages, counters, caches)

    def _merge_locked(
        self,
        stages: dict[str, StageTiming],
        counters: dict[str, int],
        caches: dict[str, CacheStats],
    ) -> None:
        for name, timing in stages.items():
            mine = self.stages.get(name)
            if mine is None:
                mine = self.stages[name] = StageTiming()
            mine.calls += timing.calls
            mine.seconds += timing.seconds
            mine.halts += timing.halts
        for name, value in counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, stats in caches.items():
            mine_stats = self.caches.get(name)
            if mine_stats is None:
                self.caches[name] = stats
            else:
                self.caches[name] = CacheStats(
                    name=name,
                    hits=mine_stats.hits + stats.hits,
                    misses=mine_stats.misses + stats.misses,
                    size=max(mine_stats.size, stats.size),
                    bytes=max(mine_stats.bytes, stats.bytes),
                )

    # ------------------------------------------------------------ reporting
    @property
    def total_seconds(self) -> float:
        return sum(t.seconds for t in self.stages.values())

    def cache_summary(self) -> str:
        """One-line hit-rate digest of the shared caches."""
        return ", ".join(
            self.caches[name].describe()
            for name in sorted(self.caches)
            if self.caches[name].lookups
        )

    def to_dict(self) -> dict:
        """JSON-safe snapshot of everything observed, for ``/stats``."""
        with self._lock:
            return {
                "stages": {
                    name: timing.to_dict()
                    for name, timing in self.stages.items()
                },
                "counters": dict(self.counters),
                "caches": {
                    name: self.caches[name].to_dict()
                    for name in sorted(self.caches)
                },
                "total_seconds": sum(
                    t.seconds for t in self.stages.values()
                ),
            }

    def report(self) -> str:
        """Human-readable per-stage table plus cache hit rates."""
        lines = ["stage               calls   total(s)   mean(ms)  halts"]
        for name, timing in self.stages.items():
            lines.append(
                f"{name:<18} {timing.calls:>6d} {timing.seconds:>10.3f} "
                f"{timing.mean_ms:>10.3f} {timing.halts:>6d}"
            )
        for name, value in sorted(self.counters.items()):
            # Counters are ints for event counts but floats for timing
            # accumulators (e.g. pool_warmup_ms, snapshot_load_ms).
            rendered = (
                f"{value:>6d}" if isinstance(value, int) else f"{value:>9.2f}"
            )
            lines.append(f"{name:<18} {rendered}")
        if self.caches:
            lines.append("shared caches: " + (self.cache_summary() or "(cold)"))
        return "\n".join(lines)
