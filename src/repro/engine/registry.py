"""Stage registry — ablations and extensions as stage substitution.

Every pipeline stage is registered under a stable name; a pipeline is then
just a tuple of names resolved against a registry.  Swapping ``"ase"`` for
``"ase-passthrough"`` *is* the "w/o ASE" ablation — no ``if config.use_*``
branches inside the pipeline body — and third-party stages (a
knowledge-enhanced selector, a baseline extractor) plug in by registering
under a new name.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.engine.stage import Stage

__all__ = ["StageRegistry", "default_registry", "register_stage"]


class StageRegistry:
    """Name → stage-factory mapping.

    Factories take no required arguments (configuration travels in the
    :class:`~repro.engine.stage.StageContext` resources), so registering a
    stage class directly is the common case:

    >>> registry = StageRegistry()
    >>> @registry.register("noop")
    ... class Noop:
    ...     name = "noop"
    ...     def run(self, ctx): pass
    >>> registry.create("noop").name
    'noop'
    """

    def __init__(self) -> None:
        self._factories: dict[str, Callable[..., Stage]] = {}

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._factories))

    def __len__(self) -> int:
        return len(self._factories)

    def names(self) -> tuple[str, ...]:
        """All registered stage names, sorted."""
        return tuple(sorted(self._factories))

    def register(
        self, name: str, factory: Callable[..., Stage] | None = None
    ) -> Callable:
        """Register ``factory`` under ``name`` (usable as a decorator).

        Re-registering a taken name raises — substitution is explicit
        (register under a new name and change the plan), never silent.
        """
        if factory is None:
            def decorator(cls: Callable[..., Stage]) -> Callable[..., Stage]:
                self.register(name, cls)
                return cls

            return decorator
        if name in self._factories:
            raise ValueError(f"stage {name!r} is already registered")
        self._factories[name] = factory
        return factory

    def create(self, name: str, **kwargs) -> Stage:
        """Instantiate the stage registered under ``name``."""
        try:
            factory = self._factories[name]
        except KeyError:
            raise KeyError(
                f"unknown stage {name!r}; registered: {list(self.names())}"
            ) from None
        return factory(**kwargs)

    def build(self, plan: tuple[str, ...] | list[str]) -> list[Stage]:
        """Instantiate a whole pipeline plan, in order."""
        return [self.create(name) for name in plan]

    def clone(self) -> "StageRegistry":
        """An independent copy — extend it without touching this one."""
        copy = StageRegistry()
        copy._factories.update(self._factories)
        return copy


default_registry = StageRegistry()
"""The process-wide registry the core stages register into on import."""


def register_stage(name: str, factory: Callable[..., Stage] | None = None):
    """Register into :data:`default_registry` (decorator-friendly)."""
    return default_registry.register(name, factory)
