"""Stage contract of the execution engine.

A pipeline is a sequence of :class:`Stage` objects run over one mutable
:class:`StageContext`.  Each stage reads the artifacts earlier stages
produced, writes its own, and may *halt* the pipeline early by attaching a
finished result (e.g. nothing to distill, or a degenerate fallback).

Stages are stateless: everything they need — the pipeline components,
shared caches, configuration — travels in ``ctx.resources``, a
:class:`PipelineResources` bundle built once per :class:`~repro.core.pipeline.GCED`.
Statelessness is what makes stages trivially shareable across threads and
cheap to ship to worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

if TYPE_CHECKING:  # imports for typing only; engine stays core-agnostic
    from repro.core.ase import AnswerOrientedSentenceExtractor, ASEResult
    from repro.core.config import GCEDConfig
    from repro.core.efc import EvidenceForest, EvidenceForestConstructor
    from repro.core.oec import ClipTrace, GrowTrace, OptimalEvidenceDistiller
    from repro.core.qws import QuestionRelevantWordsSelector, QWSResult
    from repro.core.result import DistillationResult
    from repro.core.wsptc import WeightedTreeConstructor
    from repro.metrics.hybrid import HybridScorer
    from repro.parsing.tree import DependencyTree
    from repro.qa.base import QAModel
    from repro.qa.compiled import ContextCompiler
    from repro.qa.training import TrainedArtifacts
    from repro.retrieval.retriever import CorpusRetriever
    from repro.text.tokenizer import Token

__all__ = ["PipelineResources", "Stage", "StageContext"]


@dataclass
class PipelineResources:
    """Shared components and caches every stage may draw on.

    One bundle is built per pipeline and reused across every context that
    flows through it — the parser memo, attention tables, LM tables, and
    scorer caches all live (transitively) inside these components, which
    is what makes context-grouped batch execution cache-friendly.
    """

    config: "GCEDConfig"
    qa_model: "QAModel"
    artifacts: "TrainedArtifacts"
    ase: "AnswerOrientedSentenceExtractor"
    qws: "QuestionRelevantWordsSelector"
    wsptc: "WeightedTreeConstructor"
    efc: "EvidenceForestConstructor"
    oec: "OptimalEvidenceDistiller"
    scorer: "HybridScorer"
    # Optional corpus retriever enabling the open-context plan (the
    # ``retrieve`` stage resolves question+answer-only inputs against it).
    retriever: "CorpusRetriever | None" = None
    # The QA model's compiled-context cache (None for models without
    # one), bundled like the other pipeline components so custom stages
    # can pre-compile or inspect paragraph artifacts via ctx.resources.
    compiler: "ContextCompiler | None" = None


@dataclass
class StageContext:
    """Mutable carrier of one (question, answer, context) distillation.

    The input triple and the resource bundle are set at construction; each
    stage fills in the artifact slots it owns.  ``result`` doubles as the
    halt signal: once any stage sets it, the runner stops and returns it.
    """

    question: str
    answer: str
    context: str
    resources: PipelineResources

    # Artifacts, in pipeline order.  Owned by the stage named in brackets.
    ase: "ASEResult | None" = None                       # [ase]
    aos_tokens: "list[Token]" = field(default_factory=list)  # [tokenize]
    qws: "QWSResult | None" = None                       # [qws]
    tree: "DependencyTree | None" = None                 # [wsptc]
    answer_indices: frozenset[int] = frozenset()         # [efc]
    forest: "EvidenceForest | None" = None               # [efc]
    evidence: str = ""                                   # [oec]
    evidence_nodes: set[int] = field(default_factory=set)  # [oec]
    grow_trace: "list[GrowTrace]" = field(default_factory=list)  # [oec]
    clip_trace: "list[ClipTrace]" = field(default_factory=list)  # [oec]

    result: "DistillationResult | None" = None
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def halted(self) -> bool:
        """True once a stage attached a finished result."""
        return self.result is not None

    def halt(self, result: "DistillationResult") -> None:
        """Finish the pipeline early with ``result``."""
        self.result = result


@runtime_checkable
class Stage(Protocol):
    """One pipeline step.

    Implementations expose a stable ``name`` (the registry key and the
    instrumentation label) and mutate the context in ``run``.  They must
    not keep per-call state on ``self``.
    """

    name: str

    def run(self, ctx: StageContext) -> None:
        """Read earlier artifacts from ``ctx``, write this stage's own."""
        ...
