"""Staged execution engine for the GCED pipeline.

The engine decomposes evidence distillation into pluggable, registered
stages (:mod:`repro.engine.stage`, :mod:`repro.engine.registry`) executed
over a shared :class:`~repro.engine.stage.StageContext`, with batch
scheduling delegated to executors (:mod:`repro.engine.executor`) and
per-stage observability collected in a
:class:`~repro.engine.instrumentation.PipelineProfile`.

The engine layer is deliberately free of GCED specifics: the concrete
stages (ASE, QWS, WSPTC, EFC, OEC) live in :mod:`repro.core.stages` and
plug in through the default registry, so ablations and extensions are
stage substitutions rather than in-body branches.
"""

from repro.engine.executor import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    WarmupReport,
    build_executor,
)
from repro.engine.instrumentation import CacheStats, PipelineProfile, StageTiming
from repro.engine.registry import StageRegistry, default_registry, register_stage
from repro.engine.snapshot import PipelineSnapshot, SnapshotHandle
from repro.engine.stage import PipelineResources, Stage, StageContext

__all__ = [
    "CacheStats",
    "Executor",
    "ParallelExecutor",
    "PipelineProfile",
    "PipelineResources",
    "PipelineSnapshot",
    "SerialExecutor",
    "SnapshotHandle",
    "Stage",
    "StageContext",
    "StageRegistry",
    "StageTiming",
    "WarmupReport",
    "build_executor",
    "default_registry",
    "register_stage",
]
