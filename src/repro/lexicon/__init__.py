"""Lexical resources: mini-WordNet and function-word lists for QWS."""

from repro.lexicon.wordnet import MiniWordNet, default_wordnet
from repro.lexicon.knowledge import KnowledgeGraph, graph_from_kb
from repro.lexicon.stopwords import (
    QUESTION_WORDS,
    AUXILIARY_VERBS,
    FUNCTION_WORDS,
    INSIGNIFICANT_WORDS,
    is_insignificant,
)

__all__ = [
    "MiniWordNet",
    "default_wordnet",
    "KnowledgeGraph",
    "graph_from_kb",
    "QUESTION_WORDS",
    "AUXILIARY_VERBS",
    "FUNCTION_WORDS",
    "INSIGNIFICANT_WORDS",
    "is_insignificant",
]
