"""Mini-WordNet: synonym / antonym / hypernym-sibling lookups for QWS.

The paper (Sec. III-C) expands each significant question word with "its
synonyms, antonyms, sibling terms sharing the same hypernym (by lookup
from WordNet)".  This module provides the same query surface over the
embedded synset inventory in :mod:`repro.lexicon.data`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from repro.lexicon.data import SYNSETS
from repro.lexicon.data_extended import EXTENDED_SYNSETS

__all__ = ["MiniWordNet", "default_wordnet"]

ALL_SYNSETS = SYNSETS + EXTENDED_SYNSETS


class MiniWordNet:
    """In-memory lexical database with WordNet-style relation queries.

    A word may belong to several synsets (e.g. "record" as noun-achievement
    and verb-create); queries union over all of them, matching how QWS uses
    WordNet (any related surface form counts as a clue).
    """

    def __init__(
        self,
        synsets: Iterable[tuple[tuple[str, ...], str, tuple[str, ...]]] | None = None,
    ) -> None:
        if synsets is None:
            synsets = ALL_SYNSETS
        self._synsets: list[tuple[tuple[str, ...], str, tuple[str, ...]]] = []
        self._word_to_synsets: dict[str, list[int]] = defaultdict(list)
        self._hypernym_to_synsets: dict[str, list[int]] = defaultdict(list)
        for lemmas, hypernym, antonyms in synsets:
            self.add_synset(lemmas, hypernym, antonyms)

    def add_synset(
        self,
        lemmas: tuple[str, ...] | list[str],
        hypernym: str,
        antonyms: tuple[str, ...] | list[str] = (),
    ) -> int:
        """Register a synset; returns its id.  Lemmas are lowercased."""
        lemmas = tuple(lemma.lower() for lemma in lemmas)
        antonyms = tuple(a.lower() for a in antonyms)
        if not lemmas:
            raise ValueError("a synset needs at least one lemma")
        sid = len(self._synsets)
        self._synsets.append((lemmas, hypernym, antonyms))
        for lemma in lemmas:
            self._word_to_synsets[lemma].append(sid)
        self._hypernym_to_synsets[hypernym].append(sid)
        return sid

    def __contains__(self, word: str) -> bool:
        return word.lower() in self._word_to_synsets

    def __len__(self) -> int:
        return len(self._synsets)

    @property
    def vocabulary(self) -> set[str]:
        """All lemmas known to the lexicon."""
        return set(self._word_to_synsets)

    def synsets_of(self, word: str) -> list[int]:
        """Ids of the synsets containing ``word`` (empty if unknown)."""
        return list(self._word_to_synsets.get(word.lower(), ()))

    def synonyms(self, word: str) -> set[str]:
        """Words sharing a synset with ``word`` (excluding the word itself)."""
        word = word.lower()
        result: set[str] = set()
        for sid in self._word_to_synsets.get(word, ()):
            result.update(self._synsets[sid][0])
        result.discard(word)
        return result

    def antonyms(self, word: str) -> set[str]:
        """Antonyms of ``word``, expanded to the antonyms' full synsets."""
        word = word.lower()
        direct: set[str] = set()
        for sid in self._word_to_synsets.get(word, ()):
            direct.update(self._synsets[sid][2])
        expanded = set(direct)
        for ant in direct:
            expanded.update(self.synonyms(ant))
        expanded.discard(word)
        return expanded

    def siblings(self, word: str) -> set[str]:
        """Lemmas of sister synsets sharing a hypernym with ``word``.

        Excludes the word's own synonyms (those are returned by
        :meth:`synonyms`) and the word itself.
        """
        word = word.lower()
        own_synsets = set(self._word_to_synsets.get(word, ()))
        result: set[str] = set()
        for sid in own_synsets:
            hypernym = self._synsets[sid][1]
            for sibling_id in self._hypernym_to_synsets[hypernym]:
                if sibling_id not in own_synsets:
                    result.update(self._synsets[sibling_id][0])
        result.discard(word)
        return result - self.synonyms(word)

    def related(self, word: str) -> set[str]:
        """Union of synonyms, antonyms and hypernym siblings of ``word``.

        This is exactly the expansion set QWS matches against the
        answer-oriented sentences.
        """
        return self.synonyms(word) | self.antonyms(word) | self.siblings(word)


_DEFAULT: MiniWordNet | None = None


def default_wordnet() -> MiniWordNet:
    """Return the shared lexicon built from the embedded synset data."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = MiniWordNet()
    return _DEFAULT
