"""Insignificant-word lists used by the Question-relevant Words Selector.

Sec. III-C: QWS removes "all question terms (such as who, where), auxiliary
verbs (such as do, did), functional words (conj, art, prep, pron) and
punctuations" before looking up clue words.
"""

from __future__ import annotations

import string

__all__ = [
    "QUESTION_WORDS",
    "AUXILIARY_VERBS",
    "FUNCTION_WORDS",
    "INSIGNIFICANT_WORDS",
    "is_insignificant",
]

QUESTION_WORDS = frozenset(
    {
        "who", "whom", "whose", "what", "which", "where", "when", "why",
        "how", "whether",
    }
)

AUXILIARY_VERBS = frozenset(
    {
        "do", "does", "did", "done", "doing",
        "be", "am", "is", "are", "was", "were", "been", "being",
        "have", "has", "had", "having",
        "will", "would", "shall", "should", "can", "could", "may",
        "might", "must",
    }
)

# Conjunctions, articles, prepositions, pronouns and other closed-class words.
FUNCTION_WORDS = frozenset(
    {
        # articles / determiners
        "a", "an", "the", "this", "that", "these", "those", "some", "any",
        "each", "every", "no", "such", "its", "his", "her", "their", "our",
        "my", "your",
        # conjunctions
        "and", "or", "but", "nor", "so", "yet", "because", "although",
        "while", "if", "than", "as", "though", "since", "unless", "whereas",
        # prepositions
        "of", "in", "on", "at", "by", "for", "with", "about", "against",
        "between", "into", "through", "during", "before", "after", "above",
        "below", "to", "from", "up", "down", "over", "under", "across",
        "near", "off", "onto", "upon", "within", "without", "along",
        "around", "behind", "beside", "toward", "towards", "via",
        # pronouns
        "i", "you", "he", "she", "it", "we", "they", "me", "him", "them",
        "us", "himself", "herself", "itself", "themselves", "one", "there",
        # misc closed-class
        "not", "also", "both", "either", "neither", "only", "own", "same",
        "then", "too", "very", "just", "most", "more", "other", "another",
        "many", "much", "few", "all",
    }
)

_PUNCTUATION = frozenset(string.punctuation)

INSIGNIFICANT_WORDS = QUESTION_WORDS | AUXILIARY_VERBS | FUNCTION_WORDS


def is_insignificant(word: str) -> bool:
    """True if ``word`` should be removed from a question before QWS lookup.

    >>> is_insignificant("Which")
    True
    >>> is_insignificant("NFL")
    False
    """
    lowered = word.lower()
    if lowered in INSIGNIFICANT_WORDS:
        return True
    return all(ch in _PUNCTUATION for ch in word)
