"""Entity knowledge graph — the paper's "world knowledge" future work.

Sec. IV-G: GCED fails on the Solomon/Bathsheba example because it "doesn't
have knowledge to know the relationship among child, David, and wife".
This module adds that capability: a typed entity-relation graph
(networkx) that QWS can consult, so question entities expand not only
through the lexical database but also through *related entities* — the
bridge words a human uses when judging relevance.

The graph can be built from user triples or derived automatically from a
synthetic :class:`repro.datasets.kb.KnowledgeBase`.
"""

from __future__ import annotations

from typing import Iterable

import networkx as nx

from repro.lexicon.stopwords import is_insignificant

__all__ = ["KnowledgeGraph", "graph_from_kb"]


def _content_words(entity: str) -> list[str]:
    """Words of a multi-word entity worth indexing (no articles etc.)."""
    return [
        w for w in entity.split() if len(w) > 2 and not is_insignificant(w)
    ]


class KnowledgeGraph:
    """Typed entity-relation graph with neighbourhood queries.

    Nodes are lowercased entity surface strings; edges carry a ``relation``
    attribute.  Multi-word entities are also indexed by their individual
    content words so that token-level lookups ("Bathsheba" inside a longer
    mention) still resolve.
    """

    def __init__(self) -> None:
        self._graph = nx.Graph()
        self._word_index: dict[str, set[str]] = {}

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    @property
    def n_edges(self) -> int:
        return self._graph.number_of_edges()

    # ------------------------------------------------------------- building
    def add_entity(self, name: str) -> str:
        """Register an entity; returns its canonical (lowercased) node id."""
        node = name.lower().strip()
        if not node:
            raise ValueError("entity name must be non-empty")
        if node not in self._graph:
            self._graph.add_node(node)
            for word in _content_words(node):
                self._word_index.setdefault(word, set()).add(node)
        return node

    def add_relation(self, subject: str, relation: str, obj: str) -> None:
        """Add a typed edge (undirected: relatedness is symmetric for QWS)."""
        s = self.add_entity(subject)
        o = self.add_entity(obj)
        self._graph.add_edge(s, o, relation=relation)

    def add_triples(self, triples: Iterable[tuple[str, str, str]]) -> None:
        for subject, relation, obj in triples:
            self.add_relation(subject, relation, obj)

    # -------------------------------------------------------------- queries
    def resolve(self, word: str) -> set[str]:
        """Entity nodes matching ``word`` (exact node or word-index hit)."""
        word = word.lower().strip()
        nodes: set[str] = set()
        if word in self._graph:
            nodes.add(word)
        nodes |= self._word_index.get(word, set())
        return nodes

    def __contains__(self, word: str) -> bool:
        return bool(self.resolve(word))

    def neighbors(self, word: str, hops: int = 1) -> set[str]:
        """Entities within ``hops`` of any entity matched by ``word``."""
        if hops < 1:
            raise ValueError("hops must be at least 1")
        frontier = self.resolve(word)
        seen = set(frontier)
        for _ in range(hops):
            next_frontier: set[str] = set()
            for node in frontier:
                next_frontier.update(self._graph.neighbors(node))
            next_frontier -= seen
            seen |= next_frontier
            frontier = next_frontier
        return seen - self.resolve(word)

    def related_words(self, word: str, hops: int = 1) -> set[str]:
        """Individual content words of the neighbour entities.

        This is the expansion set QWS consumes: any of these words
        appearing in the answer-oriented sentences marks a clue token.
        """
        words: set[str] = set()
        for entity in self.neighbors(word, hops=hops):
            words.update(_content_words(entity))
        return words

    def relation_path(self, a: str, b: str) -> list[str] | None:
        """Shortest relation chain between two entities, or None.

        Used by the explanation trace: "Solomon —child_of→ David
        —married_to→ Bathsheba".
        """
        sources = self.resolve(a)
        targets = self.resolve(b)
        if not sources or not targets:
            return None
        best: list[str] | None = None
        for source in sources:
            for target in targets:
                try:
                    path = nx.shortest_path(self._graph, source, target)
                except nx.NetworkXNoPath:
                    continue
                if best is None or len(path) < len(best):
                    best = path
        if best is None:
            return None
        chain = []
        for u, v in zip(best, best[1:]):
            relation = self._graph.edges[u, v].get("relation", "related")
            chain.append(f"{u} -{relation}-> {v}")
        return chain


def graph_from_kb(kb) -> KnowledgeGraph:
    """Derive a knowledge graph from a synthetic dataset KB.

    Encodes the same relations the passage generators verbalize, so the
    graph is exactly the "world knowledge" a reader of the corpus would
    accumulate.
    """
    graph = KnowledgeGraph()
    for person in kb.people:
        attrs = person.attributes
        graph.add_relation(person.name, "born_in", attrs["birth_city"])
        graph.add_relation(person.name, "profession", attrs["profession"])
        graph.add_relation(person.name, "created", attrs["work_title"])
        graph.add_relation(person.name, "received", attrs["award"])
        graph.add_relation(person.name, "studied_at", attrs["university"])
        graph.add_relation(person.name, "discovered", attrs["discovery"])
    for team in kb.teams:
        attrs = team.attributes
        graph.add_relation(team.name, "based_in", attrs["city"])
        graph.add_relation(team.name, "plays", attrs["sport"])
        graph.add_relation(team.name, "won", attrs["event"])
    for city in kb.cities:
        attrs = city.attributes
        graph.add_relation(city.name, "located_in", attrs["country"])
        graph.add_relation(city.name, "river", attrs["river"])
    for battle in kb.battles:
        attrs = battle.attributes
        graph.add_relation(battle.name, "fought_at", attrs["place"])
        graph.add_relation(battle.name, "won_by", attrs["winner"])
    return graph
