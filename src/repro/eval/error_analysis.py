"""Error analysis (Sec. IV-G): find and categorize unsatisfying evidences.

The paper's error analysis identifies two failure families — evidences
whose readability suffers because GCED lacks world knowledge to bridge
entities, and long contexts with complicated nested clauses.  This module
automates the triage: it scores distilled evidences, flags the weak ones,
and assigns each a diagnostic category.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pipeline import DistillationResult
from repro.datasets.types import QAExample
from repro.eval.context import ExperimentContext
from repro.text.sentences import split_sentences
from repro.text.tokenizer import word_tokens

__all__ = ["EvidenceDiagnosis", "analyze_errors", "CATEGORY_DESCRIPTIONS"]

CATEGORY_DESCRIPTIONS = {
    "low-readability": (
        "evidence reads badly — typically missing linking words between "
        "clue entities (the paper's 'Solomon had brothers' failure)"
    ),
    "low-informativeness": (
        "the QA model cannot re-derive the answer from the evidence"
    ),
    "verbose": "the clip step left substantially redundant material",
    "long-complex-context": (
        "the source context is long with nested clauses; distillation "
        "struggled (the paper's second failure family)"
    ),
    "ok": "evidence meets all three criteria",
}


@dataclass(frozen=True)
class EvidenceDiagnosis:
    """Triage record for one distilled evidence.

    ``category`` is a key of :data:`CATEGORY_DESCRIPTIONS`.
    """

    example_id: str
    question: str
    answer: str
    evidence: str
    category: str
    informativeness: float
    readability: float
    length_ratio: float
    context_sentences: int


def _categorize(
    result: DistillationResult,
    length_ratio: float,
    context_sentences: int,
    readability_floor: float,
    informativeness_floor: float,
    verbosity_ceiling: float,
) -> str:
    scores = result.scores
    if scores.informativeness < informativeness_floor:
        if context_sentences >= 8:
            return "long-complex-context"
        return "low-informativeness"
    if scores.readability < readability_floor:
        return "low-readability"
    if length_ratio > verbosity_ceiling:
        return "verbose"
    return "ok"


def analyze_errors(
    ctx: ExperimentContext,
    examples: list[QAExample] | None = None,
    n_examples: int = 40,
    readability_floor: float = 0.25,
    informativeness_floor: float = 0.5,
    verbosity_ceiling: float = 2.5,
) -> list[EvidenceDiagnosis]:
    """Distill (ground-truth based) and triage evidences for ``examples``.

    Returns one diagnosis per example, worst categories first.
    """
    if examples is None:
        examples = ctx.dataset.answerable_dev()[:n_examples]
    diagnoses: list[EvidenceDiagnosis] = []
    for example in examples:
        result = ctx.gold_evidence(example)
        expected = ctx.expected_evidence_length(
            example.question, example.primary_answer
        )
        length = max(1, len(word_tokens(result.evidence)))
        ratio = length / expected
        n_sentences = len(split_sentences(example.context))
        category = _categorize(
            result,
            ratio,
            n_sentences,
            readability_floor,
            informativeness_floor,
            verbosity_ceiling,
        )
        diagnoses.append(
            EvidenceDiagnosis(
                example_id=example.example_id,
                question=example.question,
                answer=example.primary_answer,
                evidence=result.evidence,
                category=category,
                informativeness=result.scores.informativeness,
                readability=result.scores.readability,
                length_ratio=ratio,
                context_sentences=n_sentences,
            )
        )
    severity = {
        "long-complex-context": 0,
        "low-informativeness": 1,
        "low-readability": 2,
        "verbose": 3,
        "ok": 4,
    }
    diagnoses.sort(key=lambda d: (severity[d.category], -d.length_ratio))
    return diagnoses
