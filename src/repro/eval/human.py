"""Simulated human-evaluation protocol (Sec. IV-A1).

The paper enrolls 9 graduate raters in 3 groups, scores evidences on the
1-5 scoresheet of Table I, discards controversial items, and averages.
Offline, the protocol is reproduced with simulated raters:

* each evidence's *true* 1-5 scores are derived from the machine metrics
  through calibrated mappings of the Table I rubric (e.g. conciseness
  thresholds at 1.5x / 2x / 3x the expected evidence length),
* each rater adds a personal bias and per-item noise before rounding to
  the integer scale,
* per group, items whose rating spread exceeds 2 points are discarded as
  controversial, and Krippendorff's alpha is computed on the rest.

The only synthetic ingredient is the rater noise; the quality signal
itself comes from the real distilled evidences.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.eval.agreement import krippendorff_alpha
from repro.utils.rng import rng_from

__all__ = ["RatingRecord", "PanelResult", "RaterPanel"]

_CRITERIA = ("informativeness", "conciseness", "readability")


@dataclass(frozen=True)
class RatingRecord:
    """Machine-metric inputs for rating one evidence.

    Attributes:
        informativeness: I(e) in [0, 1].
        length_ratio: L(evidence) / L(expected evidence) — the quantity the
            Table I conciseness rubric thresholds.
        readability: R(e) in (0, 1].
        question_coverage: fraction of significant question words (or their
            lexical relatives) present in the evidence — the Table I rubric's
            "related to the QA pair" dimension of informativeness.
    """

    informativeness: float
    length_ratio: float
    readability: float
    question_coverage: float = 1.0

    def true_scores(self) -> dict[str, float]:
        """Map machine metrics onto the 1-5 scoresheet.

        Mappings are compressed at the top (a perfect machine score maps to
        ~4.5, not 5.0): human raters reserve straight 5s, which is why the
        paper's per-criterion means sit in the 0.75-0.90 band rather than
        saturating.
        """
        relatedness = 0.35 + 0.65 * max(0.0, min(1.0, self.question_coverage))
        inferable = max(0.0, self.informativeness) ** 0.75
        i_rating = 1.0 + 3.5 * (0.08 + 0.92 * inferable * relatedness)
        c_rating = float(
            np.interp(self.length_ratio, [0.8, 1.5, 2.0, 3.0, 4.0], [4.6, 4, 3, 2, 1])
        )
        r_rating = float(
            np.interp(self.readability, [0.03, 0.12, 0.25, 0.45, 0.65], [1, 2, 3, 4, 4.6])
        )
        return {
            "informativeness": min(5.0, i_rating),
            "conciseness": c_rating,
            "readability": r_rating,
        }


@dataclass
class PanelResult:
    """Aggregated human-evaluation outcome.

    Scores are on the paper's [0, 1] scale (mean rating / 5).  ``alpha``
    maps (criterion, group index) to Krippendorff's alpha; ``hybrid`` uses
    equal criterion weights as in Sec. IV-A1.
    """

    scores: dict[str, float]
    alpha: dict[tuple[str, int], float]
    n_items: int
    n_discarded: int
    per_item: list[dict[str, float]] = field(default_factory=list)

    @property
    def hybrid(self) -> float:
        return sum(self.scores[c] for c in _CRITERIA) / len(_CRITERIA)

    def row(self) -> tuple[float, float, float, float]:
        """(I, C, R, H) — one row of Table IV/V."""
        return (
            self.scores["informativeness"],
            self.scores["conciseness"],
            self.scores["readability"],
            self.hybrid,
        )


class RaterPanel:
    """Simulated 3x3 rater panel.

    Args:
        seed: rater-noise seed.
        n_groups: rater groups (paper: 3).
        raters_per_group: raters per group (paper: 3).
        noise_sd: per-item rating noise (1-5 scale).
        bias_sd: per-rater systematic bias.
        spread_threshold: per-item max-min spread above which the item is
            "controversial" and discarded for that group.
    """

    def __init__(
        self,
        seed: int = 0,
        n_groups: int = 3,
        raters_per_group: int = 3,
        noise_sd: float = 0.28,
        bias_sd: float = 0.12,
        item_jitter_sd: float = 0.8,
        spread_threshold: float = 2.0,
    ) -> None:
        if n_groups < 1 or raters_per_group < 2:
            raise ValueError("need at least 1 group of 2 raters")
        self.seed = seed
        self.n_groups = n_groups
        self.raters_per_group = raters_per_group
        self.noise_sd = noise_sd
        self.bias_sd = bias_sd
        # Latent per-item perceptual shift shared by all raters: some
        # evidences read better or worse than their machine scores suggest,
        # and every rater sees the same surface.  This is what gives human
        # panels their item variance (and hence their alpha in the 0.75-0.85
        # band) even when mean quality is uniformly high.
        self.item_jitter_sd = item_jitter_sd
        self.spread_threshold = spread_threshold

    def rate(self, records: list[RatingRecord], label: str = "") -> PanelResult:
        """Run the full protocol over the evidences' rating records."""
        if not records:
            raise ValueError("cannot rate an empty evidence set")
        rng = rng_from(self.seed, f"panel:{label}")
        biases = rng.normal(
            0.0, self.bias_sd, size=(self.n_groups, self.raters_per_group)
        )
        n_items = len(records)
        true = {}
        for criterion in _CRITERIA:
            base = np.array([r.true_scores()[criterion] for r in records])
            jitter = rng.normal(0.0, self.item_jitter_sd, size=n_items)
            true[criterion] = np.clip(base + jitter, 1.0, 5.0)

        kept_ratings: dict[str, list[float]] = {c: [] for c in _CRITERIA}
        alpha: dict[tuple[str, int], float] = {}
        n_discarded = 0
        per_item: list[dict[str, float]] = [dict() for _ in range(n_items)]
        for g in range(self.n_groups):
            for criterion in _CRITERIA:
                raw = np.empty((self.raters_per_group, n_items))
                for r in range(self.raters_per_group):
                    noise = rng.normal(0.0, self.noise_sd, size=n_items)
                    raw[r] = np.clip(
                        np.rint(true[criterion] + biases[g, r] + noise), 1, 5
                    )
                spread = raw.max(axis=0) - raw.min(axis=0)
                keep = spread <= self.spread_threshold
                n_discarded += int((~keep).sum())
                matrix = raw.copy()
                matrix[:, ~keep] = np.nan
                if keep.any():
                    alpha[(criterion, g)] = krippendorff_alpha(matrix)
                    kept_ratings[criterion].extend(raw[:, keep].mean(axis=0))
                    means = raw[:, keep].mean(axis=0)
                    for idx, item in enumerate(np.nonzero(keep)[0]):
                        per_item[item][criterion] = float(means[idx]) / 5.0
                else:  # pragma: no cover - extreme noise settings only
                    alpha[(criterion, g)] = 0.0

        scores = {
            criterion: float(np.mean(values)) / 5.0
            for criterion, values in kept_ratings.items()
        }
        return PanelResult(
            scores=scores,
            alpha=alpha,
            n_items=n_items,
            n_discarded=n_discarded,
            per_item=per_item,
        )
