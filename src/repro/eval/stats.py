"""Statistical tests for the experiment claims.

The paper states there is "no significant difference between human
evaluation for predicted-answer-based evidences and ground-truth-based
evidences (the p-value is > 0.5)"; ``paired_pvalue`` reproduces that
check.  Implementations live in :mod:`repro.utils.statistics` (imported
here for the eval-facing API) so lower layers can use them without
importing the eval package.
"""

from repro.utils.statistics import mean_confidence_interval, paired_pvalue

__all__ = ["paired_pvalue", "mean_confidence_interval"]
