"""Experiment runners — one function per paper table/figure.

Every runner takes an :class:`ExperimentContext` plus sample-size knobs and
returns structured rows; the benchmark modules format and print them.
"""

from __future__ import annotations

import numpy as np

from repro.core.batch import BatchDistiller
from repro.core.pipeline import GCED
from repro.datasets.types import QAExample
from repro.eval.context import ExperimentContext
from repro.eval.human import RaterPanel, RatingRecord
from repro.metrics.overlap import exact_match, f1_score
from repro.text.tokenizer import word_tokens
from repro.utils.rng import rng_from

__all__ = [
    "human_evaluation_table",
    "qa_augmentation_table",
    "ablation_table",
    "degradation_curves",
    "reduction_statistics",
    "agreement_table",
]


def _eval_examples(ctx: ExperimentContext, n: int) -> list[QAExample]:
    examples = ctx.dataset.answerable_dev()
    if not examples:
        raise ValueError("dataset has no answerable dev examples")
    return examples[:n]


# --------------------------------------------------------------- Tables IV/V
def human_evaluation_table(
    ctx: ExperimentContext,
    n_examples: int = 24,
    panel: RaterPanel | None = None,
) -> list[dict]:
    """Tables IV/V: human-eval I/C/R/H per answer source (9 models + gt).

    Predicted-answer rows distill evidence from each model's prediction;
    the ground-truth row distills from gold answers.  Informativeness is
    always measured against the *input* answer (the paper's definition).
    """
    panel = panel or RaterPanel(seed=ctx.seed)
    examples = _eval_examples(ctx, n_examples)
    ctx.prewarm_gold(examples)
    rows: list[dict] = []
    for name, model in ctx.baselines.items():
        records: list[RatingRecord] = []
        for example in examples:
            result, predicted = ctx.predicted_evidence(example, model)
            answer = predicted or example.primary_answer
            if not result.evidence:
                continue
            records.append(
                ctx.rating_record(result, example.question, answer)
            )
        outcome = panel.rate(records, label=f"{ctx.dataset.key}:{name}")
        i, c, r, h = outcome.row()
        rows.append(
            {"source": name, "I": i, "C": c, "R": r, "H": h,
             "n": outcome.n_items, "discarded": outcome.n_discarded}
        )
    # Ground-truth row.
    records = []
    for example in examples:
        result = ctx.gold_evidence(example)
        if not result.evidence:
            continue
        records.append(
            ctx.rating_record(result, example.question, example.primary_answer)
        )
    outcome = panel.rate(records, label=f"{ctx.dataset.key}:ground-truth")
    i, c, r, h = outcome.row()
    rows.append(
        {"source": "Ground-truth", "I": i, "C": c, "R": r, "H": h,
         "n": outcome.n_items, "discarded": outcome.n_discarded}
    )
    return rows


# -------------------------------------------------------------- Tables VI/VII
def qa_augmentation_table(
    ctx: ExperimentContext, n_examples: int = 40
) -> list[dict]:
    """Tables VI/VII: EM/F1 of each baseline vs its +GCED variant.

    The +GCED variant answers from the evidence distilled with the
    ground-truth answer (the paper's ideal-setting experiment); the gain is
    mechanistic — distilled evidences carry fewer distractor spans.
    """
    examples = _eval_examples(ctx, n_examples)
    ctx.prewarm_gold(examples)
    evidences = {e.example_id: ctx.gold_evidence(e).evidence for e in examples}
    rows: list[dict] = []
    for name, model in ctx.baselines.items():
        base_em = base_f1 = aug_em = aug_f1 = 0.0
        for example in examples:
            gold = example.primary_answer
            base_pred = model.predict_example(
                example.question, example.context, gold, example.example_id
            )
            base_em += exact_match(base_pred.text, gold)
            base_f1 += f1_score(base_pred.text, gold)
            evidence = evidences[example.example_id] or example.context
            aug_pred = model.predict_example(
                example.question, evidence, gold, example.example_id
            )
            aug_em += exact_match(aug_pred.text, gold)
            aug_f1 += f1_score(aug_pred.text, gold)
        n = len(examples)
        rows.append(
            {
                "model": name,
                "EM": 100.0 * base_em / n,
                "F1": 100.0 * base_f1 / n,
                "EM+GCED": 100.0 * aug_em / n,
                "F1+GCED": 100.0 * aug_f1 / n,
            }
        )
    return rows


# ----------------------------------------------------------------- Table VIII
def ablation_table(
    ctx: ExperimentContext,
    model_name: str = "BERT-large",
    n_examples: int = 24,
    panel: RaterPanel | None = None,
) -> list[dict]:
    """Table VIII: effect of removing each GCED component.

    Run on one baseline model (the paper uses BERT on SQuAD-2.0): for each
    ablation, distill ground-truth-based evidences, rate them with the
    panel, and measure the model's EM/F1 with the evidence as context.

    Each ablated config resolves to a different engine stage plan
    (``stage_plan(config)``) — e.g. "w/o ASE" substitutes the
    ``ase-passthrough`` stage — and each condition's distillation runs as
    one context-grouped batch on the engine executor.
    """
    panel = panel or RaterPanel(seed=ctx.seed)
    model = ctx.baselines[model_name]
    examples = _eval_examples(ctx, n_examples)
    components = ["ase", "qws", "grow", "clip", "i", "c", "r", None]
    rows: list[dict] = []
    for component in components:
        config = ctx.gced.config if component is None else ctx.gced.config.ablate(component)
        gced = GCED(
            qa_model=ctx.artifacts.reader,
            artifacts=ctx.artifacts,
            config=config,
        )
        with BatchDistiller(
            gced,
            workers=ctx.distiller.executor.workers,
            backend=ctx.distiller.backend,
        ) as distiller:
            results = distiller.distill_examples(examples)
        records: list[RatingRecord] = []
        em = f1 = 0.0
        for example, result in zip(examples, results):
            gold = example.primary_answer
            evidence = result.evidence or example.context
            records.append(
                ctx.rating_record(result, example.question, gold)
                if result.evidence
                else ctx.rating_record_for_text(evidence, example.question, gold)
            )
            pred = model.predict_example(
                example.question, evidence, gold, example.example_id
            )
            em += exact_match(pred.text, gold)
            f1 += f1_score(pred.text, gold)
        outcome = panel.rate(records, label=f"ablate:{component}")
        i, c, r, h = outcome.row()
        label = "full" if component is None else f"w/o {component.upper()}"
        n = len(examples)
        rows.append(
            {"source": label, "I": i, "C": c, "R": r, "H": h,
             "EM": 100.0 * em / n, "F1": 100.0 * f1 / n}
        )
    return rows


# --------------------------------------------------------------------- Fig. 7
def degradation_curves(
    ctx: ExperimentContext,
    deltas: tuple[float, ...] = (0.0, 0.2, 0.5, 0.8, 1.0),
    n_examples: int = 30,
    model_names: tuple[str, ...] | None = None,
) -> list[dict]:
    """Fig. 7: QA performance vs fraction δ of predicted-answer evidences.

    For each δ, a deterministic δ-fraction of examples has its evidence
    distilled from the model's *predicted* answer instead of the gold one;
    the model is then evaluated with those evidences as contexts.  Wrong
    predicted answers yield evidences that may omit the gold span, which is
    the degradation mechanism.
    """
    examples = _eval_examples(ctx, n_examples)
    ctx.prewarm_gold(examples)
    names = list(model_names or ctx.baselines)
    rows: list[dict] = []
    for name in names:
        model = ctx.baselines[name]
        # Deterministic substitution order shared across deltas so curves
        # are nested (pred20 ⊂ pred50 ⊂ ...), as in the paper's setup.
        order = rng_from(ctx.seed, f"degradation:{name}").permutation(
            len(examples)
        )
        pred_results: dict[str, tuple] = {}
        for example in examples:
            pred_results[example.example_id] = ctx.predicted_evidence(
                example, model
            )
        for delta in deltas:
            n_pred = int(round(delta * len(examples)))
            use_pred = {examples[i].example_id for i in order[:n_pred]}
            em = f1 = 0.0
            for example in examples:
                gold = example.primary_answer
                if example.example_id in use_pred:
                    result, predicted = pred_results[example.example_id]
                    evidence = result.evidence or example.context
                else:
                    evidence = ctx.gold_evidence(example).evidence or example.context
                pred = model.predict_example(
                    example.question,
                    evidence,
                    gold,
                    example.example_id,
                )
                em += exact_match(pred.text, gold)
                f1 += f1_score(pred.text, gold)
            n = len(examples)
            rows.append(
                {
                    "model": name,
                    "delta": delta,
                    "EM": 100.0 * em / n,
                    "F1": 100.0 * f1 / n,
                }
            )
    return rows


# ------------------------------------------------------- word reduction (§IV-D1)
def reduction_statistics(
    ctx: ExperimentContext, n_examples: int = 30
) -> dict:
    """Mean fraction of context words removed by distillation.

    The paper reports 78.5% on SQuAD and 87.2% on TriviaQA.
    """
    examples = _eval_examples(ctx, n_examples)
    ctx.prewarm_gold(examples)
    reductions = []
    lengths_ctx = []
    lengths_ev = []
    for example in examples:
        result = ctx.gold_evidence(example)
        if not result.evidence:
            continue
        reductions.append(result.reduction)
        lengths_ctx.append(len(word_tokens(example.context)))
        lengths_ev.append(len(word_tokens(result.evidence)))
    return {
        "dataset": ctx.dataset.key,
        "mean_reduction": float(np.mean(reductions)),
        "mean_context_words": float(np.mean(lengths_ctx)),
        "mean_evidence_words": float(np.mean(lengths_ev)),
        "n": len(reductions),
    }


# ------------------------------------------------------------------- Table II
def agreement_table(
    ctx: ExperimentContext,
    n_examples: int = 24,
    panel: RaterPanel | None = None,
) -> list[dict]:
    """Table II: Krippendorff's alpha per criterion per rater group."""
    panel = panel or RaterPanel(seed=ctx.seed)
    examples = _eval_examples(ctx, n_examples)
    ctx.prewarm_gold(examples)
    records = []
    for example in examples:
        result = ctx.gold_evidence(example)
        if result.evidence:
            records.append(
                ctx.rating_record(
                    result, example.question, example.primary_answer
                )
            )
    outcome = panel.rate(records, label=f"{ctx.dataset.key}:agreement")
    rows = []
    for criterion in ("informativeness", "conciseness", "readability"):
        row = {"criterion": criterion}
        for g in range(panel.n_groups):
            row[f"group{g + 1}"] = outcome.alpha.get((criterion, g), float("nan"))
        rows.append(row)
    # Hybrid row: mean alpha across criteria per group (the paper reports a
    # hybrid-score agreement line as well).
    hybrid = {"criterion": "hybrid"}
    for g in range(panel.n_groups):
        hybrid[f"group{g + 1}"] = float(
            np.mean([rows[k][f"group{g + 1}"] for k in range(3)])
        )
    rows.append(hybrid)
    return rows
