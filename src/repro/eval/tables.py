"""Plain-text table formatting for benchmark output."""

from __future__ import annotations

__all__ = ["format_table"]


def _render(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(rows: list[dict], columns: list[str] | None = None, title: str = "") -> str:
    """Render a list of dict rows as an aligned text table.

    >>> print(format_table([{"a": 1, "b": 2.5}], title="T"))
    T
    a  b
    -  ----
    1  2.50
    """
    if not rows:
        return title + "\n(no rows)" if title else "(no rows)"
    columns = columns or list(rows[0])
    cells = [[_render(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in cells))
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(col.ljust(w) for col, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
