"""Experiment harness: rater simulation, agreement, and table runners."""

from repro.eval.agreement import krippendorff_alpha
from repro.eval.human import RaterPanel, RatingRecord, PanelResult
from repro.eval.context import ExperimentContext
from repro.eval.experiments import (
    human_evaluation_table,
    qa_augmentation_table,
    ablation_table,
    degradation_curves,
    reduction_statistics,
    agreement_table,
)
from repro.eval.tables import format_table

__all__ = [
    "krippendorff_alpha",
    "RaterPanel",
    "RatingRecord",
    "PanelResult",
    "ExperimentContext",
    "human_evaluation_table",
    "qa_augmentation_table",
    "ablation_table",
    "degradation_curves",
    "reduction_statistics",
    "agreement_table",
    "format_table",
]
