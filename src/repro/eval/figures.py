"""ASCII line charts for benchmark output (Fig. 7 rendering).

The paper's Fig. 7 plots EM/F1 against the predicted-answer substitution
fraction δ; this renders the same curves as a terminal-friendly chart so
benchmark logs carry the figure, not just its table.
"""

from __future__ import annotations

__all__ = ["ascii_chart", "degradation_chart"]


def ascii_chart(
    series: dict[str, list[tuple[float, float]]],
    width: int = 60,
    height: int = 12,
    title: str = "",
) -> str:
    """Render named (x, y) series as an ASCII chart.

    Each series is drawn with its own glyph (a, b, c, ...); axes are
    annotated with the data ranges.
    """
    points = [p for pts in series.values() for p in pts]
    if not points:
        return title + "\n(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    glyphs = "abcdefghijklmnopqrstuvwxyz"
    legend = []
    for i, (name, pts) in enumerate(series.items()):
        glyph = glyphs[i % len(glyphs)]
        legend.append(f"{glyph}={name}")
        for x, y in pts:
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = height - 1 - int((y - y_lo) / (y_hi - y_lo) * (height - 1))
            current = grid[row][col]
            grid[row][col] = "*" if current not in (" ", glyph) else glyph

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:7.1f} +" + "-" * width)
    for row in grid:
        lines.append("        |" + "".join(row))
    lines.append(f"{y_lo:7.1f} +" + "-" * width)
    lines.append(f"         {x_lo:<8.2f}" + " " * max(0, width - 16) + f"{x_hi:>8.2f}")
    lines.append("         " + "  ".join(legend))
    return "\n".join(lines)


def degradation_chart(rows: list[dict], metric: str = "EM", title: str = "") -> str:
    """Render ``degradation_curves`` rows (model, delta, EM/F1) as a chart."""
    series: dict[str, list[tuple[float, float]]] = {}
    for row in rows:
        series.setdefault(row["model"], []).append((row["delta"], row[metric]))
    for pts in series.values():
        pts.sort()
    return ascii_chart(series, title=title or f"{metric} vs delta")
