"""One-shot experiment report builder.

Runs the full evaluation suite for a dataset and renders a markdown report
(the auto-generated counterpart of EXPERIMENTS.md): rater agreement, human
evaluation, QA augmentation, degradation, word reduction, and error triage.
Exposed on the CLI as ``python -m repro report``.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.eval.context import ExperimentContext
from repro.eval.error_analysis import analyze_errors
from repro.eval.experiments import (
    agreement_table,
    degradation_curves,
    human_evaluation_table,
    qa_augmentation_table,
    reduction_statistics,
)
from repro.eval.figures import degradation_chart
from repro.eval.tables import format_table

__all__ = ["build_report", "write_report"]


def _section(title: str, body: str) -> str:
    return f"## {title}\n\n```text\n{body}\n```\n"


def build_report(
    ctx: ExperimentContext,
    n_examples: int = 24,
    degradation_models: tuple[str, ...] | None = None,
) -> str:
    """Render the full markdown report for one experiment context."""
    key = ctx.dataset.key
    parts = [f"# GCED evaluation report — {key}\n"]

    parts.append(
        _section(
            "Rater agreement (Table II shape)",
            format_table(agreement_table(ctx, n_examples=n_examples)),
        )
    )
    parts.append(
        _section(
            "Human evaluation (Table IV/V shape)",
            format_table(human_evaluation_table(ctx, n_examples=max(8, n_examples // 2))),
        )
    )
    qa_rows = qa_augmentation_table(ctx, n_examples=n_examples)
    gain = float(np.mean([r["EM+GCED"] - r["EM"] for r in qa_rows]))
    parts.append(
        _section(
            f"QA augmentation (Table VI/VII shape) — mean EM gain {gain:+.2f}",
            format_table(qa_rows),
        )
    )
    models = degradation_models or tuple(list(ctx.baselines)[:3])
    degradation_rows = degradation_curves(
        ctx, n_examples=n_examples, model_names=models
    )
    parts.append(
        _section(
            "Degradation with predicted answers (Fig. 7 shape)",
            format_table(degradation_rows)
            + "\n\n"
            + degradation_chart(degradation_rows),
        )
    )
    stats = reduction_statistics(ctx, n_examples=n_examples)
    parts.append(
        _section(
            "Word reduction (Sec. IV-D1)",
            f"{100 * stats['mean_reduction']:.1f}% of context words removed "
            f"({stats['mean_context_words']:.0f} -> "
            f"{stats['mean_evidence_words']:.0f} per context, "
            f"n={stats['n']})",
        )
    )
    diagnoses = analyze_errors(ctx, n_examples=n_examples)
    counts: dict[str, int] = {}
    for diagnosis in diagnoses:
        counts[diagnosis.category] = counts.get(diagnosis.category, 0) + 1
    triage = "\n".join(
        f"{category:<22} {count}" for category, count in sorted(counts.items())
    )
    parts.append(_section("Error triage (Sec. IV-G)", triage))
    return "\n".join(parts)


def write_report(
    ctx: ExperimentContext,
    path: str | pathlib.Path,
    n_examples: int = 24,
) -> pathlib.Path:
    """Build and save the report; returns the written path."""
    path = pathlib.Path(path)
    path.write_text(build_report(ctx, n_examples=n_examples))
    return path
