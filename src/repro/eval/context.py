"""Shared experiment state: dataset + trained artifacts + models + GCED.

Building a context is the expensive part of every experiment (dataset
generation, corpus fitting, baseline calibration), so one context is built
per dataset key and shared by all table/figure runners.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.batch import BatchDistiller
from repro.core.config import GCEDConfig
from repro.core.pipeline import GCED, DistillationResult
from repro.datasets.loader import load_dataset
from repro.datasets.types import QADataset, QAExample
from repro.eval.human import RatingRecord
from repro.lexicon.stopwords import is_insignificant
from repro.qa.registry import (
    SQUAD_BASELINES,
    TRIVIAQA_BASELINES,
    SimulatedBaseline,
    build_baseline,
)
from repro.qa.training import QATrainer, TrainedArtifacts
from repro.text.tokenizer import word_tokens

__all__ = ["ExperimentContext"]


@dataclass
class ExperimentContext:
    """Everything an experiment needs for one dataset.

    Use :meth:`build` — the constructor fields are wired there.
    """

    dataset: QADataset
    artifacts: TrainedArtifacts
    gced: GCED
    baselines: dict[str, SimulatedBaseline]
    seed: int
    distiller: BatchDistiller = None  # type: ignore[assignment]

    @classmethod
    def build(
        cls,
        dataset_key: str,
        seed: int = 0,
        n_train: int = 100,
        n_dev: int = 50,
        config: GCEDConfig | None = None,
        calibration_limit: int = 60,
        workers: int = 1,
        backend: str = "thread",
    ) -> "ExperimentContext":
        """Construct the full experiment state for ``dataset_key``.

        ``workers`` / ``backend`` configure the engine executor every
        experiment's distillation fans out on (1 = serial).
        """
        dataset = load_dataset(dataset_key, seed=seed, n_train=n_train, n_dev=n_dev)
        artifacts = QATrainer(seed=seed).train(dataset.contexts())
        gced = GCED(
            qa_model=artifacts.reader, artifacts=artifacts, config=config
        )
        specs = (
            SQUAD_BASELINES
            if dataset_key.startswith("squad")
            else TRIVIAQA_BASELINES
        )
        triples = dataset.calibration_triples(limit=calibration_limit)
        baselines = {
            spec.name: build_baseline(
                spec.name, dataset_key, artifacts.reader, triples, seed=seed
            )
            for spec in specs
        }
        # The results memo must hold every (gold + predicted) distillation
        # for the context's lifetime — experiments re-read gold evidences
        # across tables, and an undersized LRU would thrash on sequential
        # multi-pass scans.  Worst case is one gold plus one predicted
        # triple per baseline per dev example; size for that (with slack),
        # floored at the distiller default.
        memo_size = max(4096, (len(baselines) + 3) * len(dataset.dev))
        return cls(
            dataset=dataset,
            artifacts=artifacts,
            gced=gced,
            baselines=baselines,
            seed=seed,
            distiller=BatchDistiller(
                gced, cache_size=memo_size, workers=workers, backend=backend
            ),
        )

    def close(self) -> None:
        """Shut down the distiller's worker pool, if one was created."""
        self.distiller.close()

    def __enter__(self) -> "ExperimentContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------ evidence
    def prewarm_gold(self, examples: list[QAExample]) -> None:
        """Distill gold evidences for ``examples`` as one batch.

        Routes through the engine executor (context-grouped, parallel when
        ``workers > 1``); the distiller's content-keyed ``results`` memo
        makes subsequent per-example access free.
        """
        self.distiller.distill_examples(examples)

    def gold_evidence(self, example: QAExample) -> DistillationResult:
        """GCED evidence distilled from the ground-truth answer (memoized).

        Served by the distiller's shared ``results`` cache, keyed on the
        (question, answer, context) content.  A per-``example_id`` shadow
        cache used to sit in front of it: ids are dataset/seed-scoped
        run state, so cross-experiment reuse of the same content never
        registered — ``--profile`` reported a structural 0% hit rate on
        ``results`` while the real reuse hid here, uncounted.
        """
        return self.distiller.distill_one(
            example.question, example.primary_answer, example.context
        )

    def predicted_evidence(
        self, example: QAExample, model: SimulatedBaseline
    ) -> tuple[DistillationResult, str]:
        """Evidence distilled from ``model``'s predicted answer.

        Returns (distillation, predicted answer).  If the model predicts an
        empty answer (abstention), distillation is skipped and an empty
        result placeholder is produced by distilling from the gold answer's
        question with no basis — callers should filter on ``predicted``.
        """
        prediction = model.predict_example(
            example.question,
            example.context,
            example.primary_answer,
            example.example_id,
        )
        predicted = prediction.text
        if not predicted.strip():
            return self.gold_evidence(example), ""
        result = self.distiller.distill_one(
            example.question, predicted, example.context
        )
        return result, predicted

    # ------------------------------------------------------------- ratings
    def expected_evidence_length(self, question: str, answer: str) -> int:
        """The Table I rubric's "expected evidence" length estimate.

        An ideal evidence restates the question's significant content with
        the answer plus minimal syntactic glue.
        """
        significant = [
            w for w in word_tokens(question) if not is_insignificant(w)
        ]
        return max(4, len(word_tokens(answer)) + len(significant) + 3)

    def question_coverage(self, question: str, evidence: str) -> float:
        """Fraction of significant question words matched in the evidence.

        Matching reuses QWS (surface, stem, or lexicon relative), which is
        exactly what a human checks when judging whether an evidence is
        "related to the QA pair" (Table I rubric).
        """
        from repro.text.tokenizer import tokenize

        qws = self.gced.qws
        significant = qws.significant_question_words(question)
        if not significant:
            return 1.0
        result = qws.select(question, tokenize(evidence))
        return len(result.matches) / len(significant)

    def rating_record(
        self, result: DistillationResult, question: str, answer: str
    ) -> RatingRecord:
        """Machine-score inputs for the simulated rater panel."""
        expected = self.expected_evidence_length(question, answer)
        length = max(1, len(word_tokens(result.evidence)))
        return RatingRecord(
            informativeness=result.scores.informativeness,
            length_ratio=length / expected,
            readability=result.scores.readability,
            question_coverage=self.question_coverage(question, result.evidence),
        )

    def rating_record_for_text(
        self, evidence: str, question: str, answer: str
    ) -> RatingRecord:
        """Rating record for a baseline evidence (plain text, not GCED)."""
        scores = self.gced.scorer.score(question, answer, evidence)
        expected = self.expected_evidence_length(question, answer)
        length = max(1, len(word_tokens(evidence)))
        return RatingRecord(
            informativeness=scores.informativeness,
            length_ratio=length / expected,
            readability=scores.readability,
            question_coverage=self.question_coverage(question, evidence),
        )
