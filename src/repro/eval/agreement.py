"""Inter-rater agreement: Krippendorff's alpha (interval and ordinal data).

The paper reports alpha per rater group and criterion (Table II) and
discards low-agreement evidences.  This is a full implementation over a
raters × items matrix with missing entries allowed (NaN).
"""

from __future__ import annotations

import numpy as np

__all__ = ["krippendorff_alpha"]


def _interval_delta(v1: np.ndarray, v2: np.ndarray) -> np.ndarray:
    return (v1 - v2) ** 2


def krippendorff_alpha(ratings: np.ndarray, level: str = "interval") -> float:
    """Krippendorff's alpha for a (raters, items) matrix.

    Args:
        ratings: float matrix; missing ratings are NaN.  Items rated by
            fewer than two raters are ignored.
        level: "interval" (squared-difference metric) or "nominal".

    Returns:
        Alpha in (-1, 1]; 1 is perfect agreement, 0 is chance level.

    >>> import numpy as np
    >>> perfect = np.array([[1.0, 2.0, 3.0], [1.0, 2.0, 3.0]])
    >>> round(krippendorff_alpha(perfect), 6)
    1.0
    """
    if ratings.ndim != 2:
        raise ValueError("ratings must be a 2-D (raters, items) matrix")
    if level not in ("interval", "nominal"):
        raise ValueError("level must be 'interval' or 'nominal'")

    # Keep items with at least two ratings.
    counts = np.sum(~np.isnan(ratings), axis=0)
    usable = counts >= 2
    if not usable.any():
        raise ValueError("no item has two or more ratings")
    matrix = ratings[:, usable]
    counts = counts[usable]

    def delta(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if level == "interval":
            return _interval_delta(a, b)
        return (a != b).astype(float)

    # Observed disagreement: average pairwise delta within each item.
    observed_num = 0.0
    observed_den = 0.0
    all_values = []
    all_weights = []
    for j in range(matrix.shape[1]):
        column = matrix[:, j]
        values = column[~np.isnan(column)]
        m = len(values)
        pair_sum = 0.0
        for a in range(m):
            for b in range(m):
                if a != b:
                    pair_sum += float(delta(values[a], values[b]))
        observed_num += pair_sum / (m - 1)
        observed_den += m
        all_values.extend(values.tolist())
        all_weights.extend([1.0] * m)
    observed = observed_num / observed_den

    # Expected disagreement: pairwise delta across the pooled distribution.
    pooled = np.array(all_values)
    n = len(pooled)
    diff = delta(pooled[:, None], pooled[None, :])
    expected = (diff.sum() - np.trace(diff)) / (n * (n - 1))
    if expected == 0.0:
        return 1.0
    return 1.0 - observed / expected
