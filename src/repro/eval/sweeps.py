"""Configuration-grid sweeps over the GCED pipeline.

Generic machinery behind the design-ablation benchmarks: evaluate any
grid of :class:`GCEDConfig` variants on a fixed example set and collect
per-variant evidence statistics — length, I/C/R/H means, reduction.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Sequence

import numpy as np

from repro.core.config import GCEDConfig
from repro.core.pipeline import GCED
from repro.datasets.types import QAExample
from repro.qa.training import TrainedArtifacts
from repro.text.tokenizer import word_tokens

__all__ = ["sweep_configs", "config_grid"]


def config_grid(base: GCEDConfig | None = None, **axes: Sequence) -> list[GCEDConfig]:
    """Cartesian product of config overrides.

    >>> grid = config_grid(clip_times=[1, 2], max_answer_sentences=[2, 3])
    >>> len(grid)
    4
    """
    base = base or GCEDConfig()
    configs = [base]
    for field_name, values in axes.items():
        if field_name not in {f.name for f in dataclasses.fields(GCEDConfig)}:
            raise KeyError(f"GCEDConfig has no field {field_name!r}")
        configs = [
            dataclasses.replace(config, **{field_name: value})
            for config in configs
            for value in values
        ]
    return configs


def _label(config: GCEDConfig, axes: Iterable[str]) -> str:
    return ", ".join(f"{name}={getattr(config, name)}" for name in axes)


def sweep_configs(
    artifacts: TrainedArtifacts,
    examples: Sequence[QAExample],
    configs: Sequence[GCEDConfig],
    label_fields: Sequence[str] = ("clip_times",),
) -> list[dict]:
    """Evaluate each config on the examples; one stats row per config."""
    if not examples:
        raise ValueError("sweep needs at least one example")
    rows: list[dict] = []
    for config in configs:
        gced = GCED(
            qa_model=artifacts.reader, artifacts=artifacts, config=config
        )
        lengths, informativeness, readability, hybrid, reduction = (
            [], [], [], [], []
        )
        for example in examples:
            result = gced.distill(
                example.question, example.primary_answer, example.context
            )
            if not result.evidence:
                continue
            lengths.append(len(word_tokens(result.evidence)))
            informativeness.append(result.scores.informativeness)
            readability.append(result.scores.readability)
            hybrid.append(result.scores.hybrid)
            reduction.append(result.reduction)
        rows.append(
            {
                "config": _label(config, label_fields),
                "mean_words": float(np.mean(lengths)) if lengths else 0.0,
                "I": float(np.mean(informativeness)) if informativeness else 0.0,
                "R": float(np.mean(readability)) if readability else 0.0,
                "H": float(np.mean(hybrid)) if hybrid else 0.0,
                "reduction": float(np.mean(reduction)) if reduction else 0.0,
                "n": len(lengths),
            }
        )
    return rows
