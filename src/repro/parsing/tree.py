"""Tree data structures: constituency parse nodes and dependency trees.

``DependencyTree`` is the central structure of the reproduction: the
"weighted syntactic parsing tree" of Sec. III-D is a tree over *tokens*
(each node carries the token's index in the answer-oriented sentences, as
in Fig. 6's "31-title", "26-earn"), and Grow-and-Clip manipulates subtrees
of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["ParseNode", "DependencyTree"]


@dataclass
class ParseNode:
    """A constituency-tree node.

    Leaves have ``word`` set and ``children`` empty; internal nodes carry a
    syntactic ``label`` (NP, VP, ...).  After lexicalization, ``head``
    holds the token index of the node's lexical head.
    """

    label: str
    children: list["ParseNode"] = field(default_factory=list)
    word: str | None = None
    index: int | None = None  # token index for leaves
    head: int | None = None  # lexical head token index (set by lexicalize)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def leaves(self) -> list["ParseNode"]:
        """All leaf nodes, left to right."""
        if self.is_leaf:
            return [self]
        result: list[ParseNode] = []
        for child in self.children:
            result.extend(child.leaves())
        return result

    def spans(self) -> tuple[int, int]:
        """(first, last) token index covered by this node."""
        leaves = self.leaves()
        first = leaves[0].index
        last = leaves[-1].index
        if first is None or last is None:
            raise ValueError("leaf without a token index")
        return first, last

    def pretty(self, depth: int = 0) -> str:
        """Bracketed multi-line rendering for debugging."""
        pad = "  " * depth
        if self.is_leaf:
            return f"{pad}({self.label} {self.word})"
        inner = "\n".join(child.pretty(depth + 1) for child in self.children)
        return f"{pad}({self.label}\n{inner}\n{pad})"

    def __iter__(self) -> Iterator["ParseNode"]:
        """Pre-order traversal."""
        yield self
        for child in self.children:
            yield from child


class DependencyTree:
    """A rooted tree over token indices with weighted edges.

    Nodes are integers ``0..n-1`` (token positions).  ``parent[i]`` is the
    parent index of ``i`` or ``-1`` for the root.  ``weight[i]`` is the
    attention weight of the edge (i, parent[i]); the root's weight is 0.

    The structure is immutable after construction except for edge weights
    (WSPTC sets them after the parse).
    """

    def __init__(self, tokens: list[str], parents: list[int]) -> None:
        if len(tokens) != len(parents):
            raise ValueError("tokens and parents must have equal length")
        n = len(tokens)
        roots = [i for i, p in enumerate(parents) if p == -1]
        if n > 0 and len(roots) != 1:
            raise ValueError(f"expected exactly one root, got {len(roots)}")
        for i, p in enumerate(parents):
            if p != -1 and not (0 <= p < n):
                raise ValueError(f"parent of {i} out of range: {p}")
            if p == i:
                raise ValueError(f"node {i} is its own parent")
        self.tokens = list(tokens)
        self.parents = list(parents)
        self.weights = [0.0] * n
        self._children: list[list[int]] = [[] for _ in range(n)]
        for i, p in enumerate(parents):
            if p != -1:
                self._children[p].append(i)
        self._root = roots[0] if roots else -1
        self._validate_acyclic()

    def _validate_acyclic(self) -> None:
        seen_global: set[int] = set()
        for start in range(len(self.tokens)):
            if start in seen_global:
                continue
            path: set[int] = set()
            node = start
            while node != -1 and node not in seen_global:
                if node in path:
                    raise ValueError(f"cycle detected through node {node}")
                path.add(node)
                node = self.parents[node]
            seen_global.update(path)

    # ------------------------------------------------------------ accessors
    def __len__(self) -> int:
        return len(self.tokens)

    @property
    def root(self) -> int:
        """Token index of the root node."""
        return self._root

    def parent(self, node: int) -> int:
        """Parent index of ``node`` (-1 for the root)."""
        return self.parents[node]

    def children(self, node: int) -> list[int]:
        """Child indices of ``node`` in token order."""
        return list(self._children[node])

    def token(self, node: int) -> str:
        return self.tokens[node]

    def weight(self, node: int) -> float:
        """Attention weight of the edge from ``node`` to its parent."""
        return self.weights[node]

    def set_weight(self, node: int, value: float) -> None:
        self.weights[node] = float(value)

    # ------------------------------------------------------------- queries
    def subtree(self, node: int) -> set[int]:
        """All indices in the subtree rooted at ``node`` (inclusive)."""
        result: set[int] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            result.add(current)
            stack.extend(self._children[current])
        return result

    def depth(self, node: int) -> int:
        """Distance from ``node`` to the root."""
        d = 0
        while self.parents[node] != -1:
            node = self.parents[node]
            d += 1
        return d

    def ancestors(self, node: int) -> list[int]:
        """Ancestors of ``node`` from its parent up to the root."""
        result = []
        node = self.parents[node]
        while node != -1:
            result.append(node)
            node = self.parents[node]
        return result

    def path_to_root(self, node: int) -> list[int]:
        """``node`` followed by its ancestors up to the root."""
        return [node] + self.ancestors(node)

    def siblings(self, node: int) -> list[int]:
        """Other children of ``node``'s parent."""
        p = self.parents[node]
        if p == -1:
            return []
        return [c for c in self._children[p] if c != node]

    def is_ancestor(self, candidate: int, node: int) -> bool:
        """True if ``candidate`` lies on ``node``'s path to the root."""
        while node != -1:
            node = self.parents[node]
            if node == candidate:
                return True
        return False

    def text_of(self, nodes: set[int] | list[int]) -> list[str]:
        """Tokens of ``nodes`` ordered by index (the paper's 'rank by indexes')."""
        return [self.tokens[i] for i in sorted(set(nodes))]

    def to_dot(self) -> str:
        """Graphviz rendering for debugging and documentation."""
        lines = ["digraph dependency {"]
        for i, tok in enumerate(self.tokens):
            lines.append(f'  n{i} [label="{i}-{tok}"];')
        for i, p in enumerate(self.parents):
            if p != -1:
                lines.append(f'  n{p} -> n{i} [label="{self.weights[i]:.3f}"];')
        lines.append("}")
        return "\n".join(lines)
