"""Constituency-to-dependency conversion and the end-to-end parser facade.

Reading dependencies off a lexicalized tree: within each constituent, the
heads of the non-head children attach to the head child's head.  The result
is the token-level tree of Fig. 6 — e.g. for "... defeated ... to earn
Super Bowl title", "earn" attaches to "defeated" and "title" to "earn".
"""

from __future__ import annotations

from repro.parsing.cky import CKYParser
from repro.parsing.heads import lexicalize
from repro.parsing.pos import PosTagger
from repro.parsing.tree import DependencyTree, ParseNode
from repro.utils.cache import LRUCache, memoize_method

__all__ = ["constituency_to_dependency", "SyntacticParser"]


def constituency_to_dependency(root: ParseNode, tokens: list[str]) -> DependencyTree:
    """Convert a lexicalized constituency tree into a :class:`DependencyTree`.

    ``root`` must already be lexicalized (every node has ``head`` set).
    """
    if root.head is None:
        raise ValueError("tree is not lexicalized; call lexicalize() first")
    parents = [-1] * len(tokens)

    def visit(node: ParseNode) -> None:
        if node.is_leaf:
            return
        head = node.head
        for child in node.children:
            if child.head is None:
                raise ValueError("child is not lexicalized")
            if child.head != head:
                # Attach the dependent's head to the constituent head, but
                # never overwrite an attachment made deeper in the tree
                # (each token gains its parent at the lowest constituent
                # where it stops being the head).
                if parents[child.head] == -1 and child.head != head:
                    parents[child.head] = head
            visit(child)

    visit(root)
    # The overall head keeps parent -1 (root).  Sanity: exactly one root.
    root_head = root.head
    for i, parent in enumerate(parents):
        if i != root_head and parent == -1:
            # Token never attached (can happen for glue chunks): attach to
            # the sentence root to keep the structure a tree.
            parents[i] = root_head
    return DependencyTree(tokens, parents)


class SyntacticParser:
    """Facade: raw token list → dependency tree (tagging, CKY, heads).

    Results are memoized on the token tuple because GCED parses the same
    answer-oriented sentences repeatedly across its modules.
    """

    def __init__(
        self,
        tagger: PosTagger | None = None,
        cky: CKYParser | None = None,
    ) -> None:
        self.tagger = tagger or PosTagger()
        self.cky = cky or CKYParser()

    def parse_constituency(self, tokens: list[str]) -> ParseNode:
        """POS-tag and CKY-parse ``tokens`` into a constituency tree."""
        if not tokens:
            raise ValueError("cannot parse an empty token list")
        tags = self.tagger.tag(tokens)
        return self.cky.parse_tags(tags, words=tokens)

    @memoize_method(maxsize=4096)
    def _parse_cached(self, token_tuple: tuple[str, ...]) -> DependencyTree:
        tokens = list(token_tuple)
        tree = self.parse_constituency(tokens)
        lexicalize(tree)
        return constituency_to_dependency(tree, tokens)

    def parse(self, tokens: list[str]) -> DependencyTree:
        """Full pipeline: tokens → lexicalized parse → dependency tree."""
        return self._parse_cached(tuple(tokens))

    def parse_cache(self):
        """The memo cache behind :meth:`parse` (None until first use).

        Exposed for the engine's cache instrumentation; the attribute name
        is ``memoize_method``'s internal layout and must not be reached
        for directly.
        """
        return getattr(self, "_memo__parse_cached", None)

    def ensure_parse_cache(self) -> LRUCache:
        """The memo cache behind :meth:`parse`, created if absent.

        The snapshot plane installs its read-through loader here before
        the first parse, so even a worker's very first tree can hydrate
        from the parent's memo instead of running CKY.  Mirrors
        ``memoize_method``'s own layout (same attribute, same capacity).
        """
        cache = self.parse_cache()
        if cache is None:
            cache = LRUCache(capacity=4096)
            self._memo__parse_cached = cache
        return cache
