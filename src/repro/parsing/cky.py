"""Probabilistic CKY chart parser with unary-rule closure.

Parses POS-tag sequences under :class:`repro.parsing.grammar.Grammar` and
returns the Viterbi (max-probability) constituency tree.  Sentences the
grammar cannot fully cover fall back to a right-branching glue tree over
the largest parseable chunks, so the parser is *total* — every input
receives a tree, as GCED requires (the paper delegates this robustness to
Stanford CoreNLP).
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.parsing.grammar import Grammar, default_grammar
from repro.parsing.tree import ParseNode

__all__ = ["CKYParser"]

_GLUE_LABEL = "X"
_GLUE_PENALTY = math.log(1e-4)


class CKYParser:
    """Viterbi CKY over tag sequences.

    The chart maps each span to its best-scoring analyses per nonterminal.
    Unary closure runs after leaves are seeded and after each binary
    combination, with a small penalty per unary step to keep chains finite.
    """

    def __init__(self, grammar: Grammar | None = None) -> None:
        self.grammar = grammar or default_grammar()

    # ----------------------------------------------------------- chart ops
    def _apply_unary_closure(
        self, cell: dict[str, tuple[float, object]]
    ) -> None:
        """Extend ``cell`` with unary-rule parents until fixpoint."""
        agenda = list(cell.keys())
        while agenda:
            child = agenda.pop()
            child_score = cell[child][0]
            for rule in self.grammar.unary_by_child.get(child, ()):
                score = child_score + rule.logprob
                existing = cell.get(rule.parent)
                if existing is None or score > existing[0]:
                    cell[rule.parent] = (score, ("unary", child))
                    agenda.append(rule.parent)

    def parse_tags(
        self, tags: Sequence[str], words: Sequence[str] | None = None
    ) -> ParseNode:
        """Parse a tag sequence; ``words`` (if given) label the leaves.

        Returns a :class:`ParseNode` rooted at the grammar start symbol or,
        when full coverage fails, at a glue node combining the best chunks.
        """
        n = len(tags)
        if n == 0:
            raise ValueError("cannot parse an empty sentence")
        words = list(words) if words is not None else list(tags)
        if len(words) != n:
            raise ValueError("words and tags must have equal length")

        # chart[i][j]: analyses of span [i, j) — {label: (logprob, backptr)}
        chart: list[list[dict[str, tuple[float, object]]]] = [
            [dict() for _ in range(n + 1)] for _ in range(n + 1)
        ]
        for i, tag in enumerate(tags):
            cell = chart[i][i + 1]
            cell[tag] = (0.0, ("leaf", i))
            self._apply_unary_closure(cell)

        for width in range(2, n + 1):
            for i in range(0, n - width + 1):
                j = i + width
                cell = chart[i][j]
                for split in range(i + 1, j):
                    left_cell = chart[i][split]
                    right_cell = chart[split][j]
                    if not left_cell or not right_cell:
                        continue
                    for left_label, (left_score, _lb) in left_cell.items():
                        for right_label, (right_score, _rb) in right_cell.items():
                            rules = self.grammar.binary_by_children.get(
                                (left_label, right_label)
                            )
                            if not rules:
                                continue
                            for rule in rules:
                                score = left_score + right_score + rule.logprob
                                existing = cell.get(rule.parent)
                                if existing is None or score > existing[0]:
                                    cell[rule.parent] = (
                                        score,
                                        ("binary", split, left_label, right_label),
                                    )
                self._apply_unary_closure(cell)

        root_cell = chart[0][n]
        if self.grammar.start in root_cell:
            return self._build(chart, 0, n, self.grammar.start, words)
        return self._glue_parse(chart, n, words)

    # ------------------------------------------------------ reconstruction
    def _build(
        self,
        chart: list[list[dict[str, tuple[float, object]]]],
        i: int,
        j: int,
        label: str,
        words: Sequence[str],
    ) -> ParseNode:
        _score, back = chart[i][j][label]
        kind = back[0]
        if kind == "leaf":
            idx = back[1]
            return ParseNode(label=label, word=words[idx], index=idx)
        if kind == "unary":
            child = self._build(chart, i, j, back[1], words)
            return ParseNode(label=label, children=[child])
        _kind, split, left_label, right_label = back
        left = self._build(chart, i, split, left_label, words)
        right = self._build(chart, split, j, right_label, words)
        return ParseNode(label=label, children=[left, right])

    # ------------------------------------------------------------ fallback
    def _best_chunk(
        self,
        chart: list[list[dict[str, tuple[float, object]]]],
        i: int,
        n: int,
        words: Sequence[str],
    ) -> tuple[int, ParseNode]:
        """Longest (then best-scoring) constituent starting at ``i``."""
        preferred = ("S", "NP", "VP", "PP", "ADJP", "ADVP")
        for j in range(n, i, -1):
            cell = chart[i][j]
            if not cell:
                continue
            candidates = [lab for lab in preferred if lab in cell]
            if not candidates:
                candidates = list(cell.keys())
            label = max(candidates, key=lambda lab: cell[lab][0])
            return j, self._build(chart, i, j, label, words)
        # Unreachable: single-token cells always carry at least the tag.
        raise RuntimeError(f"no analysis for token {i}")  # pragma: no cover

    def _glue_parse(
        self,
        chart: list[list[dict[str, tuple[float, object]]]],
        n: int,
        words: Sequence[str],
    ) -> ParseNode:
        """Combine maximal chunks left-to-right under a glue root.

        The first chunk is treated as the glue head, which approximates the
        main-clause-first structure of declarative corpus text.
        """
        chunks: list[ParseNode] = []
        i = 0
        while i < n:
            j, node = self._best_chunk(chart, i, n, words)
            chunks.append(node)
            i = j
        if len(chunks) == 1:
            return chunks[0]
        return ParseNode(label=_GLUE_LABEL, children=chunks)
