"""Syntactic parsing substrate.

Pipeline: POS tagging → probabilistic CKY over a binarized PCFG →
Collins-style head lexicalization → token-level dependency tree.  The
dependency tree (nodes = token indices) is the structure GCED's Grow-and-
Clip strategy operates on; WSPTC annotates its edges with attention
weights.
"""

from repro.parsing.tree import ParseNode, DependencyTree
from repro.parsing.pos import PosTagger
from repro.parsing.grammar import Grammar, Rule, default_grammar
from repro.parsing.cky import CKYParser
from repro.parsing.heads import lexicalize
from repro.parsing.dependency import constituency_to_dependency, SyntacticParser

__all__ = [
    "ParseNode",
    "DependencyTree",
    "PosTagger",
    "Grammar",
    "Rule",
    "default_grammar",
    "CKYParser",
    "lexicalize",
    "constituency_to_dependency",
    "SyntacticParser",
]
