"""Collins-style head rules: lexicalize a constituency tree.

Lexicalization turns the PCFG parse into the L-PCFG artifact of Sec. III-D:
every constituent is annotated with the token index of its lexical head,
from which the token-level dependency tree is read off.
"""

from __future__ import annotations

from repro.parsing.tree import ParseNode

__all__ = ["HEAD_RULES", "lexicalize"]

# parent label -> (priority list of child labels, search direction).
# The first child whose label appears earliest in the priority list wins;
# ties are broken by direction ("left" = leftmost such child).
HEAD_RULES: dict[str, tuple[tuple[str, ...], str]] = {
    "TOP": (("S", "NP", "VP"), "left"),
    "S": (("VP", "S", "NP", "SBAR"), "left"),
    "SBAR": (("S", "VP", "WH"), "right"),
    "SCONJ": (("S",), "right"),
    "VP": (("V", "MODAL", "VP"), "left"),
    "VPCONJ": (("VP",), "right"),
    "NP": (("NML", "NP", "PRO", "NUM"), "left"),
    "NPCONJ": (("NP",), "right"),
    "APPOS": (("NP",), "right"),
    "NML": (("NML", "NOM"), "right"),  # rightmost nominal heads compounds
    "PP": (("P",), "left"),
    "ADJP": (("ADJ", "ADJP"), "right"),
    "ADJPCONJ": (("ADJP",), "right"),
    "ADVP": (("ADV",), "right"),
    # Lexical categories head themselves through their single child.
    "NOM": ((), "left"),
    "ADJ": ((), "left"),
    "ADV": ((), "left"),
    "P": ((), "left"),
    "DET": ((), "left"),
    "PRO": ((), "left"),
    "CONJ": ((), "left"),
    "V": ((), "left"),
    "MODAL": ((), "left"),
    "PUNC": ((), "left"),
    "WH": ((), "left"),
    "NUM": ((), "left"),
    "X": ((), "left"),  # glue fallback: first chunk heads the sentence
}

# When the priority list misses, prefer content-bearing children over
# punctuation and function categories.
_CONTENT_ORDER = (
    "VP", "S", "NP", "NML", "NOM", "V", "ADJP", "ADJ", "PP", "ADVP",
    "ADV", "NUM", "PRO", "MODAL", "DET", "P", "WH", "CONJ", "PUNC",
)


def _pick_head_child(node: ParseNode) -> ParseNode:
    label = node.label
    priorities, direction = HEAD_RULES.get(label, ((), "left"))
    children = node.children if direction == "left" else list(reversed(node.children))
    for wanted in priorities:
        for child in children:
            if child.label == wanted:
                return child
    # Fallback: most content-bearing child.
    best = None
    best_rank = len(_CONTENT_ORDER)
    for child in children:
        try:
            rank = _CONTENT_ORDER.index(child.label)
        except ValueError:
            rank = len(_CONTENT_ORDER) - 1
        if rank < best_rank:
            best_rank = rank
            best = child
    return best if best is not None else node.children[0]


def lexicalize(node: ParseNode) -> int:
    """Annotate ``node`` (in place) with head token indexes; return the root head.

    Leaves head themselves; internal nodes inherit the head of the child
    selected by :data:`HEAD_RULES`.
    """
    if node.is_leaf:
        if node.index is None:
            raise ValueError("leaf node lacks a token index")
        node.head = node.index
        return node.head
    for child in node.children:
        lexicalize(child)
    head_child = _pick_head_child(node)
    node.head = head_child.head
    if node.head is None:  # pragma: no cover - defensive
        raise RuntimeError(f"lexicalization failed at {node.label}")
    return node.head
