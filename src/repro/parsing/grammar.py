"""Probabilistic context-free grammar over POS tags.

The L-PCFG of Sec. III-D is reproduced as a compact PCFG in Chomsky normal
form (binary phrasal rules + unary lexical/promotion rules) whose terminals
are the POS tags of :mod:`repro.parsing.pos`.  Lexicalization (head word
annotation) is applied afterwards by :mod:`repro.parsing.heads`, making the
grammar lexicalized in the L-PCFG sense.

Category inventory:

    TOP sentence root     S clause           NP/NML noun phrase/nominal
    VP verb phrase        PP preposition     ADJP/ADVP modifiers
    V/MODAL verb heads    NOM noun heads     DET/ADJ/ADV/P/PRO/CONJ/PUNC
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass

__all__ = ["Rule", "Grammar", "default_grammar"]


@dataclass(frozen=True)
class Rule:
    """A PCFG production ``parent -> children`` with probability ``prob``.

    ``children`` has length 1 (unary promotion or lexical rule whose single
    child is a POS tag) or 2 (binary phrasal rule).
    """

    parent: str
    children: tuple[str, ...]
    prob: float

    def __post_init__(self) -> None:
        if len(self.children) not in (1, 2):
            raise ValueError("rules must be unary or binary")
        if not (0.0 < self.prob <= 1.0):
            raise ValueError("rule probability must be in (0, 1]")

    @property
    def logprob(self) -> float:
        return math.log(self.prob)

    @property
    def is_unary(self) -> bool:
        return len(self.children) == 1


class Grammar:
    """Indexed rule collection for CKY parsing.

    Provides lookups by child pair (binary) and by single child (unary),
    plus the set of lexical categories available for each POS tag.
    """

    def __init__(self, rules: list[Rule], start: str = "TOP") -> None:
        self.start = start
        self.rules = list(rules)
        self.binary_by_children: dict[tuple[str, str], list[Rule]] = defaultdict(list)
        self.unary_by_child: dict[str, list[Rule]] = defaultdict(list)
        for rule in rules:
            if rule.is_unary:
                self.unary_by_child[rule.children[0]].append(rule)
            else:
                self.binary_by_children[rule.children].append(rule)
        self.nonterminals = {r.parent for r in rules}
        children = {c for r in rules for c in r.children}
        # Terminals are symbols that never appear on a left-hand side.
        self.terminals = children - self.nonterminals

    def validate(self) -> list[str]:
        """Return human-readable issues (non-normalized parents, dead ends)."""
        issues = []
        mass: dict[str, float] = defaultdict(float)
        for rule in self.rules:
            mass[rule.parent] += rule.prob
        for parent, total in sorted(mass.items()):
            if abs(total - 1.0) > 1e-6:
                issues.append(f"{parent} probabilities sum to {total:.4f}")
        reachable = {self.start}
        frontier = [self.start]
        while frontier:
            symbol = frontier.pop()
            for rule in self.rules:
                if rule.parent == symbol:
                    for child in rule.children:
                        if child in self.nonterminals and child not in reachable:
                            reachable.add(child)
                            frontier.append(child)
        unreachable = self.nonterminals - reachable
        if unreachable:
            issues.append(f"unreachable nonterminals: {sorted(unreachable)}")
        return issues


def _normalize(raw: list[tuple[str, tuple[str, ...], float]]) -> list[Rule]:
    """Normalize rule weights per parent into probabilities."""
    totals: dict[str, float] = defaultdict(float)
    for parent, _children, weight in raw:
        totals[parent] += weight
    return [
        Rule(parent, children, weight / totals[parent])
        for parent, children, weight in raw
    ]


def default_grammar() -> Grammar:
    """The grammar used by GCED's WSPTC.

    Weights are relative frequencies tuned on the synthetic corpus; they
    are normalized per parent, so only ratios matter.
    """
    raw: list[tuple[str, tuple[str, ...], float]] = [
        # ---- lexical categories (tag promotions) ----
        ("NOM", ("NN",), 4.0),
        ("NOM", ("NNS",), 2.0),
        ("NOM", ("NNP",), 4.0),
        ("ADJ", ("JJ",), 4.0),
        ("ADJ", ("JJR",), 0.5),
        ("ADJ", ("JJS",), 0.5),
        ("ADJ", ("VBN",), 1.0),  # participial premodifier: "distilled evidence"
        ("ADJ", ("VBG",), 0.7),  # "dancing competitions"
        ("ADJ", ("CD",), 1.0),  # "50 years"
        ("ADV", ("RB",), 1.0),
        ("P", ("IN",), 4.0),
        ("P", ("TO",), 1.0),
        ("DET", ("DT",), 4.0),
        ("DET", ("PRP$",), 1.0),
        ("PRO", ("PRP",), 1.0),
        ("CONJ", ("CC",), 1.0),
        ("V", ("VBD",), 4.0),
        ("V", ("VBZ",), 2.0),
        ("V", ("VBP",), 1.0),
        ("V", ("VB",), 1.0),
        ("V", ("VBN",), 1.0),
        ("V", ("VBG",), 0.2),
        ("MODAL", ("MD",), 1.0),
        ("PUNC", ("PUNCT",), 1.0),
        ("WH", ("WP",), 1.0),
        ("WH", ("WRB",), 1.0),
        ("NUM", ("CD",), 1.0),
        # ---- nominals ----
        ("NML", ("NOM",), 5.0),
        ("NML", ("NOM", "NML"), 3.0),  # noun compounds: "Super Bowl title"
        ("NML", ("ADJ", "NML"), 2.5),
        ("NML", ("ADJP", "NML"), 1.0),  # coordinated premodifiers
        ("NML", ("NML", "PUNC"), 0.3),  # appositive commas absorbed low
        ("NML", ("NUM", "NML"), 0.4),
        # ---- noun phrases ----
        ("NP", ("NML",), 4.0),
        ("NP", ("DET", "NML"), 3.5),
        ("NP", ("PRO",), 1.0),
        ("NP", ("NP", "PP"), 1.8),
        ("NP", ("NP", "NPCONJ"), 0.8),
        ("NP", ("NP", "APPOS"), 0.5),
        ("NP", ("NUM",), 0.3),
        ("NPCONJ", ("CONJ", "NP"), 1.0),
        ("APPOS", ("PUNC", "NP"), 1.0),  # ", a singer"
        # ---- prepositional phrases ----
        ("PP", ("P", "NP"), 1.0),
        # ---- adjective / adverb phrases ----
        ("ADJP", ("ADJ",), 2.0),
        ("ADJP", ("ADV", "ADJP"), 0.5),
        ("ADJP", ("ADJP", "PP"), 0.3),
        ("ADJP", ("ADJP", "ADJPCONJ"), 0.6),  # "singing and dancing"
        ("ADJPCONJ", ("CONJ", "ADJP"), 1.0),
        ("ADVP", ("ADV",), 1.0),
        # ---- verb phrases ----
        ("VP", ("V",), 1.0),
        ("VP", ("V", "NP"), 4.0),
        ("VP", ("V", "PP"), 1.5),
        ("VP", ("V", "ADJP"), 0.8),
        ("VP", ("V", "VP"), 0.8),  # "was born", "has won"
        ("VP", ("MODAL", "VP"), 0.5),
        ("VP", ("VP", "PP"), 2.0),
        ("VP", ("VP", "ADVP"), 0.4),
        ("VP", ("ADV", "VP"), 0.4),
        ("VP", ("VP", "VPCONJ"), 0.5),
        ("VP", ("V", "SBAR"), 0.3),  # "said that ..."
        ("VPCONJ", ("CONJ", "VP"), 1.0),
        # ---- clauses ----
        ("S", ("NP", "VP"), 6.0),
        ("S", ("VP",), 0.5),
        ("S", ("S", "PUNC"), 1.5),
        ("S", ("PUNC", "S"), 0.1),
        ("S", ("S", "SCONJ"), 0.5),
        ("S", ("PP", "S"), 0.4),  # fronted PP: "In 1066, ..."
        ("S", ("ADVP", "S"), 0.2),
        ("SCONJ", ("CONJ", "S"), 0.7),
        ("SCONJ", ("PUNC", "S"), 0.3),
        ("SBAR", ("P", "S"), 0.6),  # subordinate clause
        ("SBAR", ("WH", "S"), 0.2),
        ("SBAR", ("WH", "VP"), 0.2),  # relative clause: "who led ..."
        # ---- root ----
        ("TOP", ("S",), 0.85),
        ("TOP", ("NP",), 0.1),
        ("TOP", ("VP",), 0.05),
    ]
    return Grammar(_normalize(raw))
