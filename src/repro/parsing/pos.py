"""Rule-and-lexicon POS tagger.

A compact Penn-style tagset drives the PCFG and the head rules:

    DT determiner        NN/NNS/NNP noun forms     PRP/PRP$ pronouns
    VB/VBD/VBZ/VBP/VBG/VBN verb forms              MD modal
    JJ/JJR/JJS adjectives  RB adverb   IN preposition/subordinator
    CC coordination      CD number    TO "to"      WP/WRB wh-words
    POS possessive 's    PUNCT punctuation

The tagger combines a closed-class lexicon, a verb-form lexicon derived
from the corpus verb inventory, morphological suffix heuristics, and a few
contextual repair rules (e.g. "-s" after a determiner is a plural noun,
after a proper noun it is a 3rd-person verb).
"""

from __future__ import annotations

import re

__all__ = ["PosTagger", "VERB_LEXICON"]

_CLOSED_CLASS: dict[str, str] = {}

for _w in ("a", "an", "the", "this", "that", "these", "those", "some", "any",
           "each", "every", "no", "another", "such"):
    _CLOSED_CLASS[_w] = "DT"
for _w in ("i", "you", "he", "she", "it", "we", "they", "me", "him", "her",
           "them", "us", "himself", "herself", "itself", "themselves"):
    _CLOSED_CLASS[_w] = "PRP"
for _w in ("my", "your", "his", "its", "our", "their"):
    _CLOSED_CLASS[_w] = "PRP$"
for _w in ("of", "in", "on", "at", "by", "for", "with", "about", "against",
           "between", "into", "through", "during", "before", "after",
           "above", "below", "from", "up", "down", "over", "under",
           "across", "near", "off", "onto", "upon", "within", "without",
           "along", "around", "behind", "beside", "toward", "towards",
           "via", "because", "although", "while", "if", "than", "since",
           "unless", "whereas", "as", "though"):
    _CLOSED_CLASS[_w] = "IN"
for _w in ("and", "or", "but", "nor", "yet", "so"):
    _CLOSED_CLASS[_w] = "CC"
for _w in ("will", "would", "shall", "should", "can", "could", "may",
           "might", "must"):
    _CLOSED_CLASS[_w] = "MD"
for _w in ("who", "whom", "what", "which", "whose"):
    _CLOSED_CLASS[_w] = "WP"
for _w in ("where", "when", "why", "how"):
    _CLOSED_CLASS[_w] = "WRB"
_CLOSED_CLASS["to"] = "TO"
for _w in ("not", "n't", "also", "very", "too", "just", "only", "then",
           "there", "here", "now", "never", "always", "often", "later",
           "early", "soon", "again", "once", "twice", "almost", "nearly",
           "approximately", "roughly", "eventually", "finally",
           "subsequently", "initially", "originally", "formerly",
           "currently", "primarily", "mainly", "mostly", "widely",
           "highly", "notably", "famously"):
    _CLOSED_CLASS[_w] = "RB"

# Irregular / common verb forms: base, past, 3rd-singular, participle.
_VERB_FORMS: dict[str, str] = {
    "be": "VB", "am": "VBP", "is": "VBZ", "are": "VBP", "was": "VBD",
    "were": "VBD", "been": "VBN", "being": "VBG",
    "have": "VBP", "has": "VBZ", "had": "VBD", "having": "VBG",
    "do": "VBP", "does": "VBZ", "did": "VBD", "done": "VBN",
    "go": "VB", "went": "VBD", "gone": "VBN",
    "win": "VB", "won": "VBD", "lose": "VB", "lost": "VBD",
    "lead": "VB", "led": "VBD", "leave": "VB", "left": "VBD",
    "make": "VB", "made": "VBD", "take": "VB", "took": "VBD",
    "taken": "VBN", "give": "VB", "gave": "VBD", "given": "VBN",
    "get": "VB", "got": "VBD", "find": "VB", "found": "VBD",
    "hold": "VB", "held": "VBD", "write": "VB", "wrote": "VBD",
    "written": "VBN", "become": "VB", "became": "VBD",
    "begin": "VB", "began": "VBD", "begun": "VBN",
    "know": "VB", "knew": "VBD", "known": "VBN",
    "see": "VB", "saw": "VBD", "seen": "VBN",
    "grow": "VB", "grew": "VBD", "grown": "VBN",
    "rise": "VB", "rose": "VBD", "risen": "VBN",
    "fall": "VB", "fell": "VBD", "fallen": "VBN",
    "build": "VB", "built": "VBD", "teach": "VB", "taught": "VBD",
    "fight": "VB", "fought": "VBD", "bring": "VB", "brought": "VBD",
    "buy": "VB", "bought": "VBD", "think": "VB", "thought": "VBD",
    "say": "VB", "said": "VBD", "sing": "VB", "sang": "VBD",
    "sung": "VBN", "meet": "VB", "met": "VBD",
    "run": "VB", "ran": "VBD", "set": "VB", "sell": "VB", "sold": "VBD",
    "send": "VB", "sent": "VBD", "spend": "VB", "spent": "VBD",
    "come": "VB", "came": "VBD", "overcame": "VBD", "overcome": "VB",
    "die": "VB", "died": "VBD",
    "bear": "VB", "bore": "VBD", "born": "VBN",
    "raise": "VB", "raised": "VBD",
    "choose": "VB", "chose": "VBD", "chosen": "VBN",
    "draw": "VB", "drew": "VBD", "drawn": "VBN",
    "speak": "VB", "spoke": "VBD", "spoken": "VBN",
}

# Base verbs whose regular inflections should also tag as verbs.
_BASE_VERBS = {
    "defeat", "beat", "conquer", "vanquish", "earn", "gain", "capture",
    "claim", "secure", "represent", "perform", "play", "appear", "star",
    "dance", "compose", "record", "release", "publish", "issue", "launch",
    "discover", "uncover", "detect", "identify", "invent", "devise",
    "create", "develop", "design", "establish", "institute", "form",
    "construct", "erect", "demolish", "destroy", "command", "direct",
    "guide", "rule", "govern", "reign", "control", "invade", "occupy",
    "seize", "study", "research", "investigate", "examine", "propose",
    "suggest", "advance", "introduce", "prove", "demonstrate", "show",
    "verify", "confirm", "receive", "accept", "obtain", "grant", "award",
    "present", "bestow", "name", "call", "dub", "designate", "locate",
    "situate", "place", "position", "move", "relocate", "migrate",
    "transfer", "start", "commence", "initiate", "open", "finish",
    "conclude", "terminate", "close", "expand", "increase", "decrease",
    "decline", "drop", "measure", "gauge", "quantify", "produce",
    "manufacture", "generate", "serve", "work", "act", "attend", "visit",
    "graduate", "instruct", "educate", "train", "marry", "wed", "reside",
    "dwell", "inhabit", "live", "remain", "describe", "include", "contain",
    "feature", "house", "border", "cover", "span", "stretch", "flow",
    "attract", "host", "celebrate", "honor", "dedicate", "complete",
    "debut", "tour", "travel", "explore", "observe", "calculate",
    "predict", "explain", "describe", "help", "support", "defend",
    "protect", "join", "sign", "retire", "return", "score", "succeed",
    "replace", "succeed", "employ", "hire", "manage", "operate",
}

VERB_LEXICON = frozenset(_VERB_FORMS) | _BASE_VERBS

_NOUN_SUFFIXES = (
    "tion", "sion", "ment", "ness", "ity", "ship", "hood", "dom", "ism",
    "ist", "ure", "ance", "ence", "ery", "logy", "graphy",
)
_ADJ_SUFFIXES = ("ous", "ful", "ive", "ic", "ical", "able", "ible", "ant",
                 "ent", "ary", "ish", "less")

_NUMBER_RE = re.compile(r"^\d+(?:[.,]\d+)*%?$")
_ORDINAL_RE = re.compile(r"^\d+(?:st|nd|rd|th)$", re.IGNORECASE)


class PosTagger:
    """Tag token sequences with the compact Penn-style tagset.

    The tagger is deterministic.  ``extra_nouns`` / ``extra_verbs`` allow
    dataset generators to register domain words whose class the heuristics
    would otherwise miss.
    """

    def __init__(
        self,
        extra_nouns: set[str] | None = None,
        extra_verbs: set[str] | None = None,
    ) -> None:
        self.extra_nouns = {w.lower() for w in (extra_nouns or set())}
        self.extra_verbs = {w.lower() for w in (extra_verbs or set())}

    # ---------------------------------------------------------------- word
    def _tag_word(self, word: str, position: int) -> str:
        lower = word.lower()
        if not any(ch.isalnum() for ch in word):
            return "POS" if word in ("'s",) else "PUNCT"
        if _NUMBER_RE.match(word):
            return "CD"
        if _ORDINAL_RE.match(word):
            return "JJ"
        if lower in _CLOSED_CLASS:
            return _CLOSED_CLASS[lower]
        if lower in self.extra_verbs:
            return "VBD"
        if lower in _VERB_FORMS:
            return _VERB_FORMS[lower]
        if lower in _BASE_VERBS:
            return "VB"
        # Regular inflections of known verbs.
        if lower.endswith("ed"):
            stem = lower[:-2]
            if stem in _BASE_VERBS or stem + "e" in _BASE_VERBS or (
                len(stem) > 2 and stem[-1] == stem[-2] and stem[:-1] in _BASE_VERBS
            ):
                return "VBD"
        if lower.endswith("ing"):
            stem = lower[:-3]
            if stem in _BASE_VERBS or stem + "e" in _BASE_VERBS:
                return "VBG"
        if lower.endswith("s") and not lower.endswith("ss"):
            stem = lower[:-1]
            es_stem = lower[:-2] if lower.endswith("es") else None
            if stem in _BASE_VERBS or (es_stem and es_stem in _BASE_VERBS):
                return "VBZ"
        if lower in self.extra_nouns:
            return "NNP" if word[:1].isupper() else "NN"
        # Capitalization mid-sentence is the strongest proper-noun cue.
        if word[:1].isupper() and position > 0:
            return "NNP"
        # Morphological suffixes.
        if lower.endswith("ly"):
            return "RB"
        for suffix in _ADJ_SUFFIXES:
            if lower.endswith(suffix) and len(lower) > len(suffix) + 2:
                return "JJ"
        for suffix in _NOUN_SUFFIXES:
            if lower.endswith(suffix) and len(lower) > len(suffix) + 1:
                return "NN"
        if lower.endswith("ing"):
            return "VBG"
        if lower.endswith("ed"):
            return "VBN"
        if word[:1].isupper():  # sentence-initial unknown capitalized word
            return "NNP"
        if lower.endswith("s") and not lower.endswith("ss") and len(lower) > 3:
            return "NNS"
        return "NN"

    # ------------------------------------------------------------ sequence
    def tag(self, tokens: list[str]) -> list[str]:
        """Tag a token sequence, applying contextual repair rules."""
        tags = [self._tag_word(tok, i) for i, tok in enumerate(tokens)]
        for i in range(len(tags)):
            prev_tag = tags[i - 1] if i > 0 else None
            # determiner/adjective + "Xs" → plural noun, not verb
            if tags[i] == "VBZ" and prev_tag in ("DT", "JJ", "PRP$", "CD"):
                tags[i] = "NNS"
            # noun + "Xed" where a later verb exists → keep; else fine
            # "that"/"as" before a verb behaves as IN; before NP it's DT —
            # approximate: "that" followed by a noun-ish tag is DT.
            if tokens[i].lower() == "that":
                nxt = tags[i + 1] if i + 1 < len(tags) else None
                tags[i] = "DT" if nxt in ("NN", "NNS", "NNP", "JJ", "CD") else "IN"
            # bare VB after a noun phrase start and no modal → past tense
            # (narrative corpus style: "The duke lead ..." is rare; keep VB)
        return tags
