"""Interpolated n-gram language model.

Stands in for the PLM's token probabilities in the readability metric
(Eq. 3-4): ``R(e) = 1 / PPL(e)``.  A trigram model with Jelinek-Mercer
interpolation and add-k floor smoothing gives the monotonicity the paper's
metric relies on: fluent in-domain word orders receive lower perplexity
than shuffled or fragmented ones.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Sequence

__all__ = ["BOS", "NGramLanguageModel"]

_BOS = "<s>"
_EOS = "</s>"

# Public alias: incremental scoring replays trigram terms outside this
# module and must left-pad with the exact BOS sentinel
# ``log_probability`` uses.  (EOS is fit-time only — ``log_probability``
# scores sequences *without* EOS, so replayers must not append it.)
BOS = _BOS


class NGramLanguageModel:
    """Trigram LM with Jelinek-Mercer interpolation.

    ``p(w | u, v) = l3 * p3(w|u,v) + l2 * p2(w|v) + l1 * p1(w)`` where the
    component maximum-likelihood estimates fall back to an add-k-smoothed
    unigram floor for unseen words, so every sequence has finite perplexity.

    Args:
        order: maximum n-gram order (2 or 3; default 3).
        lambdas: interpolation weights (trigram, bigram, unigram); must sum
            to 1.
        add_k: unigram floor smoothing constant.
    """

    def __init__(
        self,
        order: int = 3,
        lambdas: tuple[float, float, float] = (0.5, 0.3, 0.2),
        add_k: float = 0.1,
    ) -> None:
        if order not in (2, 3):
            raise ValueError("order must be 2 or 3")
        if abs(sum(lambdas) - 1.0) > 1e-9:
            raise ValueError("interpolation weights must sum to 1")
        if any(lam < 0 for lam in lambdas):
            raise ValueError("interpolation weights must be non-negative")
        self.order = order
        self.lambdas = lambdas
        self.add_k = add_k
        self.unigrams: Counter[str] = Counter()
        self.bigrams: Counter[tuple[str, str]] = Counter()
        self.trigrams: Counter[tuple[str, str, str]] = Counter()
        self.total_tokens = 0
        self._fitted = False

    # ------------------------------------------------------------------ fit
    def fit(self, sentences: Iterable[Sequence[str]]) -> "NGramLanguageModel":
        """Accumulate n-gram counts from an iterable of token sequences."""
        for sent in sentences:
            tokens = [_BOS, _BOS] + [t.lower() for t in sent] + [_EOS]
            for i in range(2, len(tokens)):
                w, v, u = tokens[i], tokens[i - 1], tokens[i - 2]
                self.unigrams[w] += 1
                self.bigrams[(v, w)] += 1
                if self.order == 3:
                    self.trigrams[(u, v, w)] += 1
                self.total_tokens += 1
        self._fitted = True
        return self

    @property
    def vocab_size(self) -> int:
        return max(1, len(self.unigrams))

    # ---------------------------------------------------------- probability
    def _p_unigram(self, w: str) -> float:
        return (self.unigrams.get(w, 0) + self.add_k) / (
            self.total_tokens + self.add_k * (self.vocab_size + 1)
        )

    def _p_bigram(self, v: str, w: str) -> float:
        context = self.unigrams.get(v, 0) if v not in (_BOS,) else self._bos_count()
        if context == 0:
            return self._p_unigram(w)
        return self.bigrams.get((v, w), 0) / context

    def _bos_count(self) -> int:
        # Each training sentence contributes one (BOS, w) bigram with v=BOS
        # at position 0; approximate by the EOS count (one per sentence).
        return max(1, self.unigrams.get(_EOS, 1))

    def _p_trigram(self, u: str, v: str, w: str) -> float:
        context = self.bigrams.get((u, v), 0)
        if u == _BOS and v == _BOS:
            context = self._bos_count()
        if context == 0:
            return 0.0
        return self.trigrams.get((u, v, w), 0) / context

    def probability(self, w: str, v: str = _BOS, u: str = _BOS) -> float:
        """Interpolated ``p(w | u, v)``; always strictly positive."""
        if not self._fitted:
            raise RuntimeError("language model is not fitted; call fit() first")
        w, v, u = w.lower(), v.lower() if v != _BOS else v, u.lower() if u != _BOS else u
        l3, l2, l1 = self.lambdas
        p = l1 * self._p_unigram(w) + l2 * self._p_bigram(v, w)
        if self.order == 3:
            p += l3 * self._p_trigram(u, v, w)
        else:
            p += l3 * self._p_bigram(v, w)
        return max(p, 1e-12)

    # ----------------------------------------------------------- perplexity
    def log_probability(self, tokens: Sequence[str]) -> float:
        """Natural-log probability of a token sequence (without EOS)."""
        padded = [_BOS, _BOS] + [t.lower() for t in tokens]
        total = 0.0
        for i in range(2, len(padded)):
            total += math.log(self.probability(padded[i], padded[i - 1], padded[i - 2]))
        return total

    def perplexity(self, tokens: Sequence[str]) -> float:
        """Per-token perplexity of ``tokens`` (Eq. 3); inf-free by smoothing.

        Empty sequences are maximally surprising by convention.
        """
        if not tokens:
            return float(self.vocab_size)
        return math.exp(-self.log_probability(tokens) / len(tokens))
