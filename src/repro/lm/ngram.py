"""Interpolated n-gram language model.

Stands in for the PLM's token probabilities in the readability metric
(Eq. 3-4): ``R(e) = 1 / PPL(e)``.  A trigram model with Jelinek-Mercer
interpolation and add-k floor smoothing gives the monotonicity the paper's
metric relies on: fluent in-domain word orders receive lower perplexity
than shuffled or fragmented ones.
"""

from __future__ import annotations

import json
import math
import struct
from array import array
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["BOS", "FlatNGramTables", "NGramLanguageModel"]

_BOS = "<s>"
_EOS = "</s>"

# Public alias: incremental scoring replays trigram terms outside this
# module and must left-pad with the exact BOS sentinel
# ``log_probability`` uses.  (EOS is fit-time only — ``log_probability``
# scores sequences *without* EOS, so replayers must not append it.)
BOS = _BOS

# Flat-table wire format: magic + version byte, then fixed-size scalars,
# then length-prefixed blobs (vocab JSON, count/id arrays).  Everything is
# little-endian and built from sorted keys, so serialization is a pure
# function of the model's counts — save→load→save is byte-identical.
_FLAT_MAGIC = b"GLM1"
_FLAT_HEADER = struct.Struct("<4sBxxx3ddQ6Q")


@dataclass(frozen=True)
class FlatNGramTables:
    """The LM's counts flattened to compact arrays for the snapshot plane.

    ``Counter`` pickles pay per-entry object overhead (tuple keys,
    boxed ints); the flat form stores one sorted vocabulary plus
    parallel ``array`` buffers — vocabulary-index id pairs/triples and
    unsigned counts — which serialize to raw bytes and sit naturally in
    a shared-memory segment.  ``uni_counts`` is indexed by vocabulary
    position (0 for symbols, like BOS, that only occur in contexts);
    ``bi_ids``/``tri_ids`` hold the n-gram keys as flattened id tuples in
    sorted key order.
    """

    order: int
    lambdas: tuple[float, float, float]
    add_k: float
    total_tokens: int
    vocab: tuple[str, ...]
    uni_counts: array
    bi_ids: array
    bi_counts: array
    tri_ids: array
    tri_counts: array

    def to_bytes(self) -> bytes:
        vocab_blob = json.dumps(
            list(self.vocab), ensure_ascii=False, separators=(",", ":")
        ).encode("utf-8")
        blobs = (
            vocab_blob,
            self.uni_counts.tobytes(),
            self.bi_ids.tobytes(),
            self.bi_counts.tobytes(),
            self.tri_ids.tobytes(),
            self.tri_counts.tobytes(),
        )
        header = _FLAT_HEADER.pack(
            _FLAT_MAGIC,
            self.order,
            *self.lambdas,
            self.add_k,
            self.total_tokens,
            *(len(blob) for blob in blobs),
        )
        return header + b"".join(blobs)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "FlatNGramTables":
        fields = _FLAT_HEADER.unpack_from(blob)
        magic, order = fields[0], fields[1]
        if magic != _FLAT_MAGIC:
            raise ValueError("not a flat n-gram table blob")
        lambdas = fields[2:5]
        add_k, total_tokens = fields[5], fields[6]
        lengths = fields[7:13]
        offset = _FLAT_HEADER.size
        parts: list[bytes] = []
        for length in lengths:
            parts.append(blob[offset : offset + length])
            offset += length
        arrays = []
        for typecode, raw in zip("QIQIQ", parts[1:]):
            arr = array(typecode)
            arr.frombytes(raw)
            arrays.append(arr)
        return cls(
            order=order,
            lambdas=tuple(lambdas),
            add_k=add_k,
            total_tokens=total_tokens,
            vocab=tuple(json.loads(parts[0].decode("utf-8"))),
            uni_counts=arrays[0],
            bi_ids=arrays[1],
            bi_counts=arrays[2],
            tri_ids=arrays[3],
            tri_counts=arrays[4],
        )


class NGramLanguageModel:
    """Trigram LM with Jelinek-Mercer interpolation.

    ``p(w | u, v) = l3 * p3(w|u,v) + l2 * p2(w|v) + l1 * p1(w)`` where the
    component maximum-likelihood estimates fall back to an add-k-smoothed
    unigram floor for unseen words, so every sequence has finite perplexity.

    Args:
        order: maximum n-gram order (2 or 3; default 3).
        lambdas: interpolation weights (trigram, bigram, unigram); must sum
            to 1.
        add_k: unigram floor smoothing constant.
    """

    def __init__(
        self,
        order: int = 3,
        lambdas: tuple[float, float, float] = (0.5, 0.3, 0.2),
        add_k: float = 0.1,
    ) -> None:
        if order not in (2, 3):
            raise ValueError("order must be 2 or 3")
        if abs(sum(lambdas) - 1.0) > 1e-9:
            raise ValueError("interpolation weights must sum to 1")
        if any(lam < 0 for lam in lambdas):
            raise ValueError("interpolation weights must be non-negative")
        self.order = order
        self.lambdas = lambdas
        self.add_k = add_k
        self.unigrams: Counter[str] = Counter()
        self.bigrams: Counter[tuple[str, str]] = Counter()
        self.trigrams: Counter[tuple[str, str, str]] = Counter()
        self.total_tokens = 0
        self._fitted = False

    # -------------------------------------------------------- snapshot plane
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        if self._fitted:
            from repro.engine.snapshot import externalizing

            if externalizing():
                # The counts ride the snapshot's shared segment as flat
                # tables (one copy for all workers); the pickle carries a
                # hollow shell that re-attaches on first probability().
                state["unigrams"] = None
                state["bigrams"] = None
                state["trigrams"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def _rehydrate(self) -> None:
        """Re-attach hollow (snapshot-externalized) counts on first use."""
        from repro.engine.snapshot import load_active_section

        blob = load_active_section("lm")
        if blob is None:
            raise RuntimeError(
                "language-model counts were externalized to a pipeline "
                "snapshot, but no snapshot is active in this process"
            )
        self._install_flat(FlatNGramTables.from_bytes(blob))

    def to_flat(self) -> FlatNGramTables:
        """Flatten the fitted counts to :class:`FlatNGramTables`."""
        symbols: set[str] = set(self.unigrams)
        for v, w in self.bigrams:
            symbols.add(v)
            symbols.add(w)
        for u, v, w in self.trigrams:
            symbols.add(u)
            symbols.add(v)
            symbols.add(w)
        vocab = tuple(sorted(symbols))
        index = {symbol: i for i, symbol in enumerate(vocab)}
        uni_counts = array("Q", (self.unigrams.get(s, 0) for s in vocab))
        bi_ids = array("I")
        bi_counts = array("Q")
        for v, w in sorted(self.bigrams):
            bi_ids.append(index[v])
            bi_ids.append(index[w])
            bi_counts.append(self.bigrams[(v, w)])
        tri_ids = array("I")
        tri_counts = array("Q")
        for u, v, w in sorted(self.trigrams):
            tri_ids.append(index[u])
            tri_ids.append(index[v])
            tri_ids.append(index[w])
            tri_counts.append(self.trigrams[(u, v, w)])
        return FlatNGramTables(
            order=self.order,
            lambdas=tuple(self.lambdas),
            add_k=self.add_k,
            total_tokens=self.total_tokens,
            vocab=vocab,
            uni_counts=uni_counts,
            bi_ids=bi_ids,
            bi_counts=bi_counts,
            tri_ids=tri_ids,
            tri_counts=tri_counts,
        )

    def _install_flat(self, flat: FlatNGramTables) -> None:
        """Rebuild the exact ``Counter`` tables from flat arrays.

        Zero-count vocabulary symbols (context-only, e.g. BOS) are *not*
        inserted, so ``vocab_size`` — ``len(unigrams)`` — and every
        downstream probability match the original model bit-for-bit.
        """
        vocab = flat.vocab
        self.unigrams = Counter(
            {vocab[i]: count for i, count in enumerate(flat.uni_counts) if count}
        )
        bigrams: Counter[tuple[str, str]] = Counter()
        bi_ids = flat.bi_ids
        for pos, count in enumerate(flat.bi_counts):
            bigrams[(vocab[bi_ids[2 * pos]], vocab[bi_ids[2 * pos + 1]])] = count
        self.bigrams = bigrams
        trigrams: Counter[tuple[str, str, str]] = Counter()
        tri_ids = flat.tri_ids
        for pos, count in enumerate(flat.tri_counts):
            trigrams[
                (
                    vocab[tri_ids[3 * pos]],
                    vocab[tri_ids[3 * pos + 1]],
                    vocab[tri_ids[3 * pos + 2]],
                )
            ] = count
        self.trigrams = trigrams
        self.total_tokens = flat.total_tokens
        self._fitted = True

    def snapshot_bytes(self) -> bytes:
        """The fitted counts as a flat byte blob (the ``lm`` section)."""
        return self.to_flat().to_bytes()

    @classmethod
    def from_flat(cls, flat: FlatNGramTables) -> "NGramLanguageModel":
        """Rebuild a fitted model from flattened tables."""
        model = cls(
            order=flat.order, lambdas=tuple(flat.lambdas), add_k=flat.add_k
        )
        model._install_flat(flat)
        return model

    # ------------------------------------------------------------------ fit
    def fit(self, sentences: Iterable[Sequence[str]]) -> "NGramLanguageModel":
        """Accumulate n-gram counts from an iterable of token sequences."""
        for sent in sentences:
            tokens = [_BOS, _BOS] + [t.lower() for t in sent] + [_EOS]
            for i in range(2, len(tokens)):
                w, v, u = tokens[i], tokens[i - 1], tokens[i - 2]
                self.unigrams[w] += 1
                self.bigrams[(v, w)] += 1
                if self.order == 3:
                    self.trigrams[(u, v, w)] += 1
                self.total_tokens += 1
        self._fitted = True
        return self

    @property
    def vocab_size(self) -> int:
        if self.unigrams is None:
            self._rehydrate()
        return max(1, len(self.unigrams))

    # ---------------------------------------------------------- probability
    def _p_unigram(self, w: str) -> float:
        return (self.unigrams.get(w, 0) + self.add_k) / (
            self.total_tokens + self.add_k * (self.vocab_size + 1)
        )

    def _p_bigram(self, v: str, w: str) -> float:
        context = self.unigrams.get(v, 0) if v not in (_BOS,) else self._bos_count()
        if context == 0:
            return self._p_unigram(w)
        return self.bigrams.get((v, w), 0) / context

    def _bos_count(self) -> int:
        # Each training sentence contributes one (BOS, w) bigram with v=BOS
        # at position 0; approximate by the EOS count (one per sentence).
        return max(1, self.unigrams.get(_EOS, 1))

    def _p_trigram(self, u: str, v: str, w: str) -> float:
        context = self.bigrams.get((u, v), 0)
        if u == _BOS and v == _BOS:
            context = self._bos_count()
        if context == 0:
            return 0.0
        return self.trigrams.get((u, v, w), 0) / context

    def probability(self, w: str, v: str = _BOS, u: str = _BOS) -> float:
        """Interpolated ``p(w | u, v)``; always strictly positive."""
        if not self._fitted:
            raise RuntimeError("language model is not fitted; call fit() first")
        if self.unigrams is None:
            self._rehydrate()
        w, v, u = w.lower(), v.lower() if v != _BOS else v, u.lower() if u != _BOS else u
        l3, l2, l1 = self.lambdas
        p = l1 * self._p_unigram(w) + l2 * self._p_bigram(v, w)
        if self.order == 3:
            p += l3 * self._p_trigram(u, v, w)
        else:
            p += l3 * self._p_bigram(v, w)
        return max(p, 1e-12)

    # ----------------------------------------------------------- perplexity
    def log_probability(self, tokens: Sequence[str]) -> float:
        """Natural-log probability of a token sequence (without EOS)."""
        padded = [_BOS, _BOS] + [t.lower() for t in tokens]
        total = 0.0
        for i in range(2, len(padded)):
            total += math.log(self.probability(padded[i], padded[i - 1], padded[i - 2]))
        return total

    def perplexity(self, tokens: Sequence[str]) -> float:
        """Per-token perplexity of ``tokens`` (Eq. 3); inf-free by smoothing.

        Empty sequences are maximally surprising by convention.
        """
        if not tokens:
            return float(self.vocab_size)
        return math.exp(-self.log_probability(tokens) / len(tokens))
