"""Language-model substrate: n-gram LM for perplexity, co-occurrence embeddings."""

from repro.lm.ngram import NGramLanguageModel
from repro.lm.embeddings import CooccurrenceEmbeddings

__all__ = ["NGramLanguageModel", "CooccurrenceEmbeddings"]
