"""Co-occurrence word embeddings (PPMI + truncated SVD).

Stands in for the PLM's learned token embeddings (the ``x_i`` fed into the
multi-head attention of Eq. 6-8).  Positive pointwise mutual information
over a symmetric context window, factored with sparse SVD, yields dense
vectors where related corpus tokens (e.g. "Broncos" / "champion") have
higher cosine similarity — precisely the signal WSPTC's attention weights
need to carry.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import svds

__all__ = ["CooccurrenceEmbeddings"]


class CooccurrenceEmbeddings:
    """PPMI-SVD embeddings over a token corpus.

    Args:
        dim: embedding dimensionality (also the attention model dimension).
        window: symmetric co-occurrence window size.
        min_count: tokens rarer than this share a single UNK vector.
        seed: seed for the deterministic SVD starting vector.
    """

    def __init__(
        self,
        dim: int = 64,
        window: int = 4,
        min_count: int = 1,
        seed: int = 0,
    ) -> None:
        if dim < 2:
            raise ValueError("dim must be at least 2")
        if window < 1:
            raise ValueError("window must be at least 1")
        self.dim = dim
        self.window = window
        self.min_count = min_count
        self.seed = seed
        self._index: dict[str, int] = {}
        self._vectors: np.ndarray | None = None
        self._unk: np.ndarray | None = None

    # ------------------------------------------------------------------ fit
    def fit(self, sentences: Iterable[Sequence[str]]) -> "CooccurrenceEmbeddings":
        """Build PPMI matrix from ``sentences`` and factor it with SVD."""
        corpus = [[t.lower() for t in sent] for sent in sentences]
        counts = Counter(tok for sent in corpus for tok in sent)
        vocab = sorted(tok for tok, n in counts.items() if n >= self.min_count)
        self._index = {tok: i for i, tok in enumerate(vocab)}
        n_vocab = len(vocab)
        if n_vocab == 0:
            raise ValueError("empty corpus: no tokens above min_count")

        pair_counts: Counter[tuple[int, int]] = Counter()
        for sent in corpus:
            ids = [self._index.get(t, -1) for t in sent]
            for i, wi in enumerate(ids):
                if wi < 0:
                    continue
                lo = max(0, i - self.window)
                hi = min(len(ids), i + self.window + 1)
                for j in range(lo, hi):
                    wj = ids[j]
                    if j != i and wj >= 0:
                        pair_counts[(wi, wj)] += 1

        total = sum(pair_counts.values())
        if total == 0:
            # Degenerate corpus of one-token sentences: fall back to random
            # but deterministic vectors so downstream attention still works.
            rng = np.random.default_rng(self.seed)
            self._vectors = rng.standard_normal((n_vocab, self.dim)) * 0.1
            self._unk = np.zeros(self.dim)
            return self

        row_sums = np.zeros(n_vocab)
        for (i, _j), c in pair_counts.items():
            row_sums[i] += c

        rows, cols, vals = [], [], []
        for (i, j), c in pair_counts.items():
            # PPMI = max(0, log(p(i,j) / (p(i) p(j))))
            pmi = np.log((c * total) / (row_sums[i] * row_sums[j]))
            if pmi > 0:
                rows.append(i)
                cols.append(j)
                vals.append(pmi)
        matrix = sp.csr_matrix(
            (vals, (rows, cols)), shape=(n_vocab, n_vocab), dtype=np.float64
        )

        k = min(self.dim, n_vocab - 1)
        if k < 1:
            self._vectors = np.ones((n_vocab, self.dim)) * 0.1
            self._unk = np.zeros(self.dim)
            return self
        rng = np.random.default_rng(self.seed)
        v0 = rng.standard_normal(min(matrix.shape))
        u, s, _vt = svds(matrix, k=k, v0=v0)
        # svds returns singular values ascending; order is irrelevant for
        # similarity but keep a canonical descending layout.
        order = np.argsort(-s)
        u, s = u[:, order], s[order]
        vectors = u * np.sqrt(np.maximum(s, 0.0))
        if k < self.dim:  # pad up to requested dim
            vectors = np.pad(vectors, ((0, 0), (0, self.dim - k)))
        self._vectors = vectors
        self._unk = vectors.mean(axis=0)
        return self

    # -------------------------------------------------------------- queries
    @property
    def fitted(self) -> bool:
        return self._vectors is not None

    def __contains__(self, token: str) -> bool:
        return token.lower() in self._index

    def vector(self, token: str) -> np.ndarray:
        """Embedding of ``token``; unknown tokens share the mean vector."""
        if self._vectors is None or self._unk is None:
            raise RuntimeError("embeddings are not fitted; call fit() first")
        idx = self._index.get(token.lower())
        if idx is None:
            return self._unk.copy()
        return self._vectors[idx].copy()

    def matrix(self, tokens: Sequence[str]) -> np.ndarray:
        """Stack embeddings for a token sequence into an (n, dim) array."""
        return np.vstack([self.vector(t) for t in tokens]) if tokens else np.zeros(
            (0, self.dim)
        )

    def similarity(self, a: str, b: str) -> float:
        """Cosine similarity between two tokens' embeddings."""
        va, vb = self.vector(a), self.vector(b)
        na, nb = np.linalg.norm(va), np.linalg.norm(vb)
        if na == 0.0 or nb == 0.0:
            return 0.0
        return float(va @ vb / (na * nb))

    def most_similar(self, token: str, top_k: int = 10) -> list[tuple[str, float]]:
        """The ``top_k`` vocabulary tokens most similar to ``token``."""
        if self._vectors is None:
            raise RuntimeError("embeddings are not fitted; call fit() first")
        query = self.vector(token)
        qn = np.linalg.norm(query)
        if qn == 0.0:
            return []
        norms = np.linalg.norm(self._vectors, axis=1)
        safe = np.where(norms == 0.0, 1.0, norms)
        sims = (self._vectors @ query) / (safe * qn)
        sims[norms == 0.0] = -1.0
        order = np.argsort(-sims)
        inv = {i: tok for tok, i in self._index.items()}
        results = []
        for idx in order:
            if inv[idx] == token.lower():
                continue
            results.append((inv[idx], float(sims[idx])))
            if len(results) == top_k:
                break
        return results
