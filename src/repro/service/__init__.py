"""Serving layer: warm-resource request/response API over the engine.

The one-shot CLI rebuilds corpora, lexicons, and parser resources on
every invocation; this package keeps them alive in a long-lived process:

* :class:`~repro.service.service.DistillService` — builds the pipeline
  resources once and serves distillations from them;
* :class:`~repro.service.scheduler.MicroBatchScheduler` — coalesces
  concurrent requests into engine micro-batches (max-batch-size /
  max-wait-ms flush policy, FIFO, per-request error isolation);
* :mod:`~repro.service.server` — stdlib JSON-over-HTTP front end
  (``/distill``, ``/batch``, ``/ask``, ``/healthz``, ``/stats``);
* :class:`~repro.service.client.ServiceClient` — matching stdlib client.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.scheduler import (
    DistillRequest,
    MicroBatchScheduler,
    SchedulerStats,
)
from repro.service.server import (
    DistillHTTPServer,
    make_server,
    start_server,
)
from repro.service.service import DistillService, ServiceConfig

__all__ = [
    "DistillHTTPServer",
    "DistillRequest",
    "DistillService",
    "MicroBatchScheduler",
    "SchedulerStats",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "make_server",
    "start_server",
]
