"""Serving layer: warm-resource request/response API over the engine.

The one-shot CLI rebuilds corpora, lexicons, and parser resources on
every invocation; this package keeps them alive in a long-lived process:

* :class:`~repro.service.service.DistillService` — builds the pipeline
  resources once and serves distillations from them;
* :class:`~repro.service.scheduler.MicroBatchScheduler` — coalesces
  concurrent requests into engine micro-batches (max-batch-size /
  max-wait-ms flush policy, FIFO, per-request error isolation), attaches
  identical in-flight requests to one computation, and bounds admission
  at ``max_queue_depth``;
* :mod:`~repro.service.admission` — per-client token buckets and the
  :class:`~repro.service.admission.ShedError` family the HTTP layer maps
  to ``429 + Retry-After``;
* :mod:`~repro.service.paging` — stateless cursors for paged ``/ask``;
* :mod:`~repro.service.server` — stdlib JSON-over-HTTP front end
  (``/distill``, ``/batch``, ``/ask``, ``/healthz``, ``/stats``,
  ``/metrics``, ``/debug/traces``);
* :class:`~repro.service.telemetry.ServiceTelemetry` — the
  :mod:`repro.obs` wiring: metrics registry behind ``/metrics``, trace
  sampling policy, and the slow-trace exemplar ring;
* :class:`~repro.service.client.ServiceClient` — matching stdlib client.

Operational reference: ``docs/operations.md`` and
``docs/observability.md``.
"""

from repro.service.admission import (
    AdmissionController,
    DeadlineExceededError,
    QueueFullError,
    RateLimitedError,
    ShedError,
    TokenBucket,
)
from repro.service.client import RetryPolicy, ServiceClient, ServiceError
from repro.service.paging import decode_cursor, encode_cursor, paginate_ask
from repro.service.scheduler import (
    DistillRequest,
    MicroBatchScheduler,
    SchedulerStats,
)
from repro.service.server import (
    DistillHTTPServer,
    make_server,
    start_server,
)
from repro.service.service import DistillService, ServiceConfig
from repro.service.telemetry import ServiceTelemetry

__all__ = [
    "AdmissionController",
    "DeadlineExceededError",
    "DistillHTTPServer",
    "DistillRequest",
    "DistillService",
    "MicroBatchScheduler",
    "QueueFullError",
    "RateLimitedError",
    "RetryPolicy",
    "SchedulerStats",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceTelemetry",
    "ShedError",
    "TokenBucket",
    "decode_cursor",
    "encode_cursor",
    "make_server",
    "paginate_ask",
    "start_server",
]
