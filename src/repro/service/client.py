"""Tiny stdlib HTTP client for the GCED evidence service.

Used by the test suite, the latency/saturation benchmarks, and ``repro
serve --self-test``; also a reference for how to talk to the service
from any language (it is plain JSON over HTTP).

Load-shed responses (``429``) surface as :class:`ServiceError` with
``status == 429`` and ``retry_after`` populated from the ``Retry-After``
header — callers decide whether to back off and retry or give up.
Transport failures (connection refused, socket timeout mid-body,
malformed response JSON) surface as :class:`ServiceError` with
``status == 0`` so callers handle every failure through one type.

Retries are opt-in: pass a :class:`RetryPolicy` and the client retries
retryable statuses (and transport failures) with capped exponential
backoff.  The jitter is *deterministic* — derived from the client id and
attempt number, never ``random`` — keeping the repo's reproducibility
contract: the same client retrying the same request sleeps the same
schedule every run.  A server ``Retry-After`` hint is honored (up to the
policy's cap) in place of a shorter computed delay.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.error
import urllib.request
import zlib
from dataclasses import dataclass
from typing import Iterator

__all__ = ["RetryPolicy", "ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """An HTTP error response from the service, with its parsed body.

    Attributes:
        status: the HTTP status code (400 invalid input, 404 unknown
            path, 405 wrong method, 429 shed by admission control,
            503 endpoint unavailable, 504 deadline expired) — or ``0``
            for transport failures that never produced a status
            (connection refused, timeout, malformed response body).
        payload: the parsed JSON error body.
        retry_after: seconds to wait before retrying, from the
            ``Retry-After`` header (precise float from the body when
            present); ``None`` for non-shed errors.
        trace_id: the server's ``X-Trace-Id`` response header when the
            failed request was traced — errors echo it exactly like
            successes, so a failure can be fished out of
            ``/debug/traces`` and the server logs.
    """

    def __init__(
        self,
        status: int,
        payload: dict,
        retry_after: float | None = None,
        trace_id: str | None = None,
    ) -> None:
        message = payload.get("error") if isinstance(payload, dict) else None
        super().__init__(f"HTTP {status}: {message or payload}")
        self.status = status
        self.payload = payload
        precise = (
            payload.get("retry_after_seconds")
            if isinstance(payload, dict)
            else None
        )
        self.retry_after = precise if precise is not None else retry_after
        self.trace_id = trace_id


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    Attributes:
        retries: additional attempts after the first (3 → up to 4
            requests total).
        base_delay_s: delay before the first retry.
        max_delay_s: ceiling on any single delay, including the
            server's ``Retry-After`` hint.
        backoff: multiplier between consecutive delays.
        retry_statuses: HTTP statuses worth retrying — load shed (429)
            and the transient 5xx family; 400/404/500 are not listed
            because retrying them cannot succeed.
        retry_transport: also retry ``status == 0`` transport failures
            (connection refused, timeout, truncated body).
    """

    retries: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    backoff: float = 2.0
    retry_statuses: tuple[int, ...] = (429, 502, 503, 504)
    retry_transport: bool = True

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be non-negative")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.backoff < 1.0:
            raise ValueError("backoff must be at least 1.0")

    def should_retry(self, error: ServiceError) -> bool:
        if error.status == 0:
            return self.retry_transport
        return error.status in self.retry_statuses

    def delay(
        self,
        attempt: int,
        client_id: str | None = None,
        retry_after: float | None = None,
    ) -> float:
        """Seconds to sleep before retry ``attempt`` (0-based).

        Deterministic jitter: up to +25% of the base delay, derived
        from ``crc32(client_id:attempt)`` so distinct clients desync
        without any randomness.  A server ``Retry-After`` hint raises
        the delay up to ``max_delay_s``.
        """
        base = min(
            self.max_delay_s, self.base_delay_s * self.backoff**attempt
        )
        seed = zlib.crc32(f"{client_id or ''}:{attempt}".encode("utf-8"))
        jitter = (seed / 2**32) * 0.25 * base
        delay = base + jitter
        if retry_after is not None:
            delay = max(delay, retry_after)
        return min(delay, self.max_delay_s)


class ServiceClient:
    """Blocking JSON client bound to one service base URL.

    Args:
        base_url: e.g. ``http://127.0.0.1:8080``.
        timeout: per-request socket timeout in seconds.
        client_id: sent as ``X-Client-Id`` on every request so the
            service's per-client token buckets can account this caller;
            ``None`` shares the anonymous default bucket.  Also the
            jitter seed for retries.
        trace_id: sent as ``X-Trace-Id`` to force tracing server-side.
        retry: a :class:`RetryPolicy`, or ``None`` (default) to raise
            on the first failure — the pre-retry behaviour.
        deadline_ms: default end-to-end budget sent as ``X-Deadline-Ms``
            on serving requests (overridable per call); the server
            answers ``504`` when it runs out.
        sleep: injectable sleep for tests; defaults to ``time.sleep``.

    Thread safety: the client keeps no mutable state, so one instance
    may be shared across any number of threads.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 60.0,
        client_id: str | None = None,
        trace_id: str | None = None,
        retry: RetryPolicy | None = None,
        deadline_ms: float | None = None,
        sleep=time.sleep,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.client_id = client_id
        # Sent as X-Trace-Id on every request: forces tracing server-side
        # and correlates this client's requests in logs and /debug/traces.
        self.trace_id = trace_id
        self.retry = retry
        self.deadline_ms = deadline_ms
        self._sleep = sleep

    # ----------------------------------------------------------- plumbing
    def _request(
        self,
        path: str,
        payload: dict | None = None,
        raw: bool = False,
        deadline_ms: float | None = None,
        method: str | None = None,
    ):
        attempt = 0
        while True:
            try:
                return self._request_once(
                    path, payload, raw, deadline_ms, method
                )
            except ServiceError as exc:
                policy = self.retry
                if (
                    policy is None
                    or attempt >= policy.retries
                    or not policy.should_retry(exc)
                ):
                    raise
                self._sleep(
                    policy.delay(
                        attempt,
                        client_id=self.client_id,
                        retry_after=exc.retry_after,
                    )
                )
                attempt += 1

    def _request_once(
        self,
        path: str,
        payload: dict | None,
        raw: bool,
        deadline_ms: float | None,
        method: str | None = None,
    ):
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if self.client_id:
            headers["X-Client-Id"] = self.client_id
        if self.trace_id:
            headers["X-Trace-Id"] = self.trace_id
        budget = deadline_ms if deadline_ms is not None else self.deadline_ms
        if budget is not None:
            headers["X-Deadline-Ms"] = f"{budget:g}"
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            url, data=data, headers=headers, method=method
        )
        trace_id = None
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                trace_id = resp.headers.get("X-Trace-Id")
                body = resp.read()
                return body.decode("utf-8") if raw else json.loads(body)
        except urllib.error.HTTPError as exc:
            trace_id = exc.headers.get("X-Trace-Id") if exc.headers else None
            try:
                body = json.loads(exc.read())
            except (json.JSONDecodeError, UnicodeDecodeError, OSError):
                body = {"error": exc.reason}
            retry_after = None
            header = exc.headers.get("Retry-After") if exc.headers else None
            if header is not None:
                try:
                    retry_after = float(header)
                except ValueError:
                    pass
            raise ServiceError(
                exc.code, body, retry_after, trace_id=trace_id
            ) from None
        except urllib.error.URLError as exc:
            # Connection refused, DNS failure, TLS errors, or a socket
            # timeout before the response line: no HTTP status exists.
            raise ServiceError(
                0, {"error": f"transport error: {exc.reason}"}
            ) from None
        except (TimeoutError, ConnectionError, http.client.HTTPException) as exc:
            # Socket timeout, connection reset, or truncated read
            # *mid-body*: the status line arrived but the payload never
            # finished.
            raise ServiceError(
                0,
                {"error": f"transport error: {exc or type(exc).__name__}"},
                trace_id=trace_id,
            ) from None
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            # A 200 whose body is not the JSON it claims to be —
            # truncated by a dying server or corrupted in transit.
            raise ServiceError(
                0,
                {"error": f"malformed response body: {exc}"},
                trace_id=trace_id,
            ) from None

    # ---------------------------------------------------------- endpoints
    def healthz(self) -> dict:
        return self._request("/healthz")

    def stats(self) -> dict:
        return self._request("/stats")

    def metrics_text(self) -> str:
        """The raw Prometheus text exposition from ``GET /metrics``."""
        return self._request("/metrics", raw=True)

    def debug_traces(self) -> dict:
        """The slow-trace exemplar ring from ``GET /debug/traces``."""
        return self._request("/debug/traces")

    def distill(
        self,
        question: str,
        answer: str,
        context: str,
        deadline_ms: float | None = None,
    ) -> dict:
        """One distillation; raises :class:`ServiceError` on 4xx/5xx."""
        return self._request(
            "/distill",
            {"question": question, "answer": answer, "context": context},
            deadline_ms=deadline_ms,
        )

    def distill_batch(
        self, items: list[dict], deadline_ms: float | None = None
    ) -> dict:
        """Batch distillation with per-item error isolation (one 429 sheds
        the whole batch — admission is all-or-nothing)."""
        return self._request(
            "/batch", {"items": items}, deadline_ms=deadline_ms
        )

    def ask(
        self,
        question: str | None = None,
        answer: str | None = None,
        k: int | None = None,
        page_size: int | None = None,
        cursor: str | None = None,
        deadline_ms: float | None = None,
    ) -> dict:
        """Open-context ask: no context — the service retrieves its own.

        Fat mode (default) returns every ranked candidate in one
        response.  Pass ``page_size`` for the first page of a paged
        response, then ``cursor=`` (from ``next_cursor``) for the rest;
        :meth:`ask_pages` wraps that loop.
        """
        payload: dict = {}
        if question is not None:
            payload["question"] = question
        if answer is not None:
            payload["answer"] = answer
        if k is not None:
            payload["k"] = k
        if page_size is not None:
            payload["page_size"] = page_size
        if cursor is not None:
            payload["cursor"] = cursor
        return self._request("/ask", payload, deadline_ms=deadline_ms)

    def ingest(self, texts: list[str]) -> dict:
        """Durably append paragraphs to the live corpus.

        Returns ``{"doc_ids": [...], "live_docs": n, "generation": g}``;
        the writes are WAL-fsynced server-side before this returns.
        Raises :class:`ServiceError` with ``status == 503`` when the
        service runs without an ingest directory.
        """
        return self._request("/ingest", {"texts": texts})

    def delete_doc(self, doc_id: int) -> dict:
        """Tombstone one document by id (``status == 404`` if not live)."""
        return self._request(f"/docs/{int(doc_id)}", method="DELETE")

    def ask_pages(
        self,
        question: str,
        answer: str,
        k: int | None = None,
        page_size: int = 3,
    ) -> Iterator[dict]:
        """Iterate every page of a paged ask, following ``next_cursor``.

        Concatenating the ``candidates`` of all yielded pages reproduces
        the fat response's candidate list exactly (stateless cursors over
        a deterministic ranking).
        """
        page = self.ask(question, answer, k, page_size=page_size)
        yield page
        while page.get("next_cursor"):
            page = self.ask(cursor=page["next_cursor"])
            yield page
