"""Tiny stdlib HTTP client for the GCED evidence service.

Used by the test suite, the latency/saturation benchmarks, and ``repro
serve --self-test``; also a reference for how to talk to the service
from any language (it is plain JSON over HTTP).

Load-shed responses (``429``) surface as :class:`ServiceError` with
``status == 429`` and ``retry_after`` populated from the ``Retry-After``
header — callers decide whether to back off and retry or give up.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Iterator

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """An HTTP error response from the service, with its parsed body.

    Attributes:
        status: the HTTP status code (400 invalid input, 404 unknown
            path, 405 wrong method, 429 shed by admission control,
            503 endpoint unavailable).
        payload: the parsed JSON error body.
        retry_after: seconds to wait before retrying, from the
            ``Retry-After`` header (precise float from the body when
            present); ``None`` for non-shed errors.
    """

    def __init__(
        self,
        status: int,
        payload: dict,
        retry_after: float | None = None,
    ) -> None:
        message = payload.get("error") if isinstance(payload, dict) else None
        super().__init__(f"HTTP {status}: {message or payload}")
        self.status = status
        self.payload = payload
        precise = (
            payload.get("retry_after_seconds")
            if isinstance(payload, dict)
            else None
        )
        self.retry_after = precise if precise is not None else retry_after


class ServiceClient:
    """Blocking JSON client bound to one service base URL.

    Args:
        base_url: e.g. ``http://127.0.0.1:8080``.
        timeout: per-request socket timeout in seconds.
        client_id: sent as ``X-Client-Id`` on every request so the
            service's per-client token buckets can account this caller;
            ``None`` shares the anonymous default bucket.

    Thread safety: the client keeps no mutable state, so one instance
    may be shared across any number of threads.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 60.0,
        client_id: str | None = None,
        trace_id: str | None = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.client_id = client_id
        # Sent as X-Trace-Id on every request: forces tracing server-side
        # and correlates this client's requests in logs and /debug/traces.
        self.trace_id = trace_id

    # ----------------------------------------------------------- plumbing
    def _request(
        self, path: str, payload: dict | None = None, raw: bool = False
    ):
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if self.client_id:
            headers["X-Client-Id"] = self.client_id
        if self.trace_id:
            headers["X-Trace-Id"] = self.trace_id
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                body = resp.read()
                return body.decode("utf-8") if raw else json.loads(body)
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read())
            except (json.JSONDecodeError, UnicodeDecodeError):
                body = {"error": exc.reason}
            retry_after = None
            header = exc.headers.get("Retry-After") if exc.headers else None
            if header is not None:
                try:
                    retry_after = float(header)
                except ValueError:
                    pass
            raise ServiceError(exc.code, body, retry_after) from None

    # ---------------------------------------------------------- endpoints
    def healthz(self) -> dict:
        return self._request("/healthz")

    def stats(self) -> dict:
        return self._request("/stats")

    def metrics_text(self) -> str:
        """The raw Prometheus text exposition from ``GET /metrics``."""
        return self._request("/metrics", raw=True)

    def debug_traces(self) -> dict:
        """The slow-trace exemplar ring from ``GET /debug/traces``."""
        return self._request("/debug/traces")

    def distill(self, question: str, answer: str, context: str) -> dict:
        """One distillation; raises :class:`ServiceError` on 4xx/5xx."""
        return self._request(
            "/distill",
            {"question": question, "answer": answer, "context": context},
        )

    def distill_batch(self, items: list[dict]) -> dict:
        """Batch distillation with per-item error isolation (one 429 sheds
        the whole batch — admission is all-or-nothing)."""
        return self._request("/batch", {"items": items})

    def ask(
        self,
        question: str | None = None,
        answer: str | None = None,
        k: int | None = None,
        page_size: int | None = None,
        cursor: str | None = None,
    ) -> dict:
        """Open-context ask: no context — the service retrieves its own.

        Fat mode (default) returns every ranked candidate in one
        response.  Pass ``page_size`` for the first page of a paged
        response, then ``cursor=`` (from ``next_cursor``) for the rest;
        :meth:`ask_pages` wraps that loop.
        """
        payload: dict = {}
        if question is not None:
            payload["question"] = question
        if answer is not None:
            payload["answer"] = answer
        if k is not None:
            payload["k"] = k
        if page_size is not None:
            payload["page_size"] = page_size
        if cursor is not None:
            payload["cursor"] = cursor
        return self._request("/ask", payload)

    def ask_pages(
        self,
        question: str,
        answer: str,
        k: int | None = None,
        page_size: int = 3,
    ) -> Iterator[dict]:
        """Iterate every page of a paged ask, following ``next_cursor``.

        Concatenating the ``candidates`` of all yielded pages reproduces
        the fat response's candidate list exactly (stateless cursors over
        a deterministic ranking).
        """
        page = self.ask(question, answer, k, page_size=page_size)
        yield page
        while page.get("next_cursor"):
            page = self.ask(cursor=page["next_cursor"])
            yield page
