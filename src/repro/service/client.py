"""Tiny stdlib HTTP client for the GCED evidence service.

Used by the test suite, the latency benchmark, and ``repro serve
--self-test``; also a reference for how to talk to the service from any
language (it is plain JSON over HTTP).
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """An HTTP error response from the service, with its parsed body."""

    def __init__(self, status: int, payload: dict) -> None:
        message = payload.get("error") if isinstance(payload, dict) else None
        super().__init__(f"HTTP {status}: {message or payload}")
        self.status = status
        self.payload = payload


class ServiceClient:
    """Blocking JSON client bound to one service base URL."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ----------------------------------------------------------- plumbing
    def _request(self, path: str, payload: dict | None = None) -> dict:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read())
            except (json.JSONDecodeError, UnicodeDecodeError):
                body = {"error": exc.reason}
            raise ServiceError(exc.code, body) from None

    # ---------------------------------------------------------- endpoints
    def healthz(self) -> dict:
        return self._request("/healthz")

    def stats(self) -> dict:
        return self._request("/stats")

    def distill(self, question: str, answer: str, context: str) -> dict:
        return self._request(
            "/distill",
            {"question": question, "answer": answer, "context": context},
        )

    def distill_batch(self, items: list[dict]) -> dict:
        return self._request("/batch", {"items": items})

    def ask(self, question: str, answer: str, k: int | None = None) -> dict:
        """Open-context ask: no context — the service retrieves its own."""
        payload: dict = {"question": question, "answer": answer}
        if k is not None:
            payload["k"] = k
        return self._request("/ask", payload)
