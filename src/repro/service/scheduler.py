"""Async micro-batching scheduler with coalescing and bounded admission.

A long-lived service receives distillation requests one at a time, but
the engine is at its best on *batches*: :class:`~repro.core.batch.BatchDistiller`
dedupes within a batch, memoizes finished triples, groups work by context
paragraph, and fans chunks out to the
:class:`~repro.engine.executor.ParallelExecutor`.  The scheduler bridges
the two worlds: callers submit single requests and get a future back;
a background flusher thread coalesces queued requests into micro-batches
and runs each batch through the distiller.

A batch flushes when either

* ``max_batch_size`` requests are queued (*size flush*), or
* ``max_wait_ms`` has elapsed since the oldest queued request arrived
  (*timeout flush*) — the latency bound a single straggler pays for
  batching.

Requests flush strictly in arrival order (FIFO), so no request can be
starved by later arrivals.  Errors are isolated per request: if a batch
fails, every request in it is retried individually and only the poisoned
ones receive the exception.

Two production-traffic behaviours sit in front of the queue:

* **In-flight coalescing** — a submit whose ``(question, answer,
  context)`` triple is already queued *or executing* attaches to that
  computation instead of enqueuing a duplicate: the attached request's
  future resolves with (a reference to) the same result, and on failure
  every attached request receives the same exception.  Results are safe
  to share because distillation is a pure function of the triple (the
  same contract the distiller's content-keyed memo relies on); the memo
  covers *finished* triples, coalescing covers *in-flight* ones.
* **Bounded admission** — with ``max_queue_depth`` set, a submit that
  would grow the queue past the bound is shed with
  :class:`~repro.service.admission.QueueFullError` carrying a
  ``retry_after`` hint derived from the observed batch latency (an EWMA
  over flushes) and the current backlog.  Coalesced submits never count
  against the bound: attaching to in-flight work adds no queue pressure.

Thread safety: any number of threads may submit concurrently; one
condition lock guards the queue, the in-flight table, and all counters.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field

from repro.core.batch import BatchDistiller
from repro.core.result import DistillationResult
from repro.faults import fault_point
from repro.obs import trace as obs_trace
from repro.service.admission import DeadlineExceededError, QueueFullError

__all__ = [
    "DistillRequest",
    "MicroBatchScheduler",
    "QueueFullError",
    "SchedulerStats",
]

# EWMA smoothing for observed batch latency: 0.25 weighs the last few
# batches heavily enough to track load shifts while ignoring one outlier.
_EWMA_ALPHA = 0.25


@dataclass
class DistillRequest:
    """One queued (question, answer, context) distillation.

    A *coalesced* request (``coalesced=True``) was attached to an
    identical in-flight computation at submit time: it owns no queue
    slot, and its future resolves when the primary request's does.
    """

    question: str
    answer: str
    context: str
    future: Future = field(
        default_factory=Future, repr=False, compare=False
    )
    enqueued_at: float = field(
        default_factory=time.monotonic, repr=False, compare=False
    )
    coalesced: bool = field(default=False, compare=False)
    # Futures of requests coalesced onto this (primary) request; resolved
    # together with `future` by the flusher.
    attached: list[Future] = field(
        default_factory=list, repr=False, compare=False
    )
    # The submitter's active trace, captured at construction so the
    # flusher thread can record scheduler/engine spans into it.
    trace: obs_trace.Trace | None = field(
        default=None, repr=False, compare=False
    )
    parent_span_id: str | None = field(
        default=None, repr=False, compare=False
    )
    # Absolute ``time.monotonic()`` instant the request's end-to-end
    # budget (``X-Deadline-Ms``) runs out; None = no deadline.
    deadline: float | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.trace is None:
            active = obs_trace.current()
            if active is not None:
                self.trace, self.parent_span_id = active

    @property
    def triple(self) -> tuple[str, str, str]:
        return (self.question, self.answer, self.context)

    def expired(self, now: float | None = None) -> bool:
        if self.deadline is None:
            return False
        return (time.monotonic() if now is None else now) >= self.deadline

    def result(self, timeout: float | None = None) -> DistillationResult:
        """Block until the batch containing this request has flushed."""
        return self.future.result(timeout)


@dataclass(frozen=True)
class SchedulerStats:
    """Counters describing the scheduler's batching behaviour so far.

    ``submitted``/``completed``/``failed`` count *requests* (coalesced
    ones included); ``flushed`` counts queue slots that went through
    batches, so ``mean_batch_size`` stays an engine-side measure.
    ``coalesced`` requests attached to in-flight work, ``shed`` were
    refused because the queue was at ``max_queue_depth``.
    """

    queue_depth: int
    submitted: int
    completed: int
    failed: int
    batches: int
    size_flushes: int
    timeout_flushes: int
    coalesced: int = 0
    shed: int = 0
    flushed: int = 0
    inflight: int = 0
    ewma_batch_ms: float = 0.0
    deadline_expired: int = 0

    @property
    def mean_batch_size(self) -> float:
        return self.flushed / self.batches if self.batches else 0.0

    @property
    def coalesce_hit_rate(self) -> float:
        return self.coalesced / self.submitted if self.submitted else 0.0

    def to_dict(self) -> dict:
        return {
            "queue_depth": self.queue_depth,
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "batches": self.batches,
            "size_flushes": self.size_flushes,
            "timeout_flushes": self.timeout_flushes,
            "coalesced": self.coalesced,
            "coalesce_hit_rate": self.coalesce_hit_rate,
            "shed": self.shed,
            "flushed": self.flushed,
            "inflight": self.inflight,
            "ewma_batch_ms": self.ewma_batch_ms,
            "mean_batch_size": self.mean_batch_size,
            "deadline_expired": self.deadline_expired,
        }


class MicroBatchScheduler:
    """Coalesces concurrent requests into engine-sized micro-batches.

    Args:
        distiller: the warm :class:`BatchDistiller` every batch runs on.
            The scheduler owns all access to it from its flusher thread,
            so callers never contend on the pipeline itself.
        max_batch_size: flush as soon as this many requests are queued.
        max_wait_ms: flush at the latest this long after the *oldest*
            queued request arrived; ``0`` flushes immediately (no
            batching beyond what is already queued).
        max_queue_depth: admission bound — a submit that would grow the
            queue past this many pending requests raises
            :class:`QueueFullError` (with a ``retry_after`` hint) instead
            of enqueuing.  ``0`` (default) leaves admission unbounded.

    Thread safety: :meth:`submit`, :meth:`submit_many`, :meth:`distill`,
    :meth:`stats`, and :meth:`close` may be called from any thread.

    Error modes: submits raise :class:`RuntimeError` after
    :meth:`close`, and :class:`QueueFullError` when shed; a request
    future raises the per-request distillation error (poisoned triples
    only — batch-mates are unaffected) or :class:`RuntimeError` if the
    scheduler was closed with ``drain=False`` while it was queued.
    """

    def __init__(
        self,
        distiller: BatchDistiller,
        max_batch_size: int = 16,
        max_wait_ms: float = 5.0,
        max_queue_depth: int = 0,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be at least 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        if max_queue_depth < 0:
            raise ValueError("max_queue_depth must be non-negative")
        self.distiller = distiller
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self.max_queue_depth = max_queue_depth
        self._queue: deque[DistillRequest] = deque()
        # Primary request per triple, from enqueue until its future
        # resolves; identical submits attach here instead of queueing.
        self._inflight: dict[tuple[str, str, str], DistillRequest] = {}
        self._cond = threading.Condition()
        self._closed = False
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._size_flushes = 0
        self._timeout_flushes = 0
        self._coalesced = 0
        self._shed = 0
        self._flushed = 0
        self._deadline_expired = 0
        self._ewma_batch_s = 0.0
        self.batch_sizes: list[int] = []
        # Optional telemetry hook: called after every flush (outside the
        # lock) as ``on_batch(seconds, size, reason, ok)``.
        self.on_batch = None
        self._thread = threading.Thread(
            target=self._run, name="gced-scheduler", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------- submit
    def submit(
        self,
        question: str,
        answer: str,
        context: str,
        deadline: float | None = None,
    ) -> DistillRequest:
        """Queue one request (or attach to an identical in-flight one).

        Returns immediately with the request holding a pending future.
        ``deadline`` is an absolute ``time.monotonic()`` instant; a
        request whose deadline has already passed is refused without
        touching the queue, and one that expires while queued fails at
        flush time before any engine work runs.

        Raises:
            RuntimeError: the scheduler is closed.
            QueueFullError: the queue is at ``max_queue_depth`` and the
                triple could not coalesce onto in-flight work.
            DeadlineExceededError: ``deadline`` is already in the past.
        """
        self._check_deadline(deadline)
        request = DistillRequest(question, answer, context, deadline=deadline)
        with self._cond:
            self._admit_locked(request)
            if not request.coalesced:
                self._cond.notify_all()
        return request

    def submit_many(
        self,
        triples: list[tuple[str, str, str]],
        deadline: float | None = None,
    ) -> list[DistillRequest]:
        """Queue several triples atomically, preserving their order.

        Duplicate triples within the call (and triples identical to
        in-flight work) coalesce onto one computation.  Admission is
        all-or-nothing: if the non-coalescable remainder does not fit
        under ``max_queue_depth``, the whole call is shed with
        :class:`QueueFullError` and nothing is enqueued.  ``deadline``
        (absolute monotonic) applies to every request in the call.
        """
        self._check_deadline(deadline)
        requests = [
            DistillRequest(*triple, deadline=deadline) for triple in triples
        ]
        with self._cond:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            if self.max_queue_depth:
                fresh = {
                    request.triple
                    for request in requests
                    if request.triple not in self._inflight
                }
                if len(self._queue) + len(fresh) > self.max_queue_depth:
                    self._shed += len(requests)
                    raise QueueFullError(
                        f"admission queue is full ({len(self._queue)}/"
                        f"{self.max_queue_depth} pending; batch of "
                        f"{len(fresh)} does not fit)",
                        retry_after=self._retry_after_locked(extra=len(fresh)),
                    )
            for request in requests:
                self._admit_locked(request, checked=True)
            self._cond.notify_all()
        return requests

    def _check_deadline(self, deadline: float | None) -> None:
        """Refuse a request whose budget is spent before it queues."""
        if deadline is not None and time.monotonic() >= deadline:
            with self._cond:
                self._deadline_expired += 1
            raise DeadlineExceededError(
                "request deadline expired before it could be queued",
            )

    def _admit_locked(
        self, request: DistillRequest, checked: bool = False
    ) -> None:
        """Coalesce, bound-check (unless ``checked``), and enqueue."""
        if self._closed:
            raise RuntimeError("scheduler is closed")
        primary = self._inflight.get(request.triple)
        if primary is not None:
            primary.attached.append(request.future)
            request.coalesced = True
            self._coalesced += 1
            self._submitted += 1
            if request.trace is not None:
                # Tag the coalesced request's trace with the primary's
                # trace id so the two traces can be joined offline.
                tags = {}
                if primary.trace is not None:
                    tags["primary_trace"] = primary.trace.trace_id
                obs_trace.record_event(
                    request.trace,
                    "scheduler.coalesced",
                    parent_id=request.parent_span_id,
                    **tags,
                )
            return
        if (
            not checked
            and self.max_queue_depth
            and len(self._queue) >= self.max_queue_depth
        ):
            self._shed += 1
            raise QueueFullError(
                f"admission queue is full "
                f"({len(self._queue)}/{self.max_queue_depth} pending)",
                retry_after=self._retry_after_locked(extra=1),
            )
        self._inflight[request.triple] = request
        self._queue.append(request)
        self._submitted += 1

    def distill(
        self,
        question: str,
        answer: str,
        context: str,
        timeout: float | None = None,
    ) -> DistillationResult:
        """Submit one request and block for its result."""
        return self.submit(question, answer, context).result(timeout)

    @property
    def queue_depth(self) -> int:
        with self._cond:
            return len(self._queue)

    def retry_after_hint(self) -> float:
        """Seconds a shed client should wait: backlog x observed batch latency."""
        with self._cond:
            return self._retry_after_locked(extra=1)

    def _retry_after_locked(self, extra: int = 0) -> float:
        """Expected time (s) to drain the backlog plus ``extra`` requests."""
        batch_s = self._ewma_batch_s or (self.max_wait_ms / 1000.0 + 0.05)
        batches_ahead = math.ceil(
            (len(self._queue) + extra) / self.max_batch_size
        )
        return round(max(0.05, batches_ahead * batch_s), 3)

    # -------------------------------------------------------------- flush
    def _run(self) -> None:
        while True:
            batch, reason = self._next_batch()
            if batch is None:
                return
            if batch:
                self._flush(batch, reason)

    def _next_batch(
        self,
    ) -> tuple[list[DistillRequest] | None, str]:
        """Block until a batch is due; ``(None, ...)`` means shut down."""
        with self._cond:
            while not self._queue:
                if self._closed:
                    return None, "closed"
                self._cond.wait()
            deadline = self._queue[0].enqueued_at + self.max_wait_ms / 1000.0
            reason = "timeout"
            while len(self._queue) < self.max_batch_size and not self._closed:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(timeout=remaining)
            if len(self._queue) >= self.max_batch_size:
                reason = "size"
            batch = [
                self._queue.popleft()
                for _ in range(min(len(self._queue), self.max_batch_size))
            ]
            return batch, reason

    def _resolve(
        self,
        request: DistillRequest,
        result: DistillationResult | None = None,
        error: Exception | None = None,
    ) -> tuple[int, int]:
        """Complete a request and everything coalesced onto it.

        The in-flight entry is removed *before* the futures resolve, so a
        new identical submit either attached in time (and resolves here)
        or starts a fresh computation — never observes a done primary.
        Returns ``(completed, failed)`` request counts.
        """
        with self._cond:
            self._inflight.pop(request.triple, None)
            attached = list(request.attached)
            request.attached.clear()
        futures = [request.future, *attached]
        if error is not None:
            for future in futures:
                future.set_exception(error)
            return 0, len(futures)
        for future in futures:
            future.set_result(result)
        return len(futures), 0

    def _begin_batch_trace(
        self, batch: list[DistillRequest], reason: str
    ):
        """Open the batch span on the first traced request's trace.

        The flusher thread runs on its own context, so the primary
        request's ``(trace, parent_id)`` is re-activated explicitly.
        Every *other* traced request in the batch gets (a) a
        ``scheduler.queue`` span covering its time in the queue and
        (b) a ``scheduler.batch`` link event naming the primary's trace
        id — one batch span linking N request traces.  Returns
        ``(context_token, flush_span)`` for :meth:`_end_batch_trace`.
        """
        traced = [request for request in batch if request.trace is not None]
        if not traced:
            return None, None
        now = time.time()
        monotonic_now = time.monotonic()
        for request in traced:
            waited = max(0.0, monotonic_now - request.enqueued_at)
            request.trace.add(
                obs_trace.Span(
                    "scheduler.queue",
                    request.trace.trace_id,
                    parent_id=request.parent_span_id,
                    start=now - waited,
                    end=now,
                )
            )
        primary = traced[0]
        token = obs_trace.activate(primary.trace, primary.parent_span_id)
        flush_span = obs_trace.span(
            "scheduler.flush", size=len(batch), reason=reason
        )
        flush_span.__enter__()
        if len(traced) > 1:
            flush_span.tag(linked_traces=len(traced) - 1)
        for request in traced[1:]:
            obs_trace.record_event(
                request.trace,
                "scheduler.batch",
                parent_id=request.parent_span_id,
                batch_trace=primary.trace.trace_id,
                size=len(batch),
            )
        return token, flush_span

    def _cull_expired(
        self, batch: list[DistillRequest]
    ) -> list[DistillRequest]:
        """Fail queued requests whose deadline passed, before engine work.

        Each expired request (and everything coalesced onto it) resolves
        with :class:`DeadlineExceededError` — a fast 504 at the HTTP
        edge — and records a ``deadline.expired`` event on its trace.
        Returns the still-live remainder of the batch.
        """
        now = time.monotonic()
        live: list[DistillRequest] = []
        expired_failed = 0
        for request in batch:
            if not request.expired(now):
                live.append(request)
                continue
            waited_ms = round((now - request.enqueued_at) * 1000.0, 3)
            if request.trace is not None:
                obs_trace.record_event(
                    request.trace,
                    "deadline.expired",
                    parent_id=request.parent_span_id,
                    waited_ms=waited_ms,
                )
            _done, bad = self._resolve(
                request,
                error=DeadlineExceededError(
                    "request deadline expired after "
                    f"{waited_ms:.0f}ms in the scheduler queue",
                    waited_ms=waited_ms,
                ),
            )
            expired_failed += bad
        if expired_failed:
            with self._cond:
                self._failed += expired_failed
                self._deadline_expired += expired_failed
        return live

    def _flush(self, batch: list[DistillRequest], reason: str) -> None:
        batch = self._cull_expired(batch)
        if not batch:
            return
        flush_started = time.monotonic()
        token, flush_span = self._begin_batch_trace(batch, reason)
        try:
            try:
                fault_point("scheduler.flush", detail=reason)
                results = self.distiller.distill_many(
                    [request.triple for request in batch]
                )
            except Exception:
                # Error isolation: re-run the batch one request at a time
                # so a single poisoned triple cannot fail its batch-mates.
                results = None
            completed = failed = 0
            if results is not None:
                for request, result in zip(batch, results):
                    done, bad = self._resolve(request, result=result)
                    completed += done
                    failed += bad
            else:
                for request in batch:
                    if request.expired():
                        # The serial fallback is slow; budgets can run
                        # out between items.  Still fail fast.
                        done, bad = self._resolve(
                            request,
                            error=DeadlineExceededError(
                                "request deadline expired during the "
                                "per-request fallback"
                            ),
                        )
                        with self._cond:
                            self._deadline_expired += bad
                        completed += done
                        failed += bad
                        continue
                    try:
                        result = self.distiller.distill_one(*request.triple)
                    except Exception as exc:
                        done, bad = self._resolve(request, error=exc)
                    else:
                        done, bad = self._resolve(request, result=result)
                    completed += done
                    failed += bad
        finally:
            if flush_span is not None:
                flush_span.__exit__(None, None, None)
            if token is not None:
                obs_trace.deactivate(token)
        elapsed = time.monotonic() - flush_started
        batch_ok = results is not None
        with self._cond:
            self._completed += completed
            self._failed += failed
            self._flushed += len(batch)
            self.batch_sizes.append(len(batch))
            if batch_ok:
                # Only successful batches inform the Retry-After hint: a
                # failed batch's duration includes the serial per-request
                # fallback, which would skew the EWMA far above the
                # latency a retrying client will actually observe.
                self._ewma_batch_s = (
                    elapsed
                    if not self._ewma_batch_s
                    else _EWMA_ALPHA * elapsed
                    + (1.0 - _EWMA_ALPHA) * self._ewma_batch_s
                )
            if reason == "size":
                self._size_flushes += 1
            else:
                self._timeout_flushes += 1
        on_batch = self.on_batch
        if on_batch is not None:
            on_batch(elapsed, len(batch), reason, batch_ok)

    # ------------------------------------------------------ observability
    def stats(self) -> SchedulerStats:
        with self._cond:
            return SchedulerStats(
                queue_depth=len(self._queue),
                submitted=self._submitted,
                completed=self._completed,
                failed=self._failed,
                batches=len(self.batch_sizes),
                size_flushes=self._size_flushes,
                timeout_flushes=self._timeout_flushes,
                coalesced=self._coalesced,
                shed=self._shed,
                flushed=self._flushed,
                inflight=len(self._inflight),
                ewma_batch_ms=round(1000.0 * self._ewma_batch_s, 3),
                deadline_expired=self._deadline_expired,
            )

    @property
    def alive(self) -> bool:
        """True while the flusher thread is running (healthz ``failing``
        when it is not and the scheduler was never closed)."""
        return self._thread.is_alive()

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    # ------------------------------------------------------------ closing
    def close(self, timeout: float | None = 10.0, drain: bool = True) -> None:
        """Stop accepting requests and join the flusher thread.

        With ``drain=True`` (default) everything already queued still
        flushes through the engine before the thread exits.  With
        ``drain=False`` the queue is abandoned: every queued request (and
        everything coalesced onto it) fails promptly with
        :class:`RuntimeError` — nothing hangs, nothing silently drops.
        A batch already executing completes either way.  Subsequent
        submits raise :class:`RuntimeError`; ``close`` is idempotent.
        """
        abandoned: list[DistillRequest] = []
        with self._cond:
            self._closed = True
            if not drain:
                abandoned = list(self._queue)
                self._queue.clear()
            self._cond.notify_all()
        failed = 0
        for request in abandoned:
            _done, bad = self._resolve(
                request,
                error=RuntimeError(
                    "scheduler closed before this request was flushed"
                ),
            )
            failed += bad
        if failed:
            with self._cond:
                self._failed += failed
        self._thread.join(timeout)

    def __enter__(self) -> "MicroBatchScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
