"""Async micro-batching scheduler for the serving layer.

A long-lived service receives distillation requests one at a time, but
the engine is at its best on *batches*: :class:`~repro.core.batch.BatchDistiller`
dedupes within a batch, memoizes finished triples, groups work by context
paragraph, and fans chunks out to the
:class:`~repro.engine.executor.ParallelExecutor`.  The scheduler bridges
the two worlds: callers submit single requests and get a future back;
a background flusher thread coalesces queued requests into micro-batches
and runs each batch through the distiller.

A batch flushes when either

* ``max_batch_size`` requests are queued (*size flush*), or
* ``max_wait_ms`` has elapsed since the oldest queued request arrived
  (*timeout flush*) — the latency bound a single straggler pays for
  batching.

Requests flush strictly in arrival order (FIFO), so no request can be
starved by later arrivals.  Errors are isolated per request: if a batch
fails, every request in it is retried individually and only the poisoned
ones receive the exception.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field

from repro.core.batch import BatchDistiller
from repro.core.result import DistillationResult

__all__ = ["DistillRequest", "MicroBatchScheduler", "SchedulerStats"]


@dataclass
class DistillRequest:
    """One queued (question, answer, context) distillation."""

    question: str
    answer: str
    context: str
    future: Future = field(
        default_factory=Future, repr=False, compare=False
    )
    enqueued_at: float = field(
        default_factory=time.monotonic, repr=False, compare=False
    )

    @property
    def triple(self) -> tuple[str, str, str]:
        return (self.question, self.answer, self.context)

    def result(self, timeout: float | None = None) -> DistillationResult:
        """Block until the batch containing this request has flushed."""
        return self.future.result(timeout)


@dataclass(frozen=True)
class SchedulerStats:
    """Counters describing the scheduler's batching behaviour so far."""

    queue_depth: int
    submitted: int
    completed: int
    failed: int
    batches: int
    size_flushes: int
    timeout_flushes: int

    @property
    def mean_batch_size(self) -> float:
        done = self.completed + self.failed
        return done / self.batches if self.batches else 0.0

    def to_dict(self) -> dict:
        return {
            "queue_depth": self.queue_depth,
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "batches": self.batches,
            "size_flushes": self.size_flushes,
            "timeout_flushes": self.timeout_flushes,
            "mean_batch_size": self.mean_batch_size,
        }


class MicroBatchScheduler:
    """Coalesces concurrent requests into engine-sized micro-batches.

    Args:
        distiller: the warm :class:`BatchDistiller` every batch runs on.
            The scheduler owns all access to it from its flusher thread,
            so callers never contend on the pipeline itself.
        max_batch_size: flush as soon as this many requests are queued.
        max_wait_ms: flush at the latest this long after the *oldest*
            queued request arrived; ``0`` flushes immediately (no
            batching beyond what is already queued).
    """

    def __init__(
        self,
        distiller: BatchDistiller,
        max_batch_size: int = 16,
        max_wait_ms: float = 5.0,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be at least 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        self.distiller = distiller
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self._queue: deque[DistillRequest] = deque()
        self._cond = threading.Condition()
        self._closed = False
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._size_flushes = 0
        self._timeout_flushes = 0
        self.batch_sizes: list[int] = []
        self._thread = threading.Thread(
            target=self._run, name="gced-scheduler", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------- submit
    def submit(
        self, question: str, answer: str, context: str
    ) -> DistillRequest:
        """Queue one request; returns immediately with its future."""
        request = DistillRequest(question, answer, context)
        with self._cond:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            self._queue.append(request)
            self._submitted += 1
            self._cond.notify_all()
        return request

    def submit_many(
        self, triples: list[tuple[str, str, str]]
    ) -> list[DistillRequest]:
        """Queue several triples atomically, preserving their order."""
        requests = [DistillRequest(*triple) for triple in triples]
        with self._cond:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            self._queue.extend(requests)
            self._submitted += len(requests)
            self._cond.notify_all()
        return requests

    def distill(
        self,
        question: str,
        answer: str,
        context: str,
        timeout: float | None = None,
    ) -> DistillationResult:
        """Submit one request and block for its result."""
        return self.submit(question, answer, context).result(timeout)

    @property
    def queue_depth(self) -> int:
        with self._cond:
            return len(self._queue)

    # -------------------------------------------------------------- flush
    def _run(self) -> None:
        while True:
            batch, reason = self._next_batch()
            if batch is None:
                return
            if batch:
                self._flush(batch, reason)

    def _next_batch(
        self,
    ) -> tuple[list[DistillRequest] | None, str]:
        """Block until a batch is due; ``(None, ...)`` means shut down."""
        with self._cond:
            while not self._queue:
                if self._closed:
                    return None, "closed"
                self._cond.wait()
            deadline = self._queue[0].enqueued_at + self.max_wait_ms / 1000.0
            reason = "timeout"
            while len(self._queue) < self.max_batch_size and not self._closed:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(timeout=remaining)
            if len(self._queue) >= self.max_batch_size:
                reason = "size"
            batch = [
                self._queue.popleft()
                for _ in range(min(len(self._queue), self.max_batch_size))
            ]
            return batch, reason

    def _flush(self, batch: list[DistillRequest], reason: str) -> None:
        try:
            results = self.distiller.distill_many(
                [request.triple for request in batch]
            )
        except Exception:
            # Error isolation: re-run the batch one request at a time so a
            # single poisoned triple cannot fail its batch-mates.
            results = None
        completed = failed = 0
        if results is not None:
            for request, result in zip(batch, results):
                request.future.set_result(result)
                completed += 1
        else:
            for request in batch:
                try:
                    result = self.distiller.distill_one(*request.triple)
                except Exception as exc:
                    request.future.set_exception(exc)
                    failed += 1
                else:
                    request.future.set_result(result)
                    completed += 1
        with self._cond:
            self._completed += completed
            self._failed += failed
            self.batch_sizes.append(len(batch))
            if reason == "size":
                self._size_flushes += 1
            else:
                self._timeout_flushes += 1

    # ------------------------------------------------------ observability
    def stats(self) -> SchedulerStats:
        with self._cond:
            return SchedulerStats(
                queue_depth=len(self._queue),
                submitted=self._submitted,
                completed=self._completed,
                failed=self._failed,
                batches=len(self.batch_sizes),
                size_flushes=self._size_flushes,
                timeout_flushes=self._timeout_flushes,
            )

    # ------------------------------------------------------------ closing
    def close(self, timeout: float | None = 10.0) -> None:
        """Stop accepting requests, drain the queue, and join the thread."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self._thread.join(timeout)

    def __enter__(self) -> "MicroBatchScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
