"""Paged ``/ask`` responses: a stateless cursor over ranked candidates.

A fat ``/ask`` response serializes every distilled candidate in one
monolithic payload — fine for ``k=3``, hostile at large ``k`` or on slow
links.  Paged mode returns a slice of the re-ranked candidate list plus
a **self-contained cursor** encoding ``(question, answer, k, offset,
page_size)``; the next page is requested with the cursor alone.

The cursor is *stateless on purpose*: the server keeps no per-cursor
session, so pages survive server restarts and load-balancer hops.
Fetching a page re-runs the ask, which is cheap and — crucially —
deterministic: distillation results come from the content-keyed memo
(or byte-identical recomputation on a memo miss), and the ranking is a
pure sort of those results, so every page of one logical ask is a slice
of the *same* ordering.  Concatenating all pages therefore reproduces
the fat response exactly.

Cursors are base64url-encoded JSON, not encrypted: they carry exactly
the fields the original request already contained, and tampering at
worst changes which public query the cursor names.  Garbage cursors
raise :class:`ValueError` (the HTTP layer answers 400).
"""

from __future__ import annotations

import base64
import binascii
import json

__all__ = ["decode_cursor", "encode_cursor", "paginate_ask"]

# Bumped if cursor fields ever change shape; decode rejects other versions.
CURSOR_VERSION = 1


def encode_cursor(
    question: str, answer: str, k: int, offset: int, page_size: int
) -> str:
    """Pack a page position into an opaque, URL-safe token."""
    payload = {
        "v": CURSOR_VERSION,
        "q": question,
        "a": answer,
        "k": k,
        "o": offset,
        "s": page_size,
    }
    raw = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return base64.urlsafe_b64encode(raw.encode("utf-8")).decode("ascii")


def decode_cursor(cursor: str) -> dict:
    """Unpack a cursor; raises :class:`ValueError` on anything malformed."""
    try:
        raw = base64.urlsafe_b64decode(cursor.encode("ascii"))
        payload = json.loads(raw)
    except (binascii.Error, UnicodeError, json.JSONDecodeError) as exc:
        raise ValueError(f"malformed cursor: {exc}") from None
    if not isinstance(payload, dict) or payload.get("v") != CURSOR_VERSION:
        raise ValueError("malformed cursor: unknown version")
    question, answer = payload.get("q"), payload.get("a")
    k, offset, size = payload.get("k"), payload.get("o"), payload.get("s")
    if not isinstance(question, str) or not isinstance(answer, str):
        raise ValueError("malformed cursor: missing question/answer")
    for name, value in (("k", k), ("offset", offset), ("page_size", size)):
        if isinstance(value, bool) or not isinstance(value, int) or value < 0:
            raise ValueError(f"malformed cursor: bad {name}")
    if k < 1 or size < 1:
        raise ValueError("malformed cursor: bad k/page_size")
    return {
        "question": question,
        "answer": answer,
        "k": k,
        "offset": offset,
        "page_size": size,
    }


def paginate_ask(
    outcome_dict: dict, k: int, offset: int, page_size: int
) -> dict:
    """Slice a fat ask payload into one page envelope.

    ``outcome_dict`` is :meth:`AskOutcome.to_dict` output.  The envelope
    keeps the summary fields (``question``/``answer``/``retrieved``/
    ``errors``/``best_evidence`` — the best candidate is reported even on
    pages that do not contain it), replaces ``candidates`` with the
    requested slice, and adds a ``page`` block plus ``next_cursor``
    (``None`` on the last page).  An offset at or past the end returns an
    empty page with no cursor rather than an error, so clients can
    blindly follow cursors.
    """
    if page_size < 1:
        raise ValueError("page_size must be at least 1")
    if offset < 0:
        raise ValueError("offset must be non-negative")
    candidates = outcome_dict["candidates"]
    page = candidates[offset : offset + page_size]
    next_offset = offset + len(page)
    next_cursor = (
        encode_cursor(
            outcome_dict["question"],
            outcome_dict["answer"],
            k,
            next_offset,
            page_size,
        )
        if next_offset < len(candidates)
        else None
    )
    return {
        "question": outcome_dict["question"],
        "answer": outcome_dict["answer"],
        "retrieved": outcome_dict["retrieved"],
        "errors": outcome_dict["errors"],
        "best_evidence": outcome_dict["best_evidence"],
        "page": {
            "offset": offset,
            "size": page_size,
            "returned": len(page),
        },
        "candidates": page,
        "next_cursor": next_cursor,
    }
