"""Stdlib JSON-over-HTTP front end for :class:`DistillService`.

No framework, no new runtime dependency: a
:class:`http.server.ThreadingHTTPServer` where each connection gets a
handler thread that parses JSON, submits to the service's micro-batching
scheduler, and blocks for its future.  Concurrent connections therefore
coalesce into engine batches automatically — the server threads are the
producers the scheduler was built for.

Endpoints:

* ``POST /distill`` — body ``{"question", "answer", "context"}``;
  responds with the serialized distillation (see
  :func:`repro.core.serialize.result_to_dict`).
* ``POST /batch`` — body ``{"items": [{...}, ...]}``; responds with
  ``{"results": [...], "errors": n}``, errors isolated per item.
* ``POST /ask`` — body ``{"question", "answer", "k"?}``; open-context:
  retrieves top-k paragraphs from the corpus index, distills each, and
  responds with candidates ranked by hybrid evidence score.  Add
  ``"page_size"`` for a paged response, and follow its ``next_cursor``
  with ``{"cursor": ...}`` bodies for the remaining pages.
* ``POST /ingest`` — body ``{"texts": [...]}``; durably appends
  paragraphs to the live corpus (WAL-fsynced before the 200) and
  responds with the assigned ``doc_ids``.  ``503`` when the service was
  started without an ingest directory.
* ``DELETE /docs/<doc_id>`` — tombstones one document (WAL-durable);
  ``404`` for an unknown or already-deleted id.
* ``GET /healthz`` — liveness probe.
* ``GET /stats`` — per-stage timings, queue/admission counters, cache
  hit rates (see ``docs/operations.md`` for the field reference).
* ``GET /metrics`` — the same counters as Prometheus text exposition
  (see ``docs/observability.md`` for the name reference).
* ``GET /debug/traces`` — the slow-trace exemplar ring, newest first.

Tracing: serving requests (``/distill``, ``/batch``, ``/ask``) may carry
an ``X-Trace-Id`` header to force a trace under that id; otherwise the
service's ``trace_sample`` policy decides.  Traced responses echo the
id in an ``X-Trace-Id`` response header, and traces slower than the
service's ``slow_trace_ms`` land in ``/debug/traces``.  Each finished
request also emits one structured JSON access-log line (trace-id
correlated, rate-limited) on the ``repro.server.access`` logger when
:func:`repro.obs.logs.configure_logging` has been called.

Error modes: invalid input answers ``400``; a known path hit with the
wrong HTTP method answers ``405`` with an ``Allow`` header; only unknown
paths answer ``404``; ``/ask`` without a retriever answers ``503``; a
request shed by admission control (empty client token bucket or full
scheduler queue) answers ``429`` with a ``Retry-After`` header (whole
seconds, rounded up) and ``retry_after_seconds`` (exact float) in the
body.  Clients identify themselves with an ``X-Client-Id`` header;
anonymous requests share one default token bucket.

Deadlines: serving requests may carry ``X-Deadline-Ms``, an end-to-end
budget in milliseconds.  A request whose budget runs out — before it
queues, while queued (failing fast without consuming engine work), or
mid-execution — answers ``504 Gateway Timeout`` with a parseable JSON
body.  A malformed header answers ``400``.

Degradation: while a circuit breaker is open (process pool or
retrieval), responses carry ``degraded: true`` and ``/healthz`` reports
``"degraded"``; a dead scheduler reports ``"failing"`` with status
``503`` so probes restart the process.  Error responses echo
``X-Trace-Id`` exactly like successes, so a failed request can be
correlated with its trace and logs.

Thread safety: ``ThreadingHTTPServer`` gives every connection its own
handler thread; handlers only touch the service's thread-safe surface.
"""

from __future__ import annotations

import json
import math
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import urlsplit

from repro.faults import fault_point
from repro.obs.logs import get_logger
from repro.service.admission import (
    DeadlineExceededError,
    QueueFullError,
    RateLimitedError,
    ShedError,
)
from repro.service.service import DistillService

__all__ = ["DistillHTTPServer", "make_server", "start_server"]

MAX_BODY_BYTES = 8 * 1024 * 1024

# Known paths and the methods they answer; anything else is a 404, a
# known path with the wrong method is a 405 carrying an Allow header.
ROUTES: dict[str, tuple[str, ...]] = {
    "/distill": ("POST",),
    "/batch": ("POST",),
    "/ask": ("POST",),
    "/ingest": ("POST",),
    "/docs": ("DELETE",),
    "/healthz": ("GET",),
    "/stats": ("GET",),
    "/metrics": ("GET",),
    "/debug/traces": ("GET",),
}

# Serving routes get request traces; observability/health probes do not
# (tracing a metrics scrape would pollute the slow-trace ring).
_TRACED_ROUTES = frozenset(("/distill", "/batch", "/ask", "/ingest", "/docs"))

_PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_access_log = get_logger("server.access")
_log = get_logger("server")


class DistillHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the service for its handlers."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        service: DistillService,
        quiet: bool = False,
    ) -> None:
        super().__init__(address, _DistillHandler)
        self.service = service
        self.quiet = quiet


class _DistillHandler(BaseHTTPRequestHandler):
    server: DistillHTTPServer

    # Keep-alive lets benchmark clients reuse connections; every response
    # sets Content-Length so this is safe.
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> DistillService:
        return self.server.service

    # ------------------------------------------------------------ routing
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("DELETE")

    @staticmethod
    def _route_key(path: str) -> str:
        """Collapse parameterized paths to their route for labelling.

        ``/docs/17`` traces and counts as ``/docs`` — metric labels must
        stay low-cardinality no matter how many documents exist.
        """
        if path == "/docs" or path.startswith("/docs/"):
            return "/docs"
        return path

    def _dispatch(self, method: str) -> None:
        """Route one request under telemetry: trace, metrics, access log.

        Serving routes (see ``_TRACED_ROUTES``) open a request trace when
        the service's sampling policy says so — always when the client
        sent ``X-Trace-Id``.  Every request, traced or not, lands in the
        metrics registry and (rate-limited) in the access log.
        """
        started = time.perf_counter()
        path = urlsplit(self.path).path
        route_key = self._route_key(path)
        self._status = 0
        self._shed_reason: str | None = None
        self._trace_id: str | None = None
        telemetry = getattr(self.service, "telemetry", None)
        handle = None
        if telemetry is not None and route_key in _TRACED_ROUTES:
            handle = telemetry.maybe_trace(
                "http.request",
                trace_id=self.headers.get("X-Trace-Id") or None,
                route=route_key,
                method=method,
            )
        if handle is not None:
            self._trace_id = handle.trace_id
            with handle:
                self._route(method, path)
        else:
            self._route(method, path)
        elapsed = time.perf_counter() - started
        if telemetry is not None:
            telemetry.observe_request(
                route=route_key if route_key in ROUTES else "unknown",
                status=self._status,
                seconds=elapsed,
                shed_reason=self._shed_reason,
            )
            if handle is not None:
                handle.tag(status=self._status)
                telemetry.finish_trace(handle)
        log_fields = {
            "method": method,
            "path": path,
            "status": self._status,
            "ms": round(elapsed * 1000.0, 3),
        }
        if self._shed_reason is not None:
            log_fields["shed"] = self._shed_reason
        if self.client_id is not None:
            log_fields["client"] = self.client_id
        if self._trace_id is not None:
            log_fields["trace_id"] = self._trace_id
        _access_log.info("access", fields=log_fields)

    def _route(self, method: str, path: str) -> None:
        try:
            # The HTTP-edge fault-injection site: chaos tests target
            # "http.request" to fail/delay/kill requests at the front
            # door before any service code runs.
            fault_point("http.request", detail=f"{method} {path}")
        except Exception as exc:
            self._send_server_error(exc, where=f"{method} {path}")
            return
        if method == "GET":
            self._route_get(path)
        elif method == "DELETE":
            self._route_delete(path)
        else:
            self._route_post(path)

    def _route_get(self, path: str) -> None:
        if path == "/healthz":
            health = self.service.healthz()
            # "failing" means the flusher thread is gone: answer 503 so
            # liveness probes restart the process.  "degraded" is still
            # 200 — the service is serving, just from a reduced path.
            status = 503 if health.get("status") == "failing" else 200
            self._send_json(status, health)
        elif path == "/stats":
            self._send_json(200, self.service.stats())
        elif path == "/metrics":
            self._send_text(
                200,
                self.service.telemetry.metrics_text(),
                content_type=_PROMETHEUS_CONTENT_TYPE,
            )
        elif path == "/debug/traces":
            self._send_json(200, self.service.telemetry.slow_ring.snapshot())
        elif self._route_key(path) in ROUTES:
            self._send_method_not_allowed(self._route_key(path))
        else:
            self._send_json(404, {"error": f"unknown path {path!r}"})

    def _route_delete(self, path: str) -> None:
        if self._route_key(path) != "/docs":
            if path in ROUTES:
                self._send_method_not_allowed(path)
            else:
                self._send_json(404, {"error": f"unknown path {path!r}"})
            return
        raw_id = path[len("/docs/"):] if path.startswith("/docs/") else ""
        try:
            doc_id = int(raw_id)
        except ValueError:
            self._send_json(
                400, {"error": "DELETE /docs/<doc_id> needs an integer id"}
            )
            return
        self._deadline_ms = None
        self._invoke(
            lambda: self._handle_delete_doc(doc_id), where=f"DELETE {path}"
        )

    def _route_post(self, path: str) -> None:
        handler = {
            "/distill": self._handle_distill,
            "/batch": self._handle_batch,
            "/ask": self._handle_ask,
            "/ingest": self._handle_ingest,
        }.get(path)
        if handler is None:
            # Routing is decided before the body is read, so the
            # keep-alive stream would desync — drop the connection.
            self.close_connection = True
            if self._route_key(path) in ROUTES:
                self._send_method_not_allowed(self._route_key(path))
            else:
                self._send_json(404, {"error": f"unknown path {path!r}"})
            return
        payload = self._read_json()
        if payload is None:
            return
        try:
            self._deadline_ms = self._parse_deadline_ms()
        except ValueError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        self._invoke(lambda: handler(payload), where=f"POST {path}")

    def _invoke(self, call, where: str) -> None:
        """Run a route handler under the shared error → status mapping."""
        try:
            call()
        except ShedError as exc:
            # Load shed: tell the client when to come back.  Retry-After
            # is whole seconds per RFC 9110; the body keeps the float.
            self._shed_reason = (
                "rate_limited"
                if isinstance(exc, RateLimitedError)
                else "queue_full"
                if isinstance(exc, QueueFullError)
                else "shed"
            )
            self._send_json(
                429,
                {
                    "error": str(exc),
                    "retry_after_seconds": exc.retry_after,
                },
                extra_headers={
                    "Retry-After": str(max(1, math.ceil(exc.retry_after)))
                },
            )
        except DeadlineExceededError as exc:
            # The client's X-Deadline-Ms budget ran out: 504, with a
            # parseable body saying where the budget went.
            body: dict = {"error": str(exc)}
            if exc.deadline_ms is not None:
                body["deadline_ms"] = exc.deadline_ms
            if exc.waited_ms is not None:
                body["waited_ms"] = exc.waited_ms
            self._send_json(504, body)
        except ValueError as exc:
            # Invalid inputs (e.g. empty context) are the client's fault.
            self._send_json(400, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover - defensive
            self._send_server_error(exc, where=where)

    def _send_server_error(self, exc: Exception, where: str) -> None:
        """Answer 500 with a structured, stack-carrying error log."""
        _log.error(
            "unhandled error serving request",
            exc_info=True,
            fields={
                "where": where,
                "trace_id": getattr(self, "_trace_id", None),
            },
        )
        self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})

    def _parse_deadline_ms(self) -> float | None:
        """The ``X-Deadline-Ms`` budget, or None; ValueError if garbage."""
        raw = self.headers.get("X-Deadline-Ms")
        if raw is None or not raw.strip():
            return None
        try:
            value = float(raw)
        except ValueError:
            raise ValueError(
                f"X-Deadline-Ms must be a number, got {raw!r}"
            ) from None
        if not math.isfinite(value):
            raise ValueError("X-Deadline-Ms must be finite")
        return value

    def _send_method_not_allowed(self, path: str) -> None:
        allowed = ", ".join(ROUTES[path])
        self._send_json(
            405,
            {"error": f"method not allowed for {path!r}"},
            extra_headers={"Allow": allowed},
        )

    # ----------------------------------------------------------- handlers
    @property
    def client_id(self) -> str | None:
        """The caller's self-declared identity for token-bucket accounting."""
        return self.headers.get("X-Client-Id") or None

    def _handle_distill(self, payload: dict) -> None:
        """``POST /distill``: 200 result; 400 invalid; 429 shed."""
        missing = [
            key
            for key in ("question", "answer", "context")
            if not isinstance(payload.get(key), str)
        ]
        if missing:
            self._send_json(
                400,
                {"error": f"missing string field(s): {', '.join(missing)}"},
            )
            return
        self._send_json(
            200,
            self.service.distill_dict(
                payload["question"],
                payload["answer"],
                payload["context"],
                client_id=self.client_id,
                deadline_ms=self._deadline_ms,
            ),
        )

    def _handle_batch(self, payload: dict) -> None:
        """``POST /batch``: per-item error isolation; shed whole (429)."""
        items = payload.get("items")
        if not isinstance(items, list) or not all(
            isinstance(item, dict) for item in items
        ):
            self._send_json(400, {"error": "'items' must be a list of objects"})
            return
        self._send_json(
            200,
            self.service.distill_batch_dicts(
                items,
                client_id=self.client_id,
                deadline_ms=self._deadline_ms,
            ),
        )

    def _handle_ask(self, payload: dict) -> None:
        """``POST /ask``: fat by default; paged with page_size/cursor.

        503 when the service has no retriever; 400 on malformed cursors
        or fields; 429 when shed.
        """
        cursor = payload.get("cursor")
        if cursor is not None and not isinstance(cursor, str):
            self._send_json(400, {"error": "'cursor' must be a string"})
            return
        missing = [
            key
            for key in ("question", "answer")
            if not isinstance(payload.get(key), str)
        ]
        if missing and cursor is None:
            self._send_json(
                400,
                {"error": f"missing string field(s): {', '.join(missing)}"},
            )
            return
        invalid = [
            key
            for key in ("k", "page_size")
            if payload.get(key) is not None
            and (
                isinstance(payload[key], bool)
                or not isinstance(payload[key], int)
                or payload[key] < 1
            )
        ]
        if invalid:
            self._send_json(
                400,
                {
                    "error": ", ".join(
                        f"'{key}' must be a positive integer" for key in invalid
                    )
                },
            )
            return
        try:
            if cursor is not None or payload.get("page_size") is not None:
                response = self.service.ask_page_dict(
                    payload.get("question"),
                    payload.get("answer"),
                    payload.get("k"),
                    page_size=payload.get("page_size"),
                    cursor=cursor,
                    client_id=self.client_id,
                    deadline_ms=self._deadline_ms,
                )
            else:
                response = self.service.ask_dict(
                    payload["question"],
                    payload["answer"],
                    payload.get("k"),
                    client_id=self.client_id,
                    deadline_ms=self._deadline_ms,
                )
        except ShedError:
            # A RuntimeError subclass, but it means 429 — let the central
            # shed handler in do_POST answer it, not the 503 below.
            raise
        except RuntimeError as exc:
            # No retriever attached: the endpoint is unavailable, not broken.
            self._send_json(503, {"error": str(exc)})
            return
        self._send_json(200, response)

    def _handle_ingest(self, payload: dict) -> None:
        """``POST /ingest``: durable live-corpus appends.

        200 with the assigned doc ids once the WAL is fsynced; 400 on a
        malformed batch; 503 without an ingest plane; 429 when shed.
        """
        texts = payload.get("texts")
        if (
            not isinstance(texts, list)
            or not texts
            or not all(isinstance(text, str) for text in texts)
        ):
            self._send_json(
                400, {"error": "'texts' must be a non-empty list of strings"}
            )
            return
        try:
            response = self.service.ingest_dicts(
                texts, client_id=self.client_id
            )
        except ShedError:
            raise
        except RuntimeError as exc:
            # No ingest plane configured: unavailable, not broken.
            self._send_json(503, {"error": str(exc)})
            return
        self._send_json(200, response)

    def _handle_delete_doc(self, doc_id: int) -> None:
        """``DELETE /docs/<id>``: WAL-durable tombstone; 404 unknown id."""
        try:
            response = self.service.delete_doc_dict(
                doc_id, client_id=self.client_id
            )
        except ShedError:
            raise
        except KeyError:
            self._send_json(404, {"error": f"no live document {doc_id}"})
            return
        except RuntimeError as exc:
            self._send_json(503, {"error": str(exc)})
            return
        self._send_json(200, response)

    # ---------------------------------------------------------- plumbing
    def _read_json(self) -> dict | None:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0 or length > MAX_BODY_BYTES:
            # The body is never read, so the keep-alive stream would be
            # desynchronized — drop the connection with the error.
            self.close_connection = True
            self._send_json(400, {"error": "missing or oversized body"})
            return None
        try:
            payload = json.loads(self.rfile.read(length))
        except (json.JSONDecodeError, UnicodeDecodeError):
            self._send_json(400, {"error": "body is not valid JSON"})
            return None
        if not isinstance(payload, dict):
            self._send_json(400, {"error": "body must be a JSON object"})
            return None
        return payload

    def _send_json(
        self,
        status: int,
        payload: dict,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        self._send_bytes(
            status,
            json.dumps(payload).encode("utf-8"),
            "application/json",
            extra_headers,
        )

    def _send_text(
        self,
        status: int,
        text: str,
        content_type: str = "text/plain; charset=utf-8",
    ) -> None:
        self._send_bytes(status, text.encode("utf-8"), content_type)

    def _send_bytes(
        self,
        status: int,
        body: bytes,
        content_type: str,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        trace_id = getattr(self, "_trace_id", None)
        if trace_id is not None:
            # Echo the (received or assigned) trace id so clients can
            # fish the request out of /debug/traces or their own logs.
            self.send_header("X-Trace-Id", trace_id)
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:
        if not self.server.quiet:
            super().log_message(format, *args)


def make_server(
    service: DistillService,
    host: str = "127.0.0.1",
    port: int = 8080,
    quiet: bool = False,
) -> DistillHTTPServer:
    """Bind (but do not start) the HTTP server for ``service``."""
    return DistillHTTPServer((host, port), service, quiet=quiet)


def start_server(
    service: DistillService,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
) -> tuple[DistillHTTPServer, threading.Thread]:
    """Bind and serve on a background thread (port 0 = ephemeral).

    Used by tests, benchmarks, and ``repro serve --self-test``; call
    ``server.shutdown()`` then ``server.server_close()`` when done.
    """
    server = make_server(service, host, port, quiet=quiet)
    thread = threading.Thread(
        target=server.serve_forever, name="gced-http", daemon=True
    )
    thread.start()
    return server, thread
