"""Admission control for the serving tier: token buckets + shed errors.

Two layers decide whether a request is *admitted* before any engine work
is scheduled:

1. **Per-client token buckets** (:class:`AdmissionController`) — each
   client id (the ``X-Client-Id`` header at the HTTP edge) refills at
   ``rate`` tokens/second up to a ``burst`` ceiling, and anonymous
   requests share one default bucket, so a single hot client cannot
   starve everyone else.  A request's *cost* is the number of engine
   triples it schedules (1 for ``/distill``, ``len(items)`` for
   ``/batch``, ``k`` for a fresh ``/ask``, 1 for a cursor page).
2. **The bounded scheduler queue** — once admitted, a request can still
   be shed by :class:`~repro.service.scheduler.MicroBatchScheduler` when
   its admission queue is at ``max_queue_depth``.

Both layers shed by raising a :class:`ShedError` subclass carrying a
``retry_after`` hint in seconds; the HTTP front end maps any
:class:`ShedError` to ``429 Too Many Requests`` with a ``Retry-After``
header.  Token-bucket hints are exact (time until the bucket holds
enough tokens); queue hints are derived from the observed batch latency.

Thread safety: all public methods are safe to call from any number of
server handler threads; buckets are guarded by one controller lock.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict

__all__ = [
    "AdmissionController",
    "DeadlineExceededError",
    "OverloadedError",
    "QueueFullError",
    "RateLimitedError",
    "ShedError",
    "TokenBucket",
]

# Anonymous requests (no client id) all draw from this shared bucket, so
# unidentified traffic is rate-limited collectively rather than not at all.
DEFAULT_CLIENT = "anonymous"


class ShedError(RuntimeError):
    """A request refused by admission control, with a retry hint.

    Attributes:
        retry_after: seconds the client should wait before retrying.
    """

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = max(0.0, float(retry_after))


class QueueFullError(ShedError):
    """Shed because the scheduler's admission queue is at capacity."""


class RateLimitedError(ShedError):
    """Shed because the client's token bucket is empty."""


# Back-compat alias: the generic name callers catch when they do not care
# which admission layer shed the request.
OverloadedError = ShedError


class DeadlineExceededError(RuntimeError):
    """A request's end-to-end deadline (``X-Deadline-Ms``) expired.

    Not a :class:`ShedError`: the server answers ``504 Gateway Timeout``
    (the budget ran out), not ``429`` (come back later).  Raised at
    submit time when the budget is already spent, by the scheduler when
    a queued request expires before its batch flushes (failing fast
    instead of consuming engine work), and by the waiting handler when
    the budget runs out mid-execution.

    Attributes:
        deadline_ms: the client's original budget, when known.
        waited_ms: how long the request had been in the system.
    """

    def __init__(
        self,
        message: str,
        deadline_ms: float | None = None,
        waited_ms: float | None = None,
    ) -> None:
        super().__init__(message)
        self.deadline_ms = deadline_ms
        self.waited_ms = waited_ms


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second up to ``burst``.

    The bucket starts full.  :meth:`try_acquire` is lock-free (the owning
    :class:`AdmissionController` serializes access); it either debits the
    requested tokens and returns ``0.0``, or leaves the bucket untouched
    and returns the seconds until the debit would succeed.
    """

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst <= 0:
            raise ValueError("burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated = time.monotonic()

    def try_acquire(self, tokens: float = 1.0, now: float | None = None) -> float:
        """Debit ``tokens`` if available; else return the wait in seconds."""
        if now is None:
            now = time.monotonic()
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = now
        if self.tokens >= tokens:
            self.tokens -= tokens
            return 0.0
        # A cost above the burst ceiling can never succeed by waiting; the
        # hint still reports the honest refill time for the shortfall.
        return (tokens - self.tokens) / self.rate


class AdmissionController:
    """Per-client token buckets with a bounded client table.

    Args:
        rate: tokens/second each client's bucket refills at; ``0``
            disables rate limiting entirely (every request is admitted).
        burst: bucket capacity; ``0`` defaults to ``max(1, rate)`` so a
            client can always spend about one second of rate at once.
        max_clients: distinct client buckets kept (LRU-evicted beyond
            this; an evicted client restarts with a full bucket).

    Thread safety: one lock guards the bucket table and every bucket.
    """

    def __init__(
        self,
        rate: float = 0.0,
        burst: float = 0.0,
        max_clients: int = 1024,
    ) -> None:
        if rate < 0:
            raise ValueError("rate must be non-negative")
        if max_clients < 1:
            raise ValueError("max_clients must be at least 1")
        self.rate = float(rate)
        self.burst = float(burst) if burst > 0 else max(1.0, self.rate)
        self.max_clients = max_clients
        self._buckets: OrderedDict[str, TokenBucket] = OrderedDict()
        self._lock = threading.Lock()
        self._admitted = 0
        self._rate_limited = 0

    @property
    def enabled(self) -> bool:
        return self.rate > 0

    def admit(self, client_id: str | None = None, cost: float = 1.0) -> None:
        """Admit or shed one request worth ``cost`` engine triples.

        Raises:
            RateLimitedError: the client's bucket cannot cover ``cost``;
                ``retry_after`` is the exact refill wait.
        """
        if not self.enabled:
            return
        client = client_id or DEFAULT_CLIENT
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst)
                self._buckets[client] = bucket
                while len(self._buckets) > self.max_clients:
                    self._buckets.popitem(last=False)
            else:
                self._buckets.move_to_end(client)
            wait = bucket.try_acquire(cost)
            if wait > 0.0:
                self._rate_limited += 1
                raise RateLimitedError(
                    f"client {client!r} is over its request rate "
                    f"({self.rate:g}/s, burst {self.burst:g}); "
                    f"retry in {wait:.2f}s",
                    retry_after=wait,
                )
            self._admitted += 1

    def stats(self) -> dict:
        """Counters for ``/stats``: admitted/rate-limited totals, clients."""
        with self._lock:
            return {
                "enabled": self.enabled,
                "rate_per_sec": self.rate,
                "burst": self.burst,
                "clients": len(self._buckets),
                "admitted": self._admitted,
                "rate_limited": self._rate_limited,
            }
