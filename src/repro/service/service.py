"""The long-lived serving facade: warm resources + micro-batching.

Every one-shot ``repro`` command pays the full startup cost — dataset or
corpus loading, :class:`~repro.qa.training.QATrainer` fitting, baseline
construction — before distilling a single triple.  A
:class:`DistillService` pays it exactly once: the trained artifacts, the
:class:`~repro.core.pipeline.GCED` pipeline (and therefore its
:class:`~repro.engine.stage.PipelineResources` bundle with the shared
parser/scorer caches), the memoizing
:class:`~repro.core.batch.BatchDistiller`, and the
:class:`~repro.service.scheduler.MicroBatchScheduler` all stay warm for
the lifetime of the process, amortized across every request served.

Concurrency model: any number of threads may call :meth:`distill` /
:meth:`distill_batch` concurrently (the HTTP front end does exactly
that); all pipeline execution is funnelled through the scheduler's single
flusher thread onto the engine executor, so the pipeline itself is never
re-entered from two caller threads.

Admission model: every serving method accepts a ``client_id`` and
charges that client's token bucket (see
:mod:`repro.service.admission`) *before* any engine work is scheduled —
cost 1 for a distill, ``len(items)`` for a batch, ``k`` for a fresh ask,
1 for a cursor page.  An admitted request can still be shed by the
scheduler's bounded queue.  Both layers raise a
:class:`~repro.service.admission.ShedError` subclass carrying
``retry_after`` seconds, which the HTTP front end maps to ``429``.
"""

from __future__ import annotations

import time
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import asdict, dataclass
from typing import Sequence

from repro.core.batch import BatchDistiller
from repro.core.open_context import AskOutcome, build_outcome
from repro.core.pipeline import GCED, DistillationResult
from repro.core.serialize import result_to_dict
from repro.faults import installed as faults_installed
from repro.obs.trace import span as obs_span
from repro.retrieval.fleet import ShardFleet
from repro.retrieval.ingest import IngestManager
from repro.retrieval.retriever import CorpusRetriever
from repro.service.admission import (
    AdmissionController,
    DeadlineExceededError,
)
from repro.service.paging import decode_cursor, paginate_ask
from repro.service.scheduler import DistillRequest, MicroBatchScheduler
from repro.service.telemetry import ServiceTelemetry

__all__ = ["DistillService", "ServiceConfig"]


@dataclass(frozen=True)
class ServiceConfig:
    """Startup configuration for a dataset-backed :class:`DistillService`.

    Attributes:
        dataset: synthetic dataset key the corpus is drawn from.
        seed / n_train / n_dev: dataset generation parameters.
        workers: engine executor pool size (1 = serial flushes).
        backend: ``"thread"`` or ``"process"`` executor backend.
        cache_size: memoized finished results kept by the distiller.
        max_batch_size / max_wait_ms: micro-batching flush policy.
        max_queue_depth: scheduler admission bound — submits past this
            many pending requests are shed with 429/Retry-After
            (``0`` = unbounded admission, the pre-hardening behaviour).
        client_rate: per-client token-bucket refill, engine triples per
            second (``0`` disables rate limiting).
        client_burst: token-bucket capacity (``0`` = ``max(1, rate)``).
        retrieval_shards: inverted-index shard count for ``/ask``.
        top_k: default number of paragraphs an ask considers.
        trace_sample: fraction of HTTP requests that get a full trace
            (deterministic every-Nth sampling, never random; ``0``
            disables tracing, requests with ``X-Trace-Id`` always trace).
        slow_trace_ms: traces at/above this duration enter the
            ``/debug/traces`` exemplar ring.
        breaker_failures: consecutive failures that trip the process-pool
            and retrieval circuit breakers open (degraded mode).
        breaker_reset_s: cooldown before an open breaker admits a
            half-open trial call.
        ingest_dir: durable live-ingest directory (WAL + segment).  Empty
            disables the write path (``POST /ingest`` answers 503).
        compact_every: fold the WAL into a fresh segment after this many
            applied operations (``0`` = only explicit compaction).
        fleet: serve searches through a supervised per-shard worker
            fleet (scatter-gather with restart + degrade-to-survivors)
            instead of inline scoring.
    """

    dataset: str = "squad11"
    seed: int = 0
    n_train: int = 100
    n_dev: int = 60
    workers: int = 1
    backend: str = "thread"
    cache_size: int = 4096
    max_batch_size: int = 16
    max_wait_ms: float = 5.0
    max_queue_depth: int = 256
    client_rate: float = 0.0
    client_burst: float = 0.0
    retrieval_shards: int = 4
    top_k: int = 3
    trace_sample: float = 1.0
    slow_trace_ms: float = 250.0
    breaker_failures: int = 3
    breaker_reset_s: float = 30.0
    ingest_dir: str = ""
    compact_every: int = 0
    fleet: bool = False

    def to_dict(self) -> dict:
        return asdict(self)


class DistillService:
    """Serves GCED distillations from warm, request-shared resources.

    Build one with :meth:`build` (from a synthetic dataset key) or
    :meth:`from_corpus` (from raw context paragraphs), or pass a
    pre-configured :class:`GCED` directly.

    Thread safety: every serving method may be called from any number of
    threads concurrently; admission, scheduling, and the distiller's
    memo are internally locked, and the pipeline only ever runs on the
    scheduler's flusher thread.
    """

    def __init__(
        self,
        gced: GCED,
        *,
        workers: int = 1,
        backend: str = "thread",
        cache_size: int = 4096,
        max_batch_size: int = 16,
        max_wait_ms: float = 5.0,
        max_queue_depth: int = 256,
        client_rate: float = 0.0,
        client_burst: float = 0.0,
        corpus_info: str = "custom",
        config: ServiceConfig | None = None,
        retriever: CorpusRetriever | None = None,
        top_k: int = 3,
        trace_sample: float = 1.0,
        slow_trace_ms: float = 250.0,
        breaker_failures: int = 3,
        breaker_reset_s: float = 30.0,
        ingest_dir: str = "",
        compact_every: int = 0,
        fleet: bool = False,
    ) -> None:
        self.gced = gced
        self.corpus_info = corpus_info
        self.retriever = retriever
        self.top_k = top_k
        # Only the serving knobs are authoritative here; dataset-shape
        # fields (seed, n_train, n_dev) are honest solely when a full
        # config travels in from build()/from_corpus().
        self.config = config or ServiceConfig(
            dataset=corpus_info,
            seed=-1,
            n_train=0,
            n_dev=0,
            workers=workers,
            backend=backend,
            cache_size=cache_size,
            max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms,
            max_queue_depth=max_queue_depth,
            client_rate=client_rate,
            client_burst=client_burst,
            trace_sample=trace_sample,
            slow_trace_ms=slow_trace_ms,
            breaker_failures=breaker_failures,
            breaker_reset_s=breaker_reset_s,
            ingest_dir=ingest_dir,
            compact_every=compact_every,
            fleet=fleet,
        )
        self.admission = AdmissionController(
            rate=self.config.client_rate, burst=self.config.client_burst
        )
        # Durable write path.  Wired *before* the distiller so the
        # pipeline snapshot (built at distiller construction for process
        # backends) already carries the mutable, WAL-recovered index.
        self.ingest: IngestManager | None = None
        if self.config.ingest_dir and self.retriever is not None:
            self.ingest = IngestManager.open(
                self.config.ingest_dir,
                seed_index=self.retriever.index,
                compact_every=self.config.compact_every,
                on_compact=self._on_compact,
            )
            self.retriever.index = self.ingest.index
        if self.retriever is not None and gced.retriever is None:
            # Ship the index through the pipeline-snapshot plane so
            # post-compaction refreshes re-hydrate pool workers in place.
            gced.retriever = self.retriever
        self.distiller = BatchDistiller(
            gced,
            cache_size=cache_size,
            workers=workers,
            backend=backend,
            breaker_failures=self.config.breaker_failures,
            breaker_reset_s=self.config.breaker_reset_s,
        )
        if self.retriever is not None:
            # The retriever is usually built before the service exists;
            # align its breaker thresholds with the serving config.
            self.retriever.breaker.failure_threshold = (
                self.config.breaker_failures
            )
            self.retriever.breaker.reset_after_s = self.config.breaker_reset_s
        # Supervised shard fleet (opt-in).  Wraps the index *after* the
        # ingest plane swapped in its mutable wrapper; compaction rebases
        # that wrapper in place, so the fleet's reference stays live.
        self.fleet: ShardFleet | None = None
        if self.config.fleet and self.retriever is not None:
            self.fleet = ShardFleet(
                self.retriever.index,
                scorer=self.retriever.scorer,
                breaker_failures=self.config.breaker_failures,
                breaker_reset_s=self.config.breaker_reset_s,
            )
            self.retriever.attach_fleet(self.fleet)
        self.scheduler = MicroBatchScheduler(
            self.distiller,
            max_batch_size=self.config.max_batch_size,
            max_wait_ms=self.config.max_wait_ms,
            max_queue_depth=self.config.max_queue_depth,
        )
        self.dataset = None  # set by build()
        self._started = time.monotonic()
        self.telemetry = ServiceTelemetry(
            self,
            trace_sample=self.config.trace_sample,
            slow_trace_ms=self.config.slow_trace_ms,
        )

    # ------------------------------------------------------- construction
    @classmethod
    def build(cls, config: ServiceConfig | None = None) -> "DistillService":
        """Train artifacts on a synthetic dataset and wire the service."""
        from repro.datasets.loader import load_dataset
        from repro.qa.training import QATrainer

        config = config or ServiceConfig()
        dataset = load_dataset(
            config.dataset,
            seed=config.seed,
            n_train=config.n_train,
            n_dev=config.n_dev,
        )
        corpus = list(dataset.contexts())
        artifacts = QATrainer(seed=config.seed).train(corpus)
        gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        retriever = CorpusRetriever.build(
            corpus,
            n_shards=config.retrieval_shards,
            workers=config.workers,
            backend=config.backend,
            metadata={"dataset": config.dataset, "seed": config.seed},
        )
        service = cls(
            gced,
            workers=config.workers,
            backend=config.backend,
            cache_size=config.cache_size,
            max_batch_size=config.max_batch_size,
            max_wait_ms=config.max_wait_ms,
            corpus_info=config.dataset,
            config=config,
            retriever=retriever,
            top_k=config.top_k,
        )
        service.dataset = dataset
        return service

    @classmethod
    def from_corpus(
        cls,
        corpus: Sequence[str],
        *,
        seed: int = 0,
        corpus_info: str = "corpus",
        **kwargs,
    ) -> "DistillService":
        """Train artifacts on raw context paragraphs and wire the service."""
        from repro.qa.training import QATrainer

        corpus = list(corpus)
        artifacts = QATrainer(seed=seed).train(corpus)
        gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        # Not setdefault: building the index is O(corpus) work that must
        # not happen when the caller brings their own retriever (or None).
        if "retriever" not in kwargs:
            kwargs["retriever"] = CorpusRetriever.build(
                corpus, metadata={"dataset": corpus_info, "seed": seed}
            )
        config = ServiceConfig(
            dataset=corpus_info,
            seed=seed,
            n_train=len(corpus),
            n_dev=0,
            **{
                key: kwargs[key]
                for key in (
                    "workers",
                    "backend",
                    "cache_size",
                    "max_batch_size",
                    "max_wait_ms",
                    "max_queue_depth",
                    "client_rate",
                    "client_burst",
                    "trace_sample",
                    "slow_trace_ms",
                    "breaker_failures",
                    "breaker_reset_s",
                    "ingest_dir",
                    "compact_every",
                    "fleet",
                )
                if key in kwargs
            },
        )
        return cls(gced, corpus_info=corpus_info, config=config, **kwargs)

    # ------------------------------------------------------------ serving
    @staticmethod
    def _deadline(deadline_ms: float | None) -> float | None:
        """Client budget (``X-Deadline-Ms``) → absolute monotonic instant.

        A non-positive budget maps to *now*: it fails fast at submit
        rather than raising ``ValueError`` (the client named a budget;
        the honest answer is that it is already spent).
        """
        if deadline_ms is None:
            return None
        return time.monotonic() + max(0.0, float(deadline_ms)) / 1000.0

    @staticmethod
    def _await(
        request: DistillRequest,
        timeout: float | None,
        deadline: float | None,
    ) -> DistillationResult:
        """Wait for ``request``, bounding the wait by the deadline too.

        A deadline that runs out mid-execution surfaces as
        :class:`DeadlineExceededError` (→ 504), never a bare futures
        timeout.
        """
        if deadline is not None:
            remaining = deadline - time.monotonic()
            timeout = remaining if timeout is None else min(timeout, remaining)
            timeout = max(0.0, timeout)
        try:
            return request.result(timeout)
        except FuturesTimeoutError:
            if deadline is not None and time.monotonic() >= deadline:
                raise DeadlineExceededError(
                    "request deadline expired while waiting for the result"
                ) from None
            raise

    def distill(
        self,
        question: str,
        answer: str,
        context: str,
        timeout: float | None = None,
        client_id: str | None = None,
        deadline_ms: float | None = None,
    ) -> DistillationResult:
        """Distill one triple through the micro-batching scheduler.

        Identical concurrent requests coalesce onto one computation.
        ``deadline_ms`` is the request's end-to-end budget: once spent,
        the request fails with :class:`DeadlineExceededError` — at
        submit, while queued (before consuming engine work), or while
        waiting on the result.

        Raises:
            RateLimitedError: ``client_id``'s token bucket is empty.
            QueueFullError: the scheduler's admission queue is full.
            DeadlineExceededError: the ``deadline_ms`` budget ran out.
            ValueError: invalid inputs (e.g. blank context).
        """
        deadline = self._deadline(deadline_ms)
        with obs_span("admission.admit", cost=1.0):
            self.admission.admit(client_id, cost=1.0)
        request = self.scheduler.submit(
            question, answer, context, deadline=deadline
        )
        with obs_span("scheduler.wait"):
            return self._await(request, timeout, deadline)

    def distill_dict(
        self,
        question: str,
        answer: str,
        context: str,
        client_id: str | None = None,
        deadline_ms: float | None = None,
    ) -> dict:
        """JSON-safe single distillation, as served by ``/distill``."""
        result = self.distill(
            question,
            answer,
            context,
            client_id=client_id,
            deadline_ms=deadline_ms,
        )
        payload = result_to_dict(result, question, answer)
        return self._mark_degraded(payload)

    def submit(
        self, question: str, answer: str, context: str
    ) -> DistillRequest:
        """Fire-and-forget submission; returns the pending request.

        Bypasses token buckets (there is no client), but not the
        scheduler's queue bound — may raise :class:`QueueFullError`.
        """
        return self.scheduler.submit(question, answer, context)

    def distill_batch(
        self,
        triples: list[tuple[str, str, str]],
        timeout: float | None = None,
        client_id: str | None = None,
        deadline_ms: float | None = None,
    ) -> list[DistillationResult | Exception]:
        """Distill many triples; failures come back per-item, not raised.

        The returned list is aligned with ``triples``; a poisoned triple
        yields its exception object while its batch-mates still yield
        results (the scheduler's error-isolation contract).  Admission is
        all-or-nothing and charged at ``len(triples)`` tokens: a shed
        batch raises (it never partially enqueues).  ``deadline_ms``
        applies to the whole batch; expired items come back as
        :class:`DeadlineExceededError` entries.
        """
        deadline = self._deadline(deadline_ms)
        cost = float(len(triples)) or 1.0
        with obs_span("admission.admit", cost=cost):
            self.admission.admit(client_id, cost=cost)
        requests = self.scheduler.submit_many(triples, deadline=deadline)
        outcomes: list[DistillationResult | Exception] = []
        with obs_span("scheduler.wait", n=len(requests)):
            for request in requests:
                try:
                    outcomes.append(self._await(request, timeout, deadline))
                except Exception as exc:
                    outcomes.append(exc)
        return outcomes

    # ------------------------------------------------------- open context
    def ask(
        self,
        question: str,
        answer: str,
        k: int | None = None,
        timeout: float | None = None,
        client_id: str | None = None,
        deadline_ms: float | None = None,
    ) -> AskOutcome:
        """Open-context distillation: retrieve top-k, distill, re-rank.

        Every candidate paragraph is submitted through the micro-batching
        scheduler, so one ask's candidates coalesce into engine batches
        with whatever else is in flight (and identical concurrent asks
        share one computation per candidate).  Per-candidate failures are
        isolated (a failed paragraph ranks last with its error recorded)
        rather than failing the ask.  Charged at ``k`` tokens.

        Raises:
            RuntimeError: the service has no retriever attached.
            RateLimitedError / QueueFullError: shed by admission control.
        """
        if k is None:
            k = self.top_k
        deadline = self._deadline(deadline_ms)
        with obs_span("admission.admit", cost=float(k)):
            self.admission.admit(client_id, cost=float(k))
        return self._ask_outcome(question, answer, k, timeout, deadline)

    def _ask_outcome(
        self,
        question: str,
        answer: str,
        k: int,
        timeout: float | None = None,
        deadline: float | None = None,
    ) -> AskOutcome:
        """The retrieve -> distill -> re-rank body, past admission."""
        if self.retriever is None:
            raise RuntimeError(
                "service has no retriever; build it from a dataset/corpus "
                "or pass retriever= explicitly"
            )
        hits = self.retriever.retrieve_for_qa(question, answer, k=k)
        results: list[DistillationResult | Exception] = []
        if hits:
            requests = self.scheduler.submit_many(
                [(question, answer, hit.text) for hit in hits],
                deadline=deadline,
            )
            with obs_span("scheduler.wait", n=len(requests)):
                for request in requests:
                    try:
                        results.append(
                            self._await(request, timeout, deadline)
                        )
                    except Exception as exc:
                        results.append(exc)
        return build_outcome(question, answer, hits, results)

    def ask_dict(
        self,
        question: str,
        answer: str,
        k: int | None = None,
        client_id: str | None = None,
        deadline_ms: float | None = None,
    ) -> dict:
        """JSON-safe open-context ask, as served by fat-mode ``/ask``."""
        outcome = self.ask(
            question,
            answer,
            k,
            client_id=client_id,
            deadline_ms=deadline_ms,
        )
        return self._mark_degraded(outcome.to_dict())

    def ask_page_dict(
        self,
        question: str | None = None,
        answer: str | None = None,
        k: int | None = None,
        page_size: int | None = None,
        cursor: str | None = None,
        client_id: str | None = None,
        deadline_ms: float | None = None,
    ) -> dict:
        """One page of an open-context ask, as served by paged ``/ask``.

        Two entry points: a *fresh* paged ask names ``question`` /
        ``answer`` (+ optional ``k``) with a ``page_size``; a
        *continuation* passes the previous page's ``cursor`` (which
        carries the query and offset; ``page_size`` may override the
        cursor's).  Cursors are stateless — the ask re-runs and slices,
        with the distiller's content-keyed memo making continuation
        pages cheap (they are charged 1 token vs ``k`` for a fresh ask)
        and the deterministic ranking making every page a slice of the
        same ordering.

        Raises:
            ValueError: malformed cursor, or missing question/answer on
                a fresh paged ask, or ``page_size < 1``.
            RateLimitedError / QueueFullError: shed by admission control.
        """
        if cursor is not None:
            position = decode_cursor(cursor)
            question = position["question"]
            answer = position["answer"]
            k = position["k"]
            offset = position["offset"]
            page_size = page_size or position["page_size"]
            cost = 1.0
        else:
            if question is None or answer is None:
                raise ValueError(
                    "paged ask needs question and answer (or a cursor)"
                )
            if page_size is None:
                raise ValueError("paged ask needs page_size (or a cursor)")
            k = k if k is not None else self.top_k
            offset = 0
            cost = float(k)
        if page_size < 1:
            raise ValueError("page_size must be at least 1")
        deadline = self._deadline(deadline_ms)
        with obs_span("admission.admit", cost=cost):
            self.admission.admit(client_id, cost=cost)
        outcome = self._ask_outcome(question, answer, k, deadline=deadline)
        page = paginate_ask(outcome.to_dict(), k, offset, page_size)
        return self._mark_degraded(page)

    def distill_batch_dicts(
        self,
        items: list[dict],
        timeout: float | None = None,
        client_id: str | None = None,
        deadline_ms: float | None = None,
    ) -> dict:
        """JSON-safe batch distillation, as served by ``/batch``."""
        triples = [
            (
                str(item.get("question", "")),
                str(item.get("answer", "")),
                str(item.get("context", "")),
            )
            for item in items
        ]
        outcomes = self.distill_batch(
            triples, timeout, client_id=client_id, deadline_ms=deadline_ms
        )
        results = []
        errors = 0
        for (question, answer, _context), outcome in zip(triples, outcomes):
            if isinstance(outcome, Exception):
                errors += 1
                results.append({"error": str(outcome) or type(outcome).__name__})
            else:
                results.append(result_to_dict(outcome, question, answer))
        return self._mark_degraded({"results": results, "errors": errors})

    # ------------------------------------------------------- live corpus
    def _on_compact(self, generation: int) -> None:
        """Post-compaction hook: push the fresh corpus to pool workers.

        ``refresh_snapshot`` rebuilds the pipeline snapshot at a bumped
        generation and broadcasts it to the *existing* worker pool (no
        respawn); callers without a process pool get a cheap no-op.
        Exceptions are swallowed by the ingest manager — a failed refresh
        never rolls back a committed compaction.
        """
        self.distiller.refresh_snapshot()

    def ingest_dicts(
        self, texts: Sequence[str], client_id: str | None = None
    ) -> dict:
        """Durably add paragraphs to the live corpus (``POST /ingest``).

        The documents are WAL-appended and fsynced before they are
        applied to the in-memory index — once this returns, the writes
        survive a crash at any point.  Charged at ``len(texts)`` tokens.

        Raises:
            RuntimeError: the service was started without ``ingest_dir``.
            ValueError: empty batch or blank/non-string document.
            RateLimitedError: ``client_id``'s token bucket is empty.
        """
        if self.ingest is None:
            raise RuntimeError(
                "service has no ingest plane; start with ingest_dir"
            )
        cost = float(len(texts)) or 1.0
        with obs_span("admission.admit", cost=cost):
            self.admission.admit(client_id, cost=cost)
        doc_ids = self.ingest.add_documents(list(texts))
        return self._mark_degraded(
            {
                "doc_ids": doc_ids,
                "live_docs": self.ingest.index.n_docs,
                "generation": self.ingest.generation,
            }
        )

    def delete_doc_dict(
        self, doc_id: int, client_id: str | None = None
    ) -> dict:
        """Tombstone one document (``DELETE /docs/<id>``).

        The delete is WAL-durable before it takes effect; the doc id is
        never reused.  Raises :class:`KeyError` for an unknown or
        already-deleted id (the HTTP front end maps it to 404).
        """
        if self.ingest is None:
            raise RuntimeError(
                "service has no ingest plane; start with ingest_dir"
            )
        with obs_span("admission.admit", cost=1.0):
            self.admission.admit(client_id, cost=1.0)
        self.ingest.delete_document(int(doc_id))
        return self._mark_degraded(
            {
                "deleted": int(doc_id),
                "live_docs": self.ingest.index.n_docs,
                "generation": self.ingest.generation,
            }
        )

    # ------------------------------------------------------ observability
    @property
    def uptime_seconds(self) -> float:
        return time.monotonic() - self._started

    @property
    def degraded(self) -> bool:
        """True while any circuit breaker is open/half-open: the service
        is still answering, but from a reduced path (serial coordinator
        execution and/or reduced-shard retrieval)."""
        if self.distiller.degraded:
            return True
        if self.fleet is not None and self.fleet.degraded:
            return True
        return self.retriever is not None and self.retriever.degraded

    def _mark_degraded(self, payload: dict) -> dict:
        """Stamp ``degraded: true`` on a response served degraded.

        Healthy responses are untouched — byte-identical to what the
        service returned before breakers existed (the determinism
        contract the self-test compares against).
        """
        if self.degraded:
            payload["degraded"] = True
        return payload

    def healthz(self) -> dict:
        """Liveness + degradation: ``ok`` | ``degraded`` | ``failing``.

        ``failing`` means the scheduler's flusher thread is gone (the
        service cannot serve at all — the probe should restart it);
        ``degraded`` means a breaker is open and requests are served
        from a reduced path.
        """
        alive = self.scheduler.alive or self.scheduler.closed
        if not alive:
            status = "failing"
        elif self.degraded:
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "uptime_seconds": self.uptime_seconds,
            "degraded": self.degraded,
            "checks": {
                "scheduler_alive": alive,
                "pool_breaker": self.distiller.pool_breaker.state,
                "retrieval_breaker": (
                    self.retriever.breaker.state
                    if self.retriever is not None
                    else None
                ),
                "fleet_degraded": (
                    self.fleet.degraded if self.fleet is not None else None
                ),
            },
        }

    def stats(self) -> dict:
        """Everything ``/stats`` reports: config, queue, timings, caches.

        ``stages`` carries the per-stage wall-clock the engine's
        :class:`~repro.engine.instrumentation.PipelineProfile` collected;
        ``caches`` the hit rates of the shared parser/scorer caches plus
        the distiller's ``results`` memo; ``scheduler`` the micro-batching
        counters including the live queue depth, coalescing, and shed
        counts; ``admission`` the per-client token-bucket counters.  See
        ``docs/operations.md`` for the field-by-field reference.
        """
        batch_stats = self.distiller.stats()
        profile = batch_stats.profile.to_dict()
        compiler = self.gced.compiler
        compiled_block = None
        if compiler is not None:
            snap = compiler.snapshot()
            compiled_block = {
                "contexts": snap.size,
                "bytes": snap.bytes,
                "hits": snap.hits,
                "misses": snap.misses,
                "hit_rate": (
                    snap.hits / (snap.hits + snap.misses)
                    if snap.hits + snap.misses
                    else 0.0
                ),
            }
        return {
            "service": {
                "corpus": self.corpus_info,
                "uptime_seconds": self.uptime_seconds,
                "config": self.config.to_dict(),
                # The per-paragraph compiled-artifact cache every QA
                # prediction draws on (None for QA models without one).
                "compiled_contexts": compiled_block,
                "retrieval": (
                    {
                        "docs": self.retriever.index.n_docs,
                        "terms": self.retriever.index.n_terms,
                        "shards": self.retriever.n_shards,
                        "scorer": self.retriever.scorer.name,
                        "top_k": self.top_k,
                    }
                    if self.retriever is not None
                    else None
                ),
            },
            "admission": self.admission.stats(),
            "scheduler": self.scheduler.stats().to_dict(),
            # Fault-tolerance plane: breaker states, degraded counters,
            # pool crash-recovery stats, and the installed fault plan
            # (None unless REPRO_FAULTS injection is active).
            "faults": {
                "degraded": self.degraded,
                "pool": self.distiller.recovery_info(),
                "retrieval": (
                    self.retriever.recovery_info()
                    if self.retriever is not None
                    else None
                ),
                "plan": (
                    faults_installed().stats()
                    if faults_installed() is not None
                    else None
                ),
            },
            # Pipeline-snapshot plane (None unless the distiller runs
            # snapshot-spawned process workers): build cost, segment
            # size, per-worker load times, and hydration hit rate.
            "snapshot": self.distiller.snapshot_info(),
            # Durable live-corpus plane (None without ingest_dir): WAL
            # bytes, tombstones, compaction generation, replay counters.
            "ingest": (
                self.ingest.stats() if self.ingest is not None else None
            ),
            # Supervised shard-fleet plane (None unless fleet serving is
            # on): per-worker health, restarts, and breaker states.
            "fleet": self.fleet.stats() if self.fleet is not None else None,
            "batch": {
                "n_distilled": batch_stats.n_distilled,
                "n_cache_hits": batch_stats.n_cache_hits,
                "total_seconds": batch_stats.total_seconds,
                "mean_ms": batch_stats.mean_ms,
                "mean_reduction": batch_stats.mean_reduction,
            },
            "stages": profile["stages"],
            "counters": profile["counters"],
            "caches": profile["caches"],
            "obs": self.telemetry.stats_block(),
        }

    # ------------------------------------------------------------ closing
    def close(self, drain: bool = True) -> None:
        """Shut down: drain (or fail, with ``drain=False``) queued
        requests, then stop the executor pool.  Idempotent."""
        self.scheduler.close(drain=drain)
        self.distiller.close()
        if self.fleet is not None:
            self.fleet.close()
        if self.ingest is not None:
            self.ingest.close()

    def __enter__(self) -> "DistillService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
