"""The long-lived serving facade: warm resources + micro-batching.

Every one-shot ``repro`` command pays the full startup cost — dataset or
corpus loading, :class:`~repro.qa.training.QATrainer` fitting, baseline
construction — before distilling a single triple.  A
:class:`DistillService` pays it exactly once: the trained artifacts, the
:class:`~repro.core.pipeline.GCED` pipeline (and therefore its
:class:`~repro.engine.stage.PipelineResources` bundle with the shared
parser/scorer caches), the memoizing
:class:`~repro.core.batch.BatchDistiller`, and the
:class:`~repro.service.scheduler.MicroBatchScheduler` all stay warm for
the lifetime of the process, amortized across every request served.

Concurrency model: any number of threads may call :meth:`distill` /
:meth:`distill_batch` concurrently (the HTTP front end does exactly
that); all pipeline execution is funnelled through the scheduler's single
flusher thread onto the engine executor, so the pipeline itself is never
re-entered from two caller threads.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Sequence

from repro.core.batch import BatchDistiller
from repro.core.pipeline import GCED, DistillationResult
from repro.core.serialize import result_to_dict
from repro.service.scheduler import DistillRequest, MicroBatchScheduler

__all__ = ["DistillService", "ServiceConfig"]


@dataclass(frozen=True)
class ServiceConfig:
    """Startup configuration for a dataset-backed :class:`DistillService`.

    Attributes:
        dataset: synthetic dataset key the corpus is drawn from.
        seed / n_train / n_dev: dataset generation parameters.
        workers: engine executor pool size (1 = serial flushes).
        backend: ``"thread"`` or ``"process"`` executor backend.
        cache_size: memoized finished results kept by the distiller.
        max_batch_size / max_wait_ms: micro-batching flush policy.
    """

    dataset: str = "squad11"
    seed: int = 0
    n_train: int = 100
    n_dev: int = 60
    workers: int = 1
    backend: str = "thread"
    cache_size: int = 4096
    max_batch_size: int = 16
    max_wait_ms: float = 5.0

    def to_dict(self) -> dict:
        return asdict(self)


class DistillService:
    """Serves GCED distillations from warm, request-shared resources.

    Build one with :meth:`build` (from a synthetic dataset key) or
    :meth:`from_corpus` (from raw context paragraphs), or pass a
    pre-configured :class:`GCED` directly.
    """

    def __init__(
        self,
        gced: GCED,
        *,
        workers: int = 1,
        backend: str = "thread",
        cache_size: int = 4096,
        max_batch_size: int = 16,
        max_wait_ms: float = 5.0,
        corpus_info: str = "custom",
        config: ServiceConfig | None = None,
    ) -> None:
        self.gced = gced
        self.corpus_info = corpus_info
        # Only the serving knobs are authoritative here; dataset-shape
        # fields (seed, n_train, n_dev) are honest solely when a full
        # config travels in from build()/from_corpus().
        self.config = config or ServiceConfig(
            dataset=corpus_info,
            seed=-1,
            n_train=0,
            n_dev=0,
            workers=workers,
            backend=backend,
            cache_size=cache_size,
            max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms,
        )
        self.distiller = BatchDistiller(
            gced, cache_size=cache_size, workers=workers, backend=backend
        )
        self.scheduler = MicroBatchScheduler(
            self.distiller,
            max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms,
        )
        self.dataset = None  # set by build()
        self._started = time.monotonic()

    # ------------------------------------------------------- construction
    @classmethod
    def build(cls, config: ServiceConfig | None = None) -> "DistillService":
        """Train artifacts on a synthetic dataset and wire the service."""
        from repro.datasets.loader import load_dataset
        from repro.qa.training import QATrainer

        config = config or ServiceConfig()
        dataset = load_dataset(
            config.dataset,
            seed=config.seed,
            n_train=config.n_train,
            n_dev=config.n_dev,
        )
        artifacts = QATrainer(seed=config.seed).train(dataset.contexts())
        gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        service = cls(
            gced,
            workers=config.workers,
            backend=config.backend,
            cache_size=config.cache_size,
            max_batch_size=config.max_batch_size,
            max_wait_ms=config.max_wait_ms,
            corpus_info=config.dataset,
            config=config,
        )
        service.dataset = dataset
        return service

    @classmethod
    def from_corpus(
        cls,
        corpus: Sequence[str],
        *,
        seed: int = 0,
        corpus_info: str = "corpus",
        **kwargs,
    ) -> "DistillService":
        """Train artifacts on raw context paragraphs and wire the service."""
        from repro.qa.training import QATrainer

        corpus = list(corpus)
        artifacts = QATrainer(seed=seed).train(corpus)
        gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
        config = ServiceConfig(
            dataset=corpus_info,
            seed=seed,
            n_train=len(corpus),
            n_dev=0,
            **{
                key: kwargs[key]
                for key in (
                    "workers",
                    "backend",
                    "cache_size",
                    "max_batch_size",
                    "max_wait_ms",
                )
                if key in kwargs
            },
        )
        return cls(gced, corpus_info=corpus_info, config=config, **kwargs)

    # ------------------------------------------------------------ serving
    def distill(
        self,
        question: str,
        answer: str,
        context: str,
        timeout: float | None = None,
    ) -> DistillationResult:
        """Distill one triple through the micro-batching scheduler."""
        return self.scheduler.distill(question, answer, context, timeout)

    def distill_dict(
        self, question: str, answer: str, context: str
    ) -> dict:
        """JSON-safe single distillation, as served by ``/distill``."""
        result = self.distill(question, answer, context)
        return result_to_dict(result, question, answer)

    def submit(
        self, question: str, answer: str, context: str
    ) -> DistillRequest:
        """Fire-and-forget submission; returns the pending request."""
        return self.scheduler.submit(question, answer, context)

    def distill_batch(
        self,
        triples: list[tuple[str, str, str]],
        timeout: float | None = None,
    ) -> list[DistillationResult | Exception]:
        """Distill many triples; failures come back per-item, not raised.

        The returned list is aligned with ``triples``; a poisoned triple
        yields its exception object while its batch-mates still yield
        results (the scheduler's error-isolation contract).
        """
        requests = self.scheduler.submit_many(triples)
        outcomes: list[DistillationResult | Exception] = []
        for request in requests:
            try:
                outcomes.append(request.result(timeout))
            except Exception as exc:
                outcomes.append(exc)
        return outcomes

    def distill_batch_dicts(
        self, items: list[dict], timeout: float | None = None
    ) -> dict:
        """JSON-safe batch distillation, as served by ``/batch``."""
        triples = [
            (
                str(item.get("question", "")),
                str(item.get("answer", "")),
                str(item.get("context", "")),
            )
            for item in items
        ]
        outcomes = self.distill_batch(triples, timeout)
        results = []
        errors = 0
        for (question, answer, _context), outcome in zip(triples, outcomes):
            if isinstance(outcome, Exception):
                errors += 1
                results.append({"error": str(outcome) or type(outcome).__name__})
            else:
                results.append(result_to_dict(outcome, question, answer))
        return {"results": results, "errors": errors}

    # ------------------------------------------------------ observability
    @property
    def uptime_seconds(self) -> float:
        return time.monotonic() - self._started

    def healthz(self) -> dict:
        return {"status": "ok", "uptime_seconds": self.uptime_seconds}

    def stats(self) -> dict:
        """Everything ``/stats`` reports: config, queue, timings, caches.

        ``stages`` carries the per-stage wall-clock the engine's
        :class:`~repro.engine.instrumentation.PipelineProfile` collected;
        ``caches`` the hit rates of the shared parser/scorer caches plus
        the distiller's ``results`` memo; ``scheduler`` the micro-batching
        counters including the live queue depth.
        """
        batch_stats = self.distiller.stats()
        profile = batch_stats.profile.to_dict()
        return {
            "service": {
                "corpus": self.corpus_info,
                "uptime_seconds": self.uptime_seconds,
                "config": self.config.to_dict(),
            },
            "scheduler": self.scheduler.stats().to_dict(),
            "batch": {
                "n_distilled": batch_stats.n_distilled,
                "n_cache_hits": batch_stats.n_cache_hits,
                "total_seconds": batch_stats.total_seconds,
                "mean_ms": batch_stats.mean_ms,
                "mean_reduction": batch_stats.mean_reduction,
            },
            "stages": profile["stages"],
            "counters": profile["counters"],
            "caches": profile["caches"],
        }

    # ------------------------------------------------------------ closing
    def close(self) -> None:
        """Drain the scheduler and shut the executor pool down."""
        self.scheduler.close()
        self.distiller.close()

    def __enter__(self) -> "DistillService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
