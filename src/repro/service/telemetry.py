"""Service-side wiring of the :mod:`repro.obs` telemetry plane.

One :class:`ServiceTelemetry` per :class:`~repro.service.service.DistillService`
owns:

* the :class:`~repro.obs.metrics.MetricsRegistry` behind ``GET /metrics``
  — direct instruments for what the HTTP layer observes itself (request
  counts, latencies, shed reasons) plus a scrape-time callback that
  samples the very same scheduler/admission/engine counters ``/stats``
  reports, so the two surfaces can never disagree;
* trace sampling policy (:meth:`maybe_trace`) — counter-based every-Nth
  sampling, never random, so enabling tracing cannot perturb seeded RNG
  state; a request carrying an explicit ``X-Trace-Id`` is always traced;
* the :class:`~repro.obs.exemplars.SlowTraceRing` behind
  ``GET /debug/traces``.
"""

from __future__ import annotations

import itertools
import threading

from repro.faults import installed as faults_installed
from repro.obs.exemplars import SlowTraceRing
from repro.obs.metrics import (
    MetricFamily,
    MetricsRegistry,
    Sample,
    counter_family,
    gauge_family,
)
from repro.obs.trace import TraceHandle, start_trace

__all__ = ["ServiceTelemetry"]

# Metric name prefix. Everything this module exports starts with it so a
# shared Prometheus can scope dashboards with one matcher.
_PREFIX = "gced"


class ServiceTelemetry:
    """Registry + sampling policy + slow-trace ring for one service."""

    def __init__(
        self,
        service,
        trace_sample: float = 1.0,
        slow_trace_ms: float = 250.0,
        slow_trace_capacity: int = 32,
    ) -> None:
        if not 0.0 <= trace_sample <= 1.0:
            raise ValueError("trace_sample must be within [0, 1]")
        self.service = service
        self.trace_sample = trace_sample
        self.slow_ring = SlowTraceRing(
            capacity=slow_trace_capacity, threshold_ms=slow_trace_ms
        )
        self._sample_seq = itertools.count(1)
        self._sampled = 0
        self._lock = threading.Lock()

        registry = self.registry = MetricsRegistry()
        self.http_requests = registry.counter(
            f"{_PREFIX}_http_requests_total",
            "HTTP requests served, by route and status code",
            labelnames=("route", "status"),
        )
        self.http_latency = registry.histogram(
            f"{_PREFIX}_http_request_duration_seconds",
            "Wall-clock HTTP request latency",
        )
        self.http_route_latency = registry.histogram(
            f"{_PREFIX}_http_request_seconds",
            "Wall-clock HTTP request latency, by route",
            labelnames=("route",),
        )
        self.http_shed = registry.counter(
            f"{_PREFIX}_http_shed_total",
            "Requests shed by admission control, by reason",
            labelnames=("reason",),
        )
        self.traces_started = registry.counter(
            f"{_PREFIX}_traces_started_total",
            "Requests that were traced (sampled or forced by X-Trace-Id)",
        )
        self.batch_duration = registry.histogram(
            f"{_PREFIX}_scheduler_batch_duration_seconds",
            "Micro-batch flush duration (successful and fallback batches)",
        )
        registry.register_callback(self._collect)
        # The scheduler feeds flush durations into the histogram above.
        service.scheduler.on_batch = self._on_batch

    # ------------------------------------------------------------- tracing
    def maybe_trace(
        self, name: str, trace_id: str | None = None, **tags
    ) -> TraceHandle | None:
        """Open a trace for this request, or None when not sampled.

        Sampling is deterministic every-Nth (period ``round(1/sample)``)
        rather than random: no RNG state is touched, and a fixed request
        sequence always traces the same requests.  An explicit
        ``trace_id`` (the ``X-Trace-Id`` header) always traces.
        """
        if trace_id is None:
            if self.trace_sample <= 0.0:
                return None
            if self.trace_sample < 1.0:
                period = max(1, round(1.0 / self.trace_sample))
                if next(self._sample_seq) % period != 0:
                    return None
        self.traces_started.inc()
        with self._lock:
            self._sampled += 1
        return start_trace(name, trace_id=trace_id, **tags)

    def finish_trace(self, handle: TraceHandle) -> None:
        """Offer a finished request trace to the slow-trace ring."""
        self.slow_ring.offer(handle.to_dict(), handle.duration_ms)

    # ------------------------------------------------------------- metrics
    def observe_request(
        self,
        route: str,
        status: int,
        seconds: float,
        shed_reason: str | None = None,
    ) -> None:
        """Record one finished HTTP request."""
        self.http_requests.labels(route=route, status=str(status)).inc()
        self.http_latency.observe(seconds)
        self.http_route_latency.labels(route=route).observe(seconds)
        if shed_reason is not None:
            self.http_shed.labels(reason=shed_reason).inc()

    def _on_batch(
        self, seconds: float, size: int, reason: str, ok: bool
    ) -> None:
        self.batch_duration.observe(seconds)

    def metrics_text(self) -> str:
        """The Prometheus exposition page for ``GET /metrics``."""
        return self.registry.render()

    def stats_block(self) -> dict:
        """The ``obs`` block of ``/stats``."""
        with self._lock:
            sampled = self._sampled
        ring = self.slow_ring.snapshot()
        return {
            "trace_sample": self.trace_sample,
            "traces_started": sampled,
            "slow_traces": {
                "threshold_ms": ring["threshold_ms"],
                "capacity": ring["capacity"],
                "seen": ring["seen"],
                "kept": ring["kept"],
            },
        }

    # ---------------------------------------------------- scrape callback
    def _collect(self) -> list[MetricFamily]:
        """Scrape-time families sampled from the live ``/stats`` counters.

        These read the same objects ``DistillService.stats()`` serializes
        (scheduler counters, admission counters, the merged pipeline
        profile), so ``/metrics`` and ``/stats`` agree by construction.
        """
        service = self.service
        scheduler = service.scheduler.stats()
        admission = service.admission.stats()
        batch = service.distiller.stats()
        profile = batch.profile

        families = [
            gauge_family(
                f"{_PREFIX}_uptime_seconds",
                "Seconds since the service started",
                service.uptime_seconds,
            ),
            gauge_family(
                f"{_PREFIX}_scheduler_queue_depth",
                "Requests currently queued for micro-batching",
                scheduler.queue_depth,
            ),
            gauge_family(
                f"{_PREFIX}_scheduler_inflight",
                "Distinct triples currently executing or queued",
                scheduler.inflight,
            ),
            gauge_family(
                f"{_PREFIX}_scheduler_ewma_batch_seconds",
                "EWMA of successful batch flush latency (Retry-After basis)",
                scheduler.ewma_batch_ms / 1000.0,
            ),
            counter_family(
                f"{_PREFIX}_scheduler_submitted_total",
                "Requests submitted to the scheduler (coalesced included)",
                scheduler.submitted,
            ),
            counter_family(
                f"{_PREFIX}_scheduler_completed_total",
                "Request futures resolved successfully",
                scheduler.completed,
            ),
            counter_family(
                f"{_PREFIX}_scheduler_failed_total",
                "Request futures resolved with an error",
                scheduler.failed,
            ),
            counter_family(
                f"{_PREFIX}_scheduler_coalesced_total",
                "Submits that attached to identical in-flight work",
                scheduler.coalesced,
            ),
            counter_family(
                f"{_PREFIX}_scheduler_shed_total",
                "Submits refused because the admission queue was full",
                scheduler.shed,
            ),
            counter_family(
                f"{_PREFIX}_scheduler_batches_total",
                "Micro-batches flushed, by flush trigger",
                samples=[
                    Sample(scheduler.size_flushes, (("reason", "size"),)),
                    Sample(scheduler.timeout_flushes, (("reason", "timeout"),)),
                ],
            ),
            counter_family(
                f"{_PREFIX}_admission_admitted_total",
                "Requests past the per-client token buckets",
                admission["admitted"],
            ),
            counter_family(
                f"{_PREFIX}_admission_rate_limited_total",
                "Requests refused by per-client token buckets",
                admission["rate_limited"],
            ),
            gauge_family(
                f"{_PREFIX}_admission_clients",
                "Distinct client token buckets",
                admission["clients"],
            ),
            counter_family(
                f"{_PREFIX}_batch_distilled_total",
                "Triples distilled by the engine (memo misses)",
                batch.n_distilled,
            ),
            counter_family(
                f"{_PREFIX}_batch_memo_hits_total",
                "Triples served from the distiller's memo",
                batch.n_cache_hits,
            ),
        ]
        stage_calls = []
        stage_seconds = []
        for name, timing in sorted(profile.stages.items()):
            label = (("stage", name),)
            stage_calls.append(Sample(timing.calls, label))
            stage_seconds.append(Sample(timing.seconds, label))
        if stage_calls:
            families.append(
                counter_family(
                    f"{_PREFIX}_stage_calls_total",
                    "Pipeline stage executions, by stage",
                    samples=stage_calls,
                )
            )
            families.append(
                counter_family(
                    f"{_PREFIX}_stage_seconds_total",
                    "Pipeline stage wall-clock seconds, by stage",
                    samples=stage_seconds,
                )
            )
        cache_hits = []
        cache_misses = []
        for name, stats in sorted(profile.caches.items()):
            label = (("cache", name),)
            cache_hits.append(Sample(stats.hits, label))
            cache_misses.append(Sample(stats.misses, label))
        if cache_hits:
            families.append(
                counter_family(
                    f"{_PREFIX}_cache_hits_total",
                    "Shared-cache hits, by cache",
                    samples=cache_hits,
                )
            )
            families.append(
                counter_family(
                    f"{_PREFIX}_cache_misses_total",
                    "Shared-cache misses, by cache",
                    samples=cache_misses,
                )
            )
        # Fault-tolerance plane: breaker states (0 closed, 1 half-open,
        # 2 open), degraded-mode counters, crash-recovery counters, and
        # injected faults when a REPRO_FAULTS plan is active.
        breaker_samples = [
            Sample(
                service.distiller.pool_breaker.stats()["state_code"],
                (("breaker", "process_pool"),),
            )
        ]
        if service.retriever is not None:
            breaker_samples.append(
                Sample(
                    service.retriever.breaker.stats()["state_code"],
                    (("breaker", "retrieval"),),
                )
            )
        families.append(
            gauge_family(
                f"{_PREFIX}_breaker_state",
                "Circuit breaker state (0 closed, 1 half-open, 2 open)",
                samples=breaker_samples,
            )
        )
        families.append(
            gauge_family(
                f"{_PREFIX}_degraded",
                "1 while any breaker has the service on a reduced path",
                1.0 if service.degraded else 0.0,
            )
        )
        recovery = service.distiller.recovery_info()
        executor_stats = recovery.get("executor") or {}
        families.append(
            counter_family(
                f"{_PREFIX}_pool_breaks_total",
                "Times the worker process pool broke and was respawned",
                executor_stats.get("pool_breaks", 0),
            )
        )
        families.append(
            counter_family(
                f"{_PREFIX}_chunk_retries_total",
                "Chunks retried successfully after a pool break",
                executor_stats.get("chunk_retries", 0),
            )
        )
        families.append(
            gauge_family(
                f"{_PREFIX}_recovery_seconds",
                "Duration of the most recent pool respawn-and-retry",
                executor_stats.get("last_recovery_ms", 0.0) / 1000.0,
            )
        )
        families.append(
            counter_family(
                f"{_PREFIX}_degraded_batches_total",
                "Batches executed serially in the coordinator (breaker open)",
                recovery.get("degraded_batches", 0),
            )
        )
        families.append(
            counter_family(
                f"{_PREFIX}_deadline_expired_total",
                "Requests failed because their X-Deadline-Ms budget ran out",
                scheduler.deadline_expired,
            )
        )
        plan = faults_installed()
        if plan is not None:
            fired_by_site: dict[str, int] = {}
            for spec_stats in plan.stats()["specs"]:
                site = spec_stats["site"]
                fired_by_site[site] = (
                    fired_by_site.get(site, 0) + spec_stats["fired"]
                )
            fault_samples = [
                Sample(count, (("site", site),))
                for site, count in sorted(fired_by_site.items())
            ]
            if fault_samples:
                families.append(
                    counter_family(
                        f"{_PREFIX}_faults_injected_total",
                        "Faults fired by the installed REPRO_FAULTS plan",
                        samples=fault_samples,
                    )
                )
        # Durable live-corpus plane: document/tombstone counts, WAL size,
        # compaction generation, and crash-recovery replay counters.
        ingest = getattr(service, "ingest", None)
        if ingest is not None:
            ingest_stats = ingest.stats()
            families.extend(
                [
                    counter_family(
                        f"{_PREFIX}_ingest_docs_total",
                        "Live-corpus operations applied, by operation",
                        samples=[
                            Sample(
                                ingest_stats["docs_added"], (("op", "add"),)
                            ),
                            Sample(
                                ingest_stats["docs_deleted"],
                                (("op", "delete"),),
                            ),
                        ],
                    ),
                    gauge_family(
                        f"{_PREFIX}_ingest_live_docs",
                        "Documents currently live (added minus tombstoned)",
                        ingest_stats["live_docs"],
                    ),
                    gauge_family(
                        f"{_PREFIX}_ingest_tombstones",
                        "Deleted doc ids awaiting compaction",
                        ingest_stats["tombstones"],
                    ),
                    gauge_family(
                        f"{_PREFIX}_ingest_wal_bytes",
                        "Bytes in the per-shard write-ahead logs",
                        ingest_stats["wal_bytes"],
                    ),
                    gauge_family(
                        f"{_PREFIX}_ingest_generation",
                        "Compaction generation of the active segment",
                        ingest_stats["generation"],
                    ),
                    counter_family(
                        f"{_PREFIX}_ingest_compactions_total",
                        "WAL-into-segment compactions completed",
                        ingest_stats["compactions"],
                    ),
                    counter_family(
                        f"{_PREFIX}_ingest_replayed_records_total",
                        "WAL records re-applied during crash recovery",
                        ingest_stats["replayed_records"],
                    ),
                    counter_family(
                        f"{_PREFIX}_ingest_torn_bytes_total",
                        "Torn-tail bytes truncated from WALs on recovery",
                        ingest_stats["torn_bytes"],
                    ),
                ]
            )
        # Supervised shard-fleet plane: per-shard health/restarts plus
        # scatter-gather search counters.
        fleet = getattr(service, "fleet", None)
        if fleet is not None:
            fleet_stats = fleet.stats()
            state_codes = {"healthy": 0, "suspect": 1, "down": 2}
            workers = fleet_stats["workers"]
            families.extend(
                [
                    gauge_family(
                        f"{_PREFIX}_shard_state",
                        "Shard worker health (0 healthy, 1 suspect, 2 down)",
                        samples=[
                            Sample(
                                state_codes.get(worker["state"], 2),
                                (("shard", str(worker["shard_id"])),),
                            )
                            for worker in workers
                        ],
                    ),
                    counter_family(
                        f"{_PREFIX}_shard_restarts_total",
                        "Shard worker restarts by the supervisor",
                        samples=[
                            Sample(
                                worker["restarts"],
                                (("shard", str(worker["shard_id"])),),
                            )
                            for worker in workers
                        ],
                    ),
                    counter_family(
                        f"{_PREFIX}_shard_searches_total",
                        "Scatter-gather searches served by the fleet",
                        fleet_stats["searches"],
                    ),
                    counter_family(
                        f"{_PREFIX}_shard_retries_total",
                        "Shard searches retried after a worker restart",
                        fleet_stats["retries"],
                    ),
                    counter_family(
                        f"{_PREFIX}_shard_degraded_searches_total",
                        "Fleet searches answered without every shard",
                        fleet_stats["degraded_searches"],
                    ),
                ]
            )
        snapshot = service.distiller.snapshot_info()
        if snapshot is not None:
            families.append(
                gauge_family(
                    f"{_PREFIX}_snapshot_bytes",
                    "Pipeline snapshot segment size",
                    snapshot["bytes"],
                )
            )
            hydration = snapshot["hydration"]
            families.append(
                counter_family(
                    f"{_PREFIX}_snapshot_hydration_total",
                    "Worker lazy-hydration lookups, by outcome",
                    samples=[
                        Sample(hydration["hits"], (("outcome", "hit"),)),
                        Sample(hydration["misses"], (("outcome", "miss"),)),
                    ],
                )
            )
        return families
