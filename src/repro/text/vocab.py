"""Vocabulary with special tokens, used by the LM and attention substrates."""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator

__all__ = ["Vocabulary", "PAD", "UNK", "SEP", "CLS"]

PAD = "[PAD]"
UNK = "[UNK]"
SEP = "[SEP]"
CLS = "[CLS]"

_SPECIALS = (PAD, UNK, SEP, CLS)


class Vocabulary:
    """Bidirectional token/id mapping with frequency-based construction.

    Ids 0..3 are reserved for ``[PAD]``, ``[UNK]``, ``[SEP]``, ``[CLS]`` in
    that order, mirroring the special tokens the paper's PLM input uses.
    """

    def __init__(self) -> None:
        self._token_to_id: dict[str, int] = {}
        self._id_to_token: list[str] = []
        self.counts: Counter[str] = Counter()
        for special in _SPECIALS:
            self._add(special)

    @classmethod
    def build(
        cls,
        documents: Iterable[Iterable[str]],
        min_count: int = 1,
        max_size: int | None = None,
    ) -> "Vocabulary":
        """Build a vocabulary from an iterable of token sequences.

        Tokens below ``min_count`` map to ``[UNK]``; if ``max_size`` is
        given, only the most frequent tokens (after specials) are kept.
        """
        vocab = cls()
        for doc in documents:
            vocab.counts.update(doc)
        items = [(tok, n) for tok, n in vocab.counts.items() if n >= min_count]
        items.sort(key=lambda kv: (-kv[1], kv[0]))
        if max_size is not None:
            items = items[: max(0, max_size - len(_SPECIALS))]
        for tok, _count in items:
            vocab._add(tok)
        return vocab

    def _add(self, token: str) -> int:
        if token in self._token_to_id:
            return self._token_to_id[token]
        idx = len(self._id_to_token)
        self._token_to_id[token] = idx
        self._id_to_token.append(token)
        return idx

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_token)

    @property
    def pad_id(self) -> int:
        return self._token_to_id[PAD]

    @property
    def unk_id(self) -> int:
        return self._token_to_id[UNK]

    def id_of(self, token: str) -> int:
        """Return the id of ``token``, or the ``[UNK]`` id if unknown."""
        return self._token_to_id.get(token, self.unk_id)

    def token_of(self, idx: int) -> str:
        """Return the token string of ``idx`` (raises IndexError if invalid)."""
        return self._id_to_token[idx]

    def encode(self, tokens: Iterable[str]) -> list[int]:
        """Map a token sequence to ids (unknowns become ``[UNK]``)."""
        return [self.id_of(t) for t in tokens]

    def decode(self, ids: Iterable[int]) -> list[str]:
        """Map ids back to token strings."""
        return [self.token_of(i) for i in ids]

    def pad_to(self, ids: list[int], length: int) -> list[int]:
        """Right-pad (or truncate) an id sequence to exactly ``length``."""
        if len(ids) >= length:
            return ids[:length]
        return ids + [self.pad_id] * (length - len(ids))
