"""SQuAD-style answer normalization for EM/F1 scoring.

The paper's Eq. 1 and its EM/F1 metrics follow Rajpurkar et al. (2016):
lowercase, strip punctuation, drop English articles, collapse whitespace.
"""

from __future__ import annotations

import re
import string

__all__ = ["normalize_answer", "normalize_token"]

_ARTICLES_RE = re.compile(r"\b(a|an|the)\b")
_PUNCT_TABLE = str.maketrans("", "", string.punctuation)
_WS_RE = re.compile(r"\s+")


def normalize_answer(text: str) -> str:
    """Normalize an answer string for exact-match / F1 comparison.

    >>> normalize_answer("The Denver Broncos!")
    'denver broncos'
    """
    text = text.lower()
    text = text.translate(_PUNCT_TABLE)
    text = _ARTICLES_RE.sub(" ", text)
    return _WS_RE.sub(" ", text).strip()


def normalize_token(token: str) -> str:
    """Normalize a single token (lowercase, strip punctuation)."""
    return token.lower().translate(_PUNCT_TABLE)
