"""A light suffix-stripping stemmer shared by QWS and the QA scorers.

Aligns inflected surface forms with question words ("performed" →
"perform", "competitions" → "competition") without a full Porter stemmer;
over-stemming is safer than under-stemming here because matches are used
as soft evidence, never as hard identity.
"""

from __future__ import annotations

import functools

__all__ = ["light_stem", "lemma"]

# Irregular verb forms -> base lemma (the lexicon stores base forms).
_IRREGULAR = {
    "won": "win", "led": "lead", "fought": "fight", "wrote": "write",
    "written": "write", "made": "make", "took": "take", "taken": "take",
    "gave": "give", "given": "give", "found": "find", "held": "hold",
    "became": "become", "began": "begin", "begun": "begin", "knew": "know",
    "known": "know", "saw": "see", "seen": "see", "grew": "grow",
    "grown": "grow", "rose": "rise", "risen": "rise", "fell": "fall",
    "fallen": "fall", "built": "build", "taught": "teach",
    "brought": "bring", "bought": "buy", "thought": "think", "said": "say",
    "sang": "sing", "sung": "sing", "met": "meet", "ran": "run",
    "sold": "sell", "sent": "send", "spent": "spend", "came": "come",
    "went": "go", "gone": "go", "got": "get", "lost": "lose",
    "bore": "bear", "born": "bear", "chose": "choose", "chosen": "choose",
    "drew": "draw", "drawn": "draw", "spoke": "speak", "spoken": "speak",
    "was": "be", "were": "be", "is": "be", "are": "be", "been": "be",
    "has": "have", "had": "have", "did": "do", "done": "do",
}


@functools.lru_cache(maxsize=65536)
def light_stem(word: str) -> str:
    """Strip common inflectional suffixes; lowercases the input.

    Pure and called once per (token, lookup) across span scoring and QWS,
    so results are memoized process-wide.

    >>> light_stem("performed")
    'perform'
    >>> light_stem("competitions")
    'competition'
    >>> light_stem("planned")
    'plan'
    """
    word = word.lower()
    for suffix in ("ing", "ed", "es", "s", "ly"):
        if word.endswith(suffix) and len(word) - len(suffix) >= 3:
            stripped = word[: -len(suffix)]
            if len(stripped) > 2 and stripped[-1] == stripped[-2]:
                stripped = stripped[:-1]  # undo consonant doubling
            return stripped
    return word


def lemma(word: str) -> str:
    """Base lemma: irregular-verb lookup first, then suffix stripping.

    >>> lemma("won")
    'win'
    >>> lemma("performed")
    'perform'
    """
    lowered = word.lower()
    if lowered in _IRREGULAR:
        return _IRREGULAR[lowered]
    return light_stem(lowered)
