"""Text foundation: tokenization, sentence splitting, vocabulary, normalization."""

from repro.text.tokenizer import Token, tokenize, detokenize, word_tokens
from repro.text.sentences import Sentence, split_sentences
from repro.text.vocab import Vocabulary, PAD, UNK, SEP, CLS
from repro.text.normalize import normalize_answer, normalize_token

__all__ = [
    "Token",
    "tokenize",
    "detokenize",
    "word_tokens",
    "Sentence",
    "split_sentences",
    "Vocabulary",
    "PAD",
    "UNK",
    "SEP",
    "CLS",
    "normalize_answer",
    "normalize_token",
]
