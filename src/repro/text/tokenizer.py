"""Span-preserving word tokenizer.

GCED operates at token level: the distilled evidence is a subset of context
tokens re-ordered by their original indexes, and answer spans must be
located back in the raw text.  Every token therefore carries its character
offsets in the source string.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = ["Token", "tokenize", "detokenize", "word_tokens"]

# Words (with internal apostrophes/hyphens, e.g. "Knowles-Carter", "don't"),
# numbers (with decimal points/commas, e.g. "1,533", "3.5"), or single
# punctuation marks.
_TOKEN_RE = re.compile(
    r"[A-Za-z]+(?:[''\-][A-Za-z]+)*"  # words incl. hyphen/apostrophe compounds
    r"|\d+(?:[.,]\d+)*%?"  # numbers, decimals, percentages
    r"|[^\w\s]"  # any single punctuation character
)

# Punctuation that attaches to the preceding token when detokenizing.
_CLOSE_PUNCT = {".", ",", ";", ":", "!", "?", ")", "]", "}", "%", "''", "'"}
_OPEN_PUNCT = {"(", "[", "{", "``"}
_NO_SPACE_AFTER = _OPEN_PUNCT | {"$"}


@dataclass(frozen=True)
class Token:
    """A single token with its position in the source text.

    Attributes:
        text: the surface form.
        start: character offset of the first character in the source.
        end: character offset one past the last character.
        index: 0-based token index within the tokenized unit.
    """

    text: str
    start: int
    end: int
    index: int

    @property
    def lower(self) -> str:
        return self.text.lower()

    @property
    def is_word(self) -> bool:
        """True if the token contains at least one alphanumeric character."""
        return any(ch.isalnum() for ch in self.text)

    def __str__(self) -> str:  # pragma: no cover - debugging convenience
        return self.text


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text`` into :class:`Token` objects with character spans.

    >>> [t.text for t in tokenize("Beyonce performed, didn't she?")]
    ["Beyonce", "performed", ",", "didn't", "she", "?"]
    """
    return [
        Token(text=m.group(), start=m.start(), end=m.end(), index=i)
        for i, m in enumerate(_TOKEN_RE.finditer(text))
    ]


def word_tokens(text: str) -> list[str]:
    """Lowercased word-only token strings (punctuation removed)."""
    return [t.lower for t in tokenize(text) if t.is_word]


def detokenize(tokens: list[str]) -> str:
    """Join token strings back into readable text.

    Handles spacing around punctuation so the distilled evidence reads
    naturally ("Bowl title." not "Bowl title .").
    """
    pieces: list[str] = []
    for tok in tokens:
        if not pieces:
            pieces.append(tok)
        elif tok in _CLOSE_PUNCT:
            pieces[-1] = pieces[-1] + tok
        elif pieces[-1] and pieces[-1][-1] in _NO_SPACE_AFTER:
            pieces[-1] = pieces[-1] + tok
        elif tok == "-" or (pieces[-1].endswith("-") and tok[:1].isalnum()):
            pieces[-1] = pieces[-1] + tok
        else:
            pieces.append(tok)
    return " ".join(pieces)
