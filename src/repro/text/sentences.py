"""Rule-based sentence splitter with character spans.

ASE feeds sentences one at a time into the QA model, so each sentence keeps
its offsets in the original context; evidence spans can then be mapped back
to the document.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.text.tokenizer import Token, tokenize

__all__ = ["Sentence", "split_sentences"]

# Abbreviations that end with a period but do not end a sentence.
_ABBREVIATIONS = {
    "mr", "mrs", "ms", "dr", "prof", "st", "jr", "sr", "vs", "etc",
    "e.g", "i.e", "inc", "ltd", "co", "corp", "no", "vol", "fig", "al",
    "u.s", "u.k",
}

_BOUNDARY_RE = re.compile(r"([.!?])(\s+|$)")


@dataclass(frozen=True)
class Sentence:
    """A sentence with character offsets into its source document."""

    text: str
    start: int
    end: int
    index: int

    def tokens(self) -> list[Token]:
        """Tokenize the sentence (token offsets are sentence-local)."""
        return tokenize(self.text)

    def __len__(self) -> int:
        return len(self.text)


def _is_abbreviation(text: str, period_pos: int) -> bool:
    """Check whether the period at ``period_pos`` terminates an abbreviation."""
    head = text[:period_pos]
    match = re.search(r"([A-Za-z][A-Za-z.]*)$", head)
    if match is None:
        return False
    word = match.group(1).lower().rstrip(".")
    if word in _ABBREVIATIONS:
        return True
    # Single capital letter ("T. S. Eliot") is an initial, not a boundary.
    return len(word) == 1 and match.group(1)[0].isupper()


def split_sentences(text: str) -> list[Sentence]:
    """Split ``text`` into sentences, keeping character offsets.

    >>> [s.text for s in split_sentences("It rained. Dr. Smith left!")]
    ['It rained.', 'Dr. Smith left!']
    """
    sentences: list[Sentence] = []
    start = 0
    for match in _BOUNDARY_RE.finditer(text):
        period_pos = match.start(1)
        if match.group(1) == "." and _is_abbreviation(text, period_pos):
            continue
        end = match.end(1)
        chunk = text[start:end].strip()
        if chunk:
            chunk_start = text.index(chunk, start, end + 1)
            sentences.append(
                Sentence(chunk, chunk_start, chunk_start + len(chunk), len(sentences))
            )
        start = match.end()
    tail = text[start:].strip()
    if tail:
        tail_start = text.index(tail, start)
        sentences.append(
            Sentence(tail, tail_start, tail_start + len(tail), len(sentences))
        )
    return sentences
