"""Request tracing: hierarchical spans propagated through ``contextvars``.

The model is deliberately small:

* a :class:`Trace` is a flat, thread-safe bag of finished :class:`Span`
  records sharing one ``trace_id``;
* a :class:`Span` is a named ``[start, end]`` wall-clock interval with a
  ``parent_id`` pointing at the enclosing span, so the flat bag always
  reassembles into a tree (:func:`repro.obs.render.render_trace`);
* the *active* position — which trace, under which parent span — lives
  in one :data:`contextvars.ContextVar`, so nested :func:`span` calls
  parent correctly through plain function calls without any plumbing.

**Cost model.** Nothing in this module keeps global mutable state beyond
the context variable and an id counter.  Tracing is "off" simply when no
trace has been activated on the current context: :func:`span` then costs
one context-variable read and a ``None`` check and returns a shared
no-op handle.  That is the whole disabled-path overhead, which
``benchmarks/bench_obs_overhead.py`` measures and CI gates.

**Cross-thread / cross-process propagation.**  Context variables do not
cross pool boundaries on their own:

* thread pools re-activate an explicit ``(trace, parent_id)`` pair via
  :func:`activate` / :func:`deactivate` (see
  ``BatchDistiller._execute``);
* process workers open their own :class:`TraceHandle` with the parent's
  ``trace_id`` and ``parent_id`` (spans are picklable), ship the
  finished span list back with the result, and the coordinator folds it
  into the live trace with :meth:`Trace.extend` — the same
  merge-the-delta pattern ``PipelineProfile.merge`` uses.

Span timestamps are ``time.time()`` wall clock: within one host it is
shared across processes, so worker span intervals nest inside their
parent span without any clock translation.
"""

from __future__ import annotations

import contextvars
import itertools
import os
import threading
import time

__all__ = [
    "Span",
    "Trace",
    "TraceHandle",
    "activate",
    "current",
    "current_trace",
    "current_trace_id",
    "deactivate",
    "new_trace_id",
    "record_event",
    "span",
    "start_trace",
]

# (trace, parent_span_id) for the code currently executing, or None when
# the request is not being traced.
_active: contextvars.ContextVar = contextvars.ContextVar(
    "gced_active_span", default=None
)

# Span ids are "<pid hex>.<counter hex>": unique within a process by the
# counter, across processes by the pid — no randomness, so tracing can
# never perturb seeded RNG state (outputs stay byte-identical).
_span_counter = itertools.count(1)


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (``os.urandom``; no RNG state touched)."""
    return os.urandom(8).hex()


def _new_span_id() -> str:
    return f"{os.getpid():x}.{next(_span_counter):x}"


class Span:
    """One named wall-clock interval inside a trace.

    Plain picklable data (``__slots__``, stdlib types only) so process
    workers can ship finished spans back to the coordinator.
    """

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "start", "end", "tags")

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str | None = None,
        parent_id: str | None = None,
        start: float = 0.0,
        end: float = 0.0,
        tags: dict | None = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id or _new_span_id()
        self.parent_id = parent_id
        self.start = start
        self.end = end
        self.tags = tags

    @property
    def duration_ms(self) -> float:
        return max(0.0, (self.end - self.start) * 1000.0)

    def to_dict(self) -> dict:
        payload = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration_ms": round(self.duration_ms, 3),
        }
        if self.tags:
            payload["tags"] = dict(self.tags)
        return payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.duration_ms:.3f}ms, "
            f"id={self.span_id}, parent={self.parent_id})"
        )


class Trace:
    """A thread-safe bag of finished spans sharing one trace id."""

    def __init__(self, trace_id: str | None = None) -> None:
        self.trace_id = trace_id or new_trace_id()
        self.spans: list[Span] = []
        self._lock = threading.Lock()

    def add(self, span: Span) -> None:
        with self._lock:
            self.spans.append(span)

    def extend(self, spans: list[Span]) -> None:
        """Fold spans recorded elsewhere (e.g. a process worker) in."""
        with self._lock:
            self.spans.extend(spans)

    def root(self) -> Span | None:
        """The first recorded parentless span, if any."""
        with self._lock:
            for span in self.spans:
                if span.parent_id is None:
                    return span
        return None

    @property
    def duration_ms(self) -> float:
        root = self.root()
        return root.duration_ms if root is not None else 0.0

    def to_dict(self) -> dict:
        with self._lock:
            spans = sorted(self.spans, key=lambda s: (s.start, s.span_id))
            return {
                "trace_id": self.trace_id,
                "n_spans": len(spans),
                "spans": [span.to_dict() for span in spans],
            }


class _NullSpanHandle:
    """The shared no-op handle :func:`span` returns when not tracing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpanHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        pass

    def tag(self, **tags) -> "_NullSpanHandle":
        return self


_NULL_SPAN = _NullSpanHandle()


class _SpanHandle:
    """Context manager recording one span and re-parenting the context."""

    __slots__ = ("trace", "span", "_token")

    def __init__(self, trace: Trace, span: Span) -> None:
        self.trace = trace
        self.span = span
        self._token = None

    def __enter__(self) -> "_SpanHandle":
        self.span.start = time.time()
        self._token = _active.set((self.trace, self.span.span_id))
        return self

    def __exit__(self, *exc_info) -> None:
        self.span.end = time.time()
        if self._token is not None:
            _active.reset(self._token)
            self._token = None
        self.trace.add(self.span)

    def tag(self, **tags) -> "_SpanHandle":
        if self.span.tags is None:
            self.span.tags = {}
        self.span.tags.update(tags)
        return self


def span(name: str, **tags):
    """Open a child span under the active trace (no-op when untraced).

    >>> with span("stage.clip", reason="size"):
    ...     ...

    The returned handle supports ``.tag(key=value)`` for facts known
    only after the work ran.
    """
    active = _active.get()
    if active is None:
        return _NULL_SPAN
    trace, parent_id = active
    return _SpanHandle(
        trace,
        Span(name, trace.trace_id, parent_id=parent_id, tags=tags or None),
    )


class TraceHandle:
    """A whole trace: root span + context activation, as one ``with``.

    Created by :func:`start_trace`.  While entered, every :func:`span`
    on the same context (and anything the batch layers re-activate the
    context into) records into :attr:`trace`.  After exit the root span
    is finished and the trace is complete — ship :attr:`trace` (or its
    :meth:`Trace.to_dict`) wherever it needs to go.
    """

    __slots__ = ("trace", "root", "_token")

    def __init__(self, trace: Trace, root: Span) -> None:
        self.trace = trace
        self.root = root
        self._token = None

    @property
    def trace_id(self) -> str:
        return self.trace.trace_id

    @property
    def duration_ms(self) -> float:
        return self.root.duration_ms

    def tag(self, **tags) -> "TraceHandle":
        if self.root.tags is None:
            self.root.tags = {}
        self.root.tags.update(tags)
        return self

    def __enter__(self) -> "TraceHandle":
        self.root.start = time.time()
        self._token = _active.set((self.trace, self.root.span_id))
        return self

    def __exit__(self, *exc_info) -> None:
        self.root.end = time.time()
        if self._token is not None:
            _active.reset(self._token)
            self._token = None
        self.trace.add(self.root)

    def to_dict(self) -> dict:
        return self.trace.to_dict()


def start_trace(
    name: str,
    trace_id: str | None = None,
    parent_id: str | None = None,
    **tags,
) -> TraceHandle:
    """Begin a new trace rooted at a span called ``name``.

    ``trace_id`` joins an existing distributed trace (the ``X-Trace-Id``
    header, or the coordinator's id inside a process worker);
    ``parent_id`` parents the root span on a span recorded in another
    process, which is how worker-side spans nest under the coordinator's
    span once merged back.
    """
    trace = Trace(trace_id)
    root = Span(name, trace.trace_id, parent_id=parent_id, tags=tags or None)
    return TraceHandle(trace, root)


# --------------------------------------------------------------- low level
def current():
    """The active ``(trace, parent_span_id)`` pair, or ``None``."""
    return _active.get()


def current_trace() -> Trace | None:
    active = _active.get()
    return active[0] if active is not None else None


def current_trace_id() -> str | None:
    active = _active.get()
    return active[0].trace_id if active is not None else None


def activate(trace: Trace, parent_id: str | None):
    """Make ``(trace, parent_id)`` current on this thread; returns a token.

    Used by worker threads that must record into a trace started on
    another thread (context variables do not propagate into pools).
    Always pair with :func:`deactivate` in a ``finally``.
    """
    return _active.set((trace, parent_id))


def deactivate(token) -> None:
    _active.reset(token)


def record_event(
    trace: Trace, name: str, parent_id: str | None = None, **tags
) -> Span:
    """Record an instantaneous (zero-duration) span, e.g. a coalesce hit."""
    now = time.time()
    span = Span(
        name,
        trace.trace_id,
        parent_id=parent_id,
        start=now,
        end=now,
        tags=tags or None,
    )
    trace.add(span)
    return span
