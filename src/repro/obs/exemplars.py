"""Slow-trace exemplars: a bounded ring of the last N slow traces.

The serving path offers every finished trace to a :class:`SlowTraceRing`
with its duration; traces at or above the threshold are kept (newest
evicting oldest beyond ``capacity``).  ``GET /debug/traces`` serves the
ring's snapshot and ``repro trace`` pretty-prints it — the production
answer to "why was that one request slow?" without rerunning anything.
"""

from __future__ import annotations

import threading
from collections import deque

__all__ = ["SlowTraceRing"]


class SlowTraceRing:
    """Keep the newest ``capacity`` trace dicts that exceeded a threshold."""

    def __init__(self, capacity: int = 32, threshold_ms: float = 250.0) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.threshold_ms = float(threshold_ms)
        self._ring: deque = deque(maxlen=capacity)
        self._seen = 0
        self._kept = 0
        self._lock = threading.Lock()

    def offer(self, trace_dict: dict, duration_ms: float) -> bool:
        """Consider one finished trace; returns True if it was kept."""
        with self._lock:
            self._seen += 1
            if duration_ms < self.threshold_ms:
                return False
            self._kept += 1
            self._ring.append(
                {"duration_ms": round(duration_ms, 3), "trace": trace_dict}
            )
            return True

    def snapshot(self) -> dict:
        """The ring newest-first, plus offer/keep counters."""
        with self._lock:
            return {
                "threshold_ms": self.threshold_ms,
                "capacity": self.capacity,
                "seen": self._seen,
                "kept": self._kept,
                "traces": list(reversed(self._ring)),
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)
