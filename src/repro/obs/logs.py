"""Structured JSON logging on stdlib ``logging``.

One line of JSON per record: timestamp, level, logger, message, the
active trace id (when the request is being traced), plus any extra
fields passed via ``logger.info(..., extra={"fields": {...}})`` or the
:func:`get_logger` convenience wrapper.  A :class:`RateLimitFilter`
caps bursts per logger so a hot shed path cannot flood stderr — dropped
records are counted and reported on the next emitted line.

:func:`configure_logging` is idempotent and scoped to the ``"repro"``
logger tree; it never touches the root logger, so embedding
applications keep their own logging untouched.
"""

from __future__ import annotations

import json
import logging
import threading
import time

from repro.obs.trace import current_trace_id

__all__ = [
    "JsonFormatter",
    "RateLimitFilter",
    "configure_logging",
    "get_logger",
]

_RESERVED = ("fields",)


class JsonFormatter(logging.Formatter):
    """Render each record as one compact JSON object."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        trace_id = getattr(record, "trace_id", None) or current_trace_id()
        if trace_id:
            payload["trace_id"] = trace_id
        fields = getattr(record, "fields", None)
        if fields:
            for key, value in fields.items():
                if key not in payload:
                    payload[key] = value
        dropped = getattr(record, "rate_limited_dropped", 0)
        if dropped:
            payload["dropped"] = dropped
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str, separators=(",", ":"))


class RateLimitFilter(logging.Filter):
    """Token-bucket rate limit per handler; counts what it drops.

    Allows ``burst`` records instantly and refills at ``rate`` records
    per second.  When a record passes after any were dropped, the drop
    count rides along as ``rate_limited_dropped`` so the JSON line
    records the gap.
    """

    def __init__(self, rate: float = 50.0, burst: int = 100) -> None:
        super().__init__()
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last = time.monotonic()
        self._dropped = 0
        self._lock = threading.Lock()

    def filter(self, record: logging.LogRecord) -> bool:
        now = time.monotonic()
        with self._lock:
            self._tokens = min(
                self.burst, self._tokens + (now - self._last) * self.rate
            )
            self._last = now
            if self._tokens < 1.0:
                self._dropped += 1
                return False
            self._tokens -= 1.0
            if self._dropped:
                record.rate_limited_dropped = self._dropped
                self._dropped = 0
        return True

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped


def configure_logging(
    level: int | str = logging.INFO,
    stream=None,
    rate: float = 50.0,
    burst: int = 100,
) -> logging.Logger:
    """Attach one JSON handler to the ``"repro"`` logger tree (idempotent).

    Repeat calls update the level of the existing handler instead of
    stacking new ones.  Returns the configured logger.
    """
    logger = logging.getLogger("repro")
    if isinstance(level, str):
        level = logging.getLevelName(level.upper())
    handler = None
    for existing in logger.handlers:
        if getattr(existing, "_repro_json", False):
            handler = existing
            break
    if handler is None:
        handler = logging.StreamHandler(stream)
        handler._repro_json = True
        handler.setFormatter(JsonFormatter())
        handler.addFilter(RateLimitFilter(rate=rate, burst=burst))
        logger.addHandler(handler)
    elif stream is not None:
        handler.setStream(stream)
    logger.setLevel(level)
    logger.propagate = False
    return logger


class _FieldsAdapter(logging.LoggerAdapter):
    """Lets callers pass flat keyword fields: ``log.info("msg", a=1)``."""

    def process(self, msg, kwargs):
        fields = kwargs.pop("fields", None) or {}
        extra = kwargs.setdefault("extra", {})
        for key in list(kwargs):
            if key not in ("exc_info", "stack_info", "stacklevel", "extra"):
                fields[key] = kwargs.pop(key)
        if fields:
            extra["fields"] = fields
        return msg, kwargs


def get_logger(name: str) -> _FieldsAdapter:
    """A ``repro.<name>`` logger whose methods accept keyword fields."""
    qualified = name if name.startswith("repro") else f"repro.{name}"
    return _FieldsAdapter(logging.getLogger(qualified), {})
