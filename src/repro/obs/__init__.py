"""Unified telemetry plane: tracing, metrics, structured logs, exemplars.

Dependency-free (stdlib only) observability primitives shared by every
layer of the system:

* :mod:`repro.obs.trace` — ``contextvars``-propagated request traces with
  hierarchical spans.  Opening a span costs one context-variable read
  when no trace is active, so instrumented hot paths stay near-free
  unless a request is actually being traced.
* :mod:`repro.obs.metrics` — mergeable counters, gauges, and
  fixed-bucket histograms behind a :class:`~repro.obs.metrics.MetricsRegistry`
  that renders Prometheus text exposition (``GET /metrics``), plus the
  :class:`~repro.obs.metrics.TimingAccumulator` primitive that
  ``utils.timing.Timer`` and the engine's ``StageTiming`` build on.
* :mod:`repro.obs.logs` — structured JSON logging on stdlib ``logging``:
  trace-id correlation, a rate-limit filter, and one configure call.
* :mod:`repro.obs.exemplars` — a bounded ring of the slowest recent
  traces (``GET /debug/traces`` and ``repro trace``).
* :mod:`repro.obs.render` — the span-tree pretty printer the CLI uses.

See ``docs/observability.md`` for the trace model, the ``/metrics`` name
reference, the log schema, and the sampling knobs.
"""

from repro.obs.exemplars import SlowTraceRing
from repro.obs.logs import JsonFormatter, configure_logging, get_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimingAccumulator,
)
from repro.obs.render import render_trace
from repro.obs.trace import (
    Span,
    Trace,
    TraceHandle,
    current_trace,
    current_trace_id,
    span,
    start_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonFormatter",
    "MetricsRegistry",
    "SlowTraceRing",
    "Span",
    "Trace",
    "TraceHandle",
    "TimingAccumulator",
    "configure_logging",
    "current_trace",
    "current_trace_id",
    "get_logger",
    "render_trace",
    "span",
    "start_trace",
]
