"""Span-tree pretty printer for trace dicts (``repro trace``, ``--trace``).

Takes the ``Trace.to_dict()`` shape — a flat span list with
``parent_id`` links — and renders an indented tree with durations and
tags::

    trace 9f2c41d0aa113322 (3 spans, 41.2ms)
    └─ http.request                              41.2ms  path=/ask
       └─ scheduler.batch                        35.0ms  size=4
          └─ engine.distill                      30.1ms

Spans whose parent is missing from the dict (e.g. a worker span whose
parent lives in another process's buffer that was never merged) are
shown as additional roots rather than dropped.
"""

from __future__ import annotations

__all__ = ["render_trace"]


def _format_tags(tags: dict | None) -> str:
    if not tags:
        return ""
    return "  " + " ".join(f"{key}={value}" for key, value in sorted(tags.items()))


def render_trace(trace_dict: dict) -> str:
    """Render a ``Trace.to_dict()`` payload as an indented span tree."""
    spans = trace_dict.get("spans", [])
    by_id = {span["span_id"]: span for span in spans}
    children: dict = {}
    roots = []
    for span in spans:
        parent = span.get("parent_id")
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)

    name_width = max((len(s["name"]) + 3 * _depth(s, by_id) for s in spans), default=0)
    name_width = min(max(name_width + 2, 24), 60)

    lines = [
        f"trace {trace_dict.get('trace_id', '?')} "
        f"({len(spans)} span{'s' if len(spans) != 1 else ''})"
    ]

    def walk(span: dict, prefix: str, is_last: bool) -> None:
        connector = "└─ " if is_last else "├─ "
        label = f"{prefix}{connector}{span['name']}"
        duration = f"{span.get('duration_ms', 0.0):.1f}ms"
        pad = max(1, name_width - len(label))
        lines.append(f"{label}{' ' * pad}{duration:>9}{_format_tags(span.get('tags'))}")
        kids = sorted(
            children.get(span["span_id"], []),
            key=lambda child: (child.get("start", 0.0), child["span_id"]),
        )
        child_prefix = prefix + ("   " if is_last else "│  ")
        for index, child in enumerate(kids):
            walk(child, child_prefix, index == len(kids) - 1)

    roots.sort(key=lambda span: (span.get("start", 0.0), span["span_id"]))
    for index, root in enumerate(roots):
        walk(root, "", index == len(roots) - 1)
    return "\n".join(lines)


def _depth(span: dict, by_id: dict) -> int:
    depth = 0
    parent = span.get("parent_id")
    # Cap the walk: trace span counts are small and cycles impossible in
    # well-formed traces, but a malformed payload must not hang the CLI.
    while parent is not None and parent in by_id and depth < 64:
        depth += 1
        parent = by_id[parent].get("parent_id")
    return depth
