"""Mergeable metrics primitives + a Prometheus-text-exposition registry.

Three first-class instruments — :class:`Counter` (monotone),
:class:`Gauge` (set-to-value), :class:`Histogram` (fixed cumulative
buckets) — plus :class:`TimingAccumulator`, the calls+seconds primitive
that ``utils.timing.Timer`` and the engine's ``StageTiming`` are built
on, so the repo has exactly one timing implementation.

All instruments support :meth:`merge` with another instance of the same
shape (histograms require identical buckets), which is how per-worker
metric sets fold into a coordinator's — the same delta-merging contract
``PipelineProfile.merge`` established for stage timings.

A :class:`MetricsRegistry` owns *direct* instruments (created through
:meth:`MetricsRegistry.counter` etc., optionally labelled) and
*callback* families (:meth:`MetricsRegistry.register_callback`) that
sample live system state — queue depths, cache hit counts — at scrape
time, so ``GET /metrics`` and ``/stats`` read the very same counters and
can never disagree.  :meth:`MetricsRegistry.render` emits Prometheus
text exposition (format 0.0.4); :func:`lint_exposition` is the
pure-python validator behind ``tools/check_metrics.py``; and
:func:`parse_exposition` gives tests and the serve self-test sample
values by name and label set.
"""

from __future__ import annotations

import bisect
import math
import re
import threading
from typing import Callable, Iterable, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "Sample",
    "TimingAccumulator",
    "counter_family",
    "gauge_family",
    "lint_exposition",
    "parse_exposition",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

# Latency buckets (seconds): sub-5ms cache hits through 10s batch storms.
DEFAULT_BUCKETS = (
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_TYPES = ("counter", "gauge", "histogram", "untyped")


class TimingAccumulator:
    """Calls + total seconds — the one shared timing primitive.

    ``utils.timing.Timer`` keeps one per label and the engine's
    ``StageTiming`` extends it with a halt counter; both expose the same
    ``calls`` / ``seconds`` / ``mean_ms`` surface this class defines.
    Plain picklable data (instances travel inside ``PipelineProfile``
    to and from process workers); accumulation is not internally locked
    — holders that share instances across threads guard them, exactly
    as ``PipelineProfile`` and ``Timer`` already do.
    """

    __slots__ = ("calls", "seconds")

    def __init__(self, calls: int = 0, seconds: float = 0.0) -> None:
        self.calls = calls
        self.seconds = seconds

    def observe(self, seconds: float) -> None:
        """Fold one measured duration in."""
        self.calls += 1
        self.seconds += seconds

    @property
    def mean_ms(self) -> float:
        return 1000.0 * self.seconds / self.calls if self.calls else 0.0

    def merge(self, other: "TimingAccumulator") -> None:
        self.calls += other.calls
        self.seconds += other.seconds

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, TimingAccumulator)
            and type(self) is type(other)
            and self.calls == other.calls
            and self.seconds == other.seconds
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(calls={self.calls}, seconds={self.seconds})"


class Counter:
    """A monotonically increasing float counter."""

    __slots__ = ("_value", "_lock")

    def __init__(self, value: float = 0.0) -> None:
        self._value = float(value)
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def merge(self, other: "Counter") -> None:
        self.inc(other.value)


class Gauge:
    """A value that goes up and down (queue depth, bytes, ratios)."""

    __slots__ = ("_value", "_lock")

    def __init__(self, value: float = 0.0) -> None:
        self._value = float(value)
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def merge(self, other: "Gauge") -> None:
        """Gauges merge by taking the max (the conventional aggregate
        for sizes/depths across workers; override by setting directly)."""
        with self._lock:
            self._value = max(self._value, other.value)


class Histogram:
    """Fixed-bucket cumulative histogram (Prometheus semantics).

    ``buckets`` are the finite upper bounds, strictly increasing; a
    ``+Inf`` bucket is implicit.  :meth:`observe` is O(log buckets).
    """

    __slots__ = ("buckets", "_counts", "_sum", "_count", "_lock")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        uppers = tuple(float(b) for b in buckets)
        if not uppers:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(uppers, uppers[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        if any(math.isinf(b) for b in uppers):
            raise ValueError("+Inf bucket is implicit; pass finite bounds")
        self.buckets = uppers
        self._counts = [0] * (len(uppers) + 1)  # last slot = +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def snapshot(self) -> tuple[list[int], float, int]:
        """``(cumulative_counts_incl_inf, sum, count)`` under the lock."""
        with self._lock:
            counts = list(self._counts)
            total_sum, total_count = self._sum, self._count
        cumulative: list[int] = []
        running = 0
        for count in counts:
            running += count
            cumulative.append(running)
        return cumulative, total_sum, total_count

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def merge(self, other: "Histogram") -> None:
        if self.buckets != other.buckets:
            raise ValueError("cannot merge histograms with different buckets")
        with other._lock:
            counts = list(other._counts)
            other_sum, other_count = other._sum, other._count
        with self._lock:
            for index, count in enumerate(counts):
                self._counts[index] += count
            self._sum += other_sum
            self._count += other_count


# ----------------------------------------------------------------- families
class Sample:
    """One exposition line: ``name{labels} value`` (suffix for histograms)."""

    __slots__ = ("suffix", "labels", "value")

    def __init__(
        self,
        value: float,
        labels: Iterable[tuple[str, str]] = (),
        suffix: str = "",
    ) -> None:
        self.value = value
        self.labels = tuple(labels)
        self.suffix = suffix


class MetricFamily:
    """A named metric with HELP/TYPE metadata and its current samples."""

    __slots__ = ("name", "type", "help", "samples")

    def __init__(
        self, name: str, type: str, help: str, samples: list[Sample]
    ) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        if type not in _TYPES:
            raise ValueError(f"invalid metric type {type!r}")
        self.name = name
        self.type = type
        self.help = help
        self.samples = samples


def counter_family(
    name: str, help: str, value=None, samples: list[Sample] | None = None
) -> MetricFamily:
    """A one-shot counter family from a scalar or prebuilt samples."""
    if samples is None:
        samples = [Sample(float(value))]
    return MetricFamily(name, "counter", help, samples)


def gauge_family(
    name: str, help: str, value=None, samples: list[Sample] | None = None
) -> MetricFamily:
    """A one-shot gauge family from a scalar or prebuilt samples."""
    if samples is None:
        samples = [Sample(float(value))]
    return MetricFamily(name, "gauge", help, samples)


class _Labelled:
    """Per-label-value children of one labelled instrument."""

    __slots__ = ("label_names", "_factory", "_children", "_lock")

    def __init__(self, label_names: tuple[str, ...], factory: Callable) -> None:
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.label_names = label_names
        self._factory = factory
        self._children: dict[tuple[str, ...], object] = {}
        self._lock = threading.Lock()

    def labels(self, **labels):
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"expected labels {self.label_names}, got {tuple(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._factory()
            return child

    def items(self) -> list[tuple[tuple[tuple[str, str], ...], object]]:
        with self._lock:
            children = dict(self._children)
        return [
            (tuple(zip(self.label_names, key)), child)
            for key, child in sorted(children.items())
        ]


class MetricsRegistry:
    """Direct instruments + scrape-time callbacks, rendered as one page.

    Direct instruments (``registry.counter(...)``) are for events the
    instrumented code observes itself (HTTP requests, latencies).
    Callbacks (``registry.register_callback(fn)``) sample state owned by
    other components — scheduler counters, cache hit rates — when the
    page is scraped, so the exposition and ``/stats`` always agree.
    """

    def __init__(self) -> None:
        self._direct: dict[str, tuple[str, str, object]] = {}
        self._callbacks: list[Callable[[], Iterable[MetricFamily]]] = []
        self._lock = threading.Lock()

    # -------------------------------------------------------- registration
    def _register(self, name: str, type: str, help: str, instrument):
        with self._lock:
            if name in self._direct:
                raise ValueError(f"metric {name!r} already registered")
            self._direct[name] = (type, help, instrument)
        return instrument

    def counter(self, name: str, help: str, labelnames: Sequence[str] = ()):
        """Register a counter (a :class:`_Labelled` family if labelled)."""
        instrument = (
            Counter() if not labelnames else _Labelled(tuple(labelnames), Counter)
        )
        return self._register(name, "counter", help, instrument)

    def gauge(self, name: str, help: str, labelnames: Sequence[str] = ()):
        instrument = (
            Gauge() if not labelnames else _Labelled(tuple(labelnames), Gauge)
        )
        return self._register(name, "gauge", help, instrument)

    def histogram(
        self,
        name: str,
        help: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        labelnames: Sequence[str] = (),
    ):
        """Register a histogram (a :class:`_Labelled` family if labelled).

        Labelled children share ``buckets``, so every ``{route=...}``
        series of one family stays merge- and render-compatible.
        """
        instrument = (
            Histogram(buckets)
            if not labelnames
            else _Labelled(tuple(labelnames), lambda: Histogram(buckets))
        )
        return self._register(name, "histogram", help, instrument)

    def register_callback(
        self, fn: Callable[[], Iterable[MetricFamily]]
    ) -> None:
        """Add a scrape-time producer of :class:`MetricFamily` objects."""
        with self._lock:
            self._callbacks.append(fn)

    # ------------------------------------------------------------- scraping
    def collect(self) -> list[MetricFamily]:
        """Every family, direct and callback-produced, sorted by name."""
        with self._lock:
            direct = list(self._direct.items())
            callbacks = list(self._callbacks)
        families: list[MetricFamily] = []
        for name, (type_, help_, instrument) in direct:
            families.append(
                MetricFamily(name, type_, help_, _samples_of(instrument))
            )
        for callback in callbacks:
            families.extend(callback())
        families.sort(key=lambda family: family.name)
        return families

    def render(self) -> str:
        """Prometheus text exposition (format 0.0.4) of :meth:`collect`."""
        lines: list[str] = []
        for family in self.collect():
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {family.name} {family.type}")
            for sample in family.samples:
                label_text = _format_labels(sample.labels)
                lines.append(
                    f"{family.name}{sample.suffix}{label_text} "
                    f"{_format_value(sample.value)}"
                )
        return "\n".join(lines) + "\n"


def _samples_of(instrument) -> list[Sample]:
    if isinstance(instrument, (Counter, Gauge)):
        return [Sample(instrument.value)]
    if isinstance(instrument, Histogram):
        return _histogram_samples(instrument)
    if isinstance(instrument, _Labelled):
        samples: list[Sample] = []
        for labels, child in instrument.items():
            if isinstance(child, Histogram):
                for sub in _histogram_samples(child):
                    samples.append(
                        Sample(sub.value, labels + sub.labels, sub.suffix)
                    )
            else:
                samples.append(Sample(child.value, labels))
        return samples
    raise TypeError(f"unknown instrument {instrument!r}")


def _histogram_samples(histogram: Histogram) -> list[Sample]:
    cumulative, total_sum, total_count = histogram.snapshot()
    samples = [
        Sample(count, (("le", _format_value(upper)),), "_bucket")
        for upper, count in zip(histogram.buckets, cumulative)
    ]
    samples.append(Sample(cumulative[-1], (("le", "+Inf"),), "_bucket"))
    samples.append(Sample(total_sum, (), "_sum"))
    samples.append(Sample(total_count, (), "_count"))
    return samples


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(str(value))}"' for name, value in labels
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


# ----------------------------------------------------------------- linting
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL_PAIR_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"'
)


def _parse_labels(text: str | None) -> tuple[tuple[str, str], ...] | None:
    """Parse ``{a="x",b="y"}`` into pairs; None on malformed syntax."""
    if not text:
        return ()
    inner = text[1:-1].strip().rstrip(",")
    if not inner:
        return ()
    pairs: list[tuple[str, str]] = []
    position = 0
    while position < len(inner):
        match = _LABEL_PAIR_RE.match(inner, position)
        if match is None:
            return None
        value = match.group(2)
        value = (
            value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
        )
        pairs.append((match.group(1), value))
        position = match.end()
        if position < len(inner):
            if inner[position] != ",":
                return None
            position += 1
    return tuple(pairs)


def parse_exposition(text: str) -> dict[str, dict]:
    """Parse exposition text into ``{family: {"type", "help", "samples"}}``.

    ``samples`` maps ``(sample_name, labels_tuple)`` → float value, where
    ``sample_name`` includes any histogram suffix.  Raises
    :class:`ValueError` on lines that do not parse (use
    :func:`lint_exposition` for a full diagnostic sweep).
    """
    families: dict[str, dict] = {}

    def family_of(sample_name: str) -> str:
        for suffix in ("_bucket", "_sum", "_count"):
            base = sample_name.removesuffix(suffix)
            if base != sample_name and base in families:
                if families[base]["type"] == "histogram":
                    return base
        return sample_name

    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(None, 3)
            name = parts[2]
            entry = families.setdefault(
                name, {"type": "untyped", "help": "", "samples": {}}
            )
            if parts[1] == "TYPE":
                entry["type"] = parts[3] if len(parts) > 3 else "untyped"
            else:
                entry["help"] = parts[3] if len(parts) > 3 else ""
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {line_number}: unparseable sample {raw!r}")
        labels = _parse_labels(match.group("labels"))
        if labels is None:
            raise ValueError(f"line {line_number}: malformed labels in {raw!r}")
        value_text = match.group("value")
        value = (
            math.inf
            if value_text == "+Inf"
            else -math.inf
            if value_text == "-Inf"
            else float(value_text)
        )
        sample_name = match.group("name")
        entry = families.setdefault(
            family_of(sample_name),
            {"type": "untyped", "help": "", "samples": {}},
        )
        entry["samples"][(sample_name, labels)] = value
    return families


def sample_value(
    families: dict[str, dict], name: str, **labels
) -> float | None:
    """Look one sample up from :func:`parse_exposition` output."""
    wanted = tuple(sorted((k, str(v)) for k, v in labels.items()))
    for suffix in ("", "_bucket", "_sum", "_count"):
        base = name.removesuffix(suffix) if suffix else name
        entry = families.get(base) or families.get(name)
        if entry is None:
            continue
        for (sample_name, sample_labels), value in entry["samples"].items():
            if sample_name == name and tuple(sorted(sample_labels)) == wanted:
                return value
    return None


def lint_exposition(text: str) -> list[str]:
    """Validate Prometheus text exposition; returns a list of problems.

    Checks (the ``promtool check metrics`` essentials, pure python):
    metric/label name syntax, float-parseable values, ``TYPE``/``HELP``
    before the family's samples and at most once, known types, counters
    ending in ``_total``, no duplicate ``(name, labels)`` samples,
    histogram completeness (``le`` labels, monotone cumulative buckets,
    a ``+Inf`` bucket equal to ``_count``, ``_sum``/``_count`` present),
    and a trailing newline.
    """
    problems: list[str] = []
    if text and not text.endswith("\n"):
        problems.append("exposition must end with a newline")
    meta: dict[str, dict] = {}
    seen_samples: set[tuple[str, tuple]] = set()
    sample_rows: list[tuple[int, str, tuple[tuple[str, str], ...], float]] = []

    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                kind, name = parts[1], parts[2]
                if not _NAME_RE.match(name):
                    problems.append(
                        f"line {line_number}: invalid metric name {name!r}"
                    )
                entry = meta.setdefault(
                    name, {"type": None, "help": None, "sampled": False}
                )
                if entry["sampled"]:
                    problems.append(
                        f"line {line_number}: {kind} for {name} appears "
                        "after its samples"
                    )
                key = kind.lower()
                if entry[key] is not None:
                    problems.append(
                        f"line {line_number}: duplicate {kind} for {name}"
                    )
                entry[key] = parts[3] if len(parts) > 3 else ""
                if kind == "TYPE" and entry["type"] not in _TYPES:
                    problems.append(
                        f"line {line_number}: unknown TYPE "
                        f"{entry['type']!r} for {name}"
                    )
            continue
        match = _SAMPLE_RE.match(line.strip())
        if match is None:
            problems.append(f"line {line_number}: unparseable line {raw!r}")
            continue
        name = match.group("name")
        labels = _parse_labels(match.group("labels"))
        if labels is None:
            problems.append(f"line {line_number}: malformed labels {raw!r}")
            continue
        for label_name, _value in labels:
            if not _LABEL_RE.match(label_name):
                problems.append(
                    f"line {line_number}: invalid label name {label_name!r}"
                )
        value_text = match.group("value")
        if value_text not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value_text)
            except ValueError:
                problems.append(
                    f"line {line_number}: unparseable value {value_text!r}"
                )
                continue
        value = (
            math.inf
            if value_text == "+Inf"
            else -math.inf
            if value_text == "-Inf"
            else math.nan
            if value_text == "NaN"
            else float(value_text)
        )
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            base = name.removesuffix(suffix)
            if base != name and base in meta:
                family = base
                break
        if family in meta:
            meta[family]["sampled"] = True
        sample_key = (name, labels)
        if sample_key in seen_samples:
            problems.append(
                f"line {line_number}: duplicate sample {name}"
                f"{_format_labels(labels)}"
            )
        seen_samples.add(sample_key)
        sample_rows.append((line_number, name, labels, value))

    for name, entry in meta.items():
        if entry["type"] == "counter" and not name.endswith("_total"):
            problems.append(f"counter {name} should end in _total")
        if entry["type"] is None:
            problems.append(f"metric {name} has HELP but no TYPE")

    # Histogram shape checks, per family and non-le label set.
    histograms = {
        name for name, entry in meta.items() if entry["type"] == "histogram"
    }
    for family in histograms:
        buckets: dict[tuple, list[tuple[float, float]]] = {}
        counts: dict[tuple, float] = {}
        sums: set[tuple] = set()
        for _line, name, labels, value in sample_rows:
            base_labels = tuple(
                (k, v) for k, v in labels if k != "le"
            )
            if name == f"{family}_bucket":
                le = dict(labels).get("le")
                if le is None:
                    problems.append(
                        f"{family}_bucket sample is missing its le label"
                    )
                    continue
                upper = (
                    math.inf if le == "+Inf" else float(le)
                )
                buckets.setdefault(base_labels, []).append((upper, value))
            elif name == f"{family}_count":
                counts[base_labels] = value
            elif name == f"{family}_sum":
                sums.add(base_labels)
        for base_labels, rows in buckets.items():
            rows.sort(key=lambda row: row[0])
            uppers = [upper for upper, _count in rows]
            values = [count for _upper, count in rows]
            if uppers[-1] != math.inf:
                problems.append(f"{family}: no +Inf bucket")
            if any(b2 < b1 for b1, b2 in zip(values, values[1:])):
                problems.append(
                    f"{family}: bucket counts are not cumulative/monotone"
                )
            if base_labels in counts and values and (
                values[-1] != counts[base_labels]
            ):
                problems.append(
                    f"{family}: +Inf bucket ({values[-1]:g}) != _count "
                    f"({counts[base_labels]:g})"
                )
            if base_labels not in counts:
                problems.append(f"{family}: missing _count sample")
            if base_labels not in sums:
                problems.append(f"{family}: missing _sum sample")
    return problems
