"""Evidence-extraction baselines GCED is compared against.

* :class:`SentenceSelectorBaseline` — sentence-level minimal context in the
  style of Min et al. (2018), the approach the paper's introduction
  critiques (Fig. 1).
* :class:`FullContextBaseline` — the whole context as "evidence".
* :class:`WindowBaseline` — a fixed token window around the answer span.
* :class:`RandomSpanBaseline` — a random sentence (noise floor).
"""

from repro.baselines.sentence_selector import SentenceSelectorBaseline
from repro.baselines.simple import (
    EvidenceBaseline,
    FullContextBaseline,
    WindowBaseline,
    RandomSpanBaseline,
)

__all__ = [
    "EvidenceBaseline",
    "SentenceSelectorBaseline",
    "FullContextBaseline",
    "WindowBaseline",
    "RandomSpanBaseline",
]
