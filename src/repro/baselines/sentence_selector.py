"""Sentence-level minimal-context baseline (Min et al. 2018 style).

Selects the smallest set of whole sentences from which the QA model can
recover the answer — informative, but carrying the intra-sentence noise
that motivates GCED's token-level distillation (the Fig. 1 critique).
"""

from __future__ import annotations

from repro.baselines.simple import EvidenceBaseline
from repro.core.ase import AnswerOrientedSentenceExtractor
from repro.qa.base import QAModel

__all__ = ["SentenceSelectorBaseline"]


class SentenceSelectorBaseline(EvidenceBaseline):
    """Minimal sentence subset supporting the answer.

    Reuses the ASE machinery: the paper's own ASE module *is* a
    sentence-selector; the baseline stops there instead of distilling
    further.
    """

    name = "sentence-selector"

    def __init__(self, qa_model: QAModel, max_sentences: int = 3) -> None:
        self._ase = AnswerOrientedSentenceExtractor(
            qa_model, max_sentences=max_sentences
        )

    def extract(self, question: str, answer: str, context: str) -> str:
        return self._ase.extract(question, answer, context).text
