"""Trivial evidence baselines: full context, answer window, random sentence."""

from __future__ import annotations

import abc

from repro.text.sentences import split_sentences
from repro.text.tokenizer import detokenize, tokenize
from repro.utils.rng import rng_from

__all__ = [
    "EvidenceBaseline",
    "FullContextBaseline",
    "WindowBaseline",
    "RandomSpanBaseline",
]


class EvidenceBaseline(abc.ABC):
    """Interface shared by all evidence extractors (GCED and baselines)."""

    name: str = "baseline"

    @abc.abstractmethod
    def extract(self, question: str, answer: str, context: str) -> str:
        """Return the evidence text for the QA pair."""


class FullContextBaseline(EvidenceBaseline):
    """The degenerate baseline: evidence = the whole context."""

    name = "full-context"

    def extract(self, question: str, answer: str, context: str) -> str:
        return context


class WindowBaseline(EvidenceBaseline):
    """A fixed token window centred on the answer's first occurrence.

    Concise but oblivious to syntax: windows routinely cut through clause
    boundaries, which is what costs this baseline readability.
    """

    name = "answer-window"

    def __init__(self, window: int = 8) -> None:
        if window < 1:
            raise ValueError("window must be at least 1")
        self.window = window

    def extract(self, question: str, answer: str, context: str) -> str:
        tokens = tokenize(context)
        if not tokens:
            return ""
        pos = context.lower().find(answer.lower()) if answer else -1
        if pos < 0:
            center = len(tokens) // 2
        else:
            center = next(
                (i for i, t in enumerate(tokens) if t.end > pos), len(tokens) // 2
            )
        lo = max(0, center - self.window)
        hi = min(len(tokens), center + self.window + 1)
        return detokenize([t.text for t in tokens[lo:hi]])


class RandomSpanBaseline(EvidenceBaseline):
    """A uniformly random sentence — the noise floor for evidence quality."""

    name = "random-sentence"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def extract(self, question: str, answer: str, context: str) -> str:
        sentences = split_sentences(context)
        if not sentences:
            return context
        rng = rng_from(self.seed, f"random-span:{hash(context) & 0xFFFFFFFF}")
        return sentences[int(rng.integers(0, len(sentences)))].text
