"""Informativeness ``I(e)`` — Principle 1 / Eq. 1.

An evidence is informative if a QA model re-predicts the input answer from
the evidence alone.  ``I(e)`` is the F1 overlap between the re-predicted
answer and the input answer.
"""

from __future__ import annotations

import contextlib
from typing import Sequence

from repro.metrics.overlap import f1_score
from repro.qa.base import QAModel
from repro.utils.cache import LRUCache

__all__ = ["InformativenessScorer"]


class InformativenessScorer:
    """Scores evidence informativeness with a QA model.

    Results are cached on ``(question, answer, evidence)`` because the clip
    search re-scores many overlapping candidates.  Predictions run in
    the QA model's compiled-context *transient* mode: candidate
    evidences recur only briefly (identical candidates for the adjacent
    questions of one shared paragraph), so they compile into the
    compiler's scratch cache instead of churning paragraph artifacts
    out of the main LRU.
    """

    def __init__(self, qa_model: QAModel, cache_size: int = 8192) -> None:
        self.qa_model = qa_model
        self._cache = LRUCache(capacity=cache_size)

    def _one_shot_texts(self):
        """Context manager routing compilation to the scratch cache."""
        compiler = getattr(self.qa_model, "context_compiler", None)
        if compiler is None:
            return contextlib.nullcontext()
        return compiler.transient()

    def score(self, question: str, answer: str, evidence: str) -> float:
        """``I(e)`` in [0, 1]; empty evidence scores 0."""
        if not evidence.strip():
            return 0.0
        key = (question, answer, evidence)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        with self._one_shot_texts():
            predicted = self.qa_model.predict(question, evidence)
        value = f1_score(predicted.text, answer)
        self._cache.put(key, value)
        return value

    def score_batch(
        self, question: str, answer: str, evidences: Sequence[str]
    ) -> list[float]:
        """``I(e)`` for many candidate evidences of one QA pair.

        Byte-identical to calling :meth:`score` per evidence, but all
        cache misses are deduplicated and issued as a single
        :meth:`QAModel.predict_batch` call — one clip iteration costs one
        batched prediction instead of ``max_clip_candidates`` serial ones.
        """
        values: list[float | None] = [None] * len(evidences)
        pending: dict[str, list[int]] = {}
        for idx, evidence in enumerate(evidences):
            if not evidence.strip():
                values[idx] = 0.0
                continue
            cached = self._cache.get((question, answer, evidence))
            if cached is not None:
                values[idx] = cached
            else:
                pending.setdefault(evidence, []).append(idx)
        if pending:
            texts = list(pending)
            with self._one_shot_texts():
                predictions = self.qa_model.predict_batch(question, texts)
            for evidence, predicted in zip(texts, predictions):
                value = f1_score(predicted.text, answer)
                self._cache.put((question, answer, evidence), value)
                for idx in pending[evidence]:
                    values[idx] = value
        return values  # type: ignore[return-value]
