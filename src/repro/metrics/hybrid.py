"""Hybrid evidence score ``H(e) = α·I(e) + β·R(e) + γ·C(e)`` (Eq. 5).

The paper sets the weights "by experiments" and uses equal weights in the
human evaluation; ``HybridWeights()`` defaults to α = β = γ = 1/3.

Scale calibration: raw ``C(e) = 1/L(e)`` lives on a much smaller scale
than ``I(e) ∈ [0, 1]``.  ``HybridScorer`` therefore normalizes conciseness
to ``(L(a) + 1) / L(e)`` — a strictly monotone transform of Eq. 2 (so the
clip search's *ordering* matches the paper's) that equals 1.0 for the
shortest admissible evidence and decays toward 0 for verbose ones, putting
all three criteria on [0, 1] and making H a genuine trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.conciseness import conciseness_score, evidence_length
from repro.metrics.informativeness import InformativenessScorer
from repro.metrics.readability import ReadabilityScorer

__all__ = ["HybridWeights", "EvidenceScores", "HybridScorer"]


@dataclass(frozen=True)
class HybridWeights:
    """Weights (α, β, γ) for informativeness, readability, conciseness.

    Must be positive and sum to 1 (the paper's constraint).
    """

    alpha: float = 1.0 / 3.0
    beta: float = 1.0 / 3.0
    gamma: float = 1.0 / 3.0

    def __post_init__(self) -> None:
        for value in (self.alpha, self.beta, self.gamma):
            if value < 0:
                raise ValueError("hybrid weights must be non-negative")
        total = self.alpha + self.beta + self.gamma
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"hybrid weights must sum to 1, got {total}")


@dataclass(frozen=True)
class EvidenceScores:
    """All four quality scores of one evidence."""

    informativeness: float
    conciseness: float
    readability: float
    hybrid: float

    @property
    def is_valid(self) -> bool:
        """False if the evidence was discarded by Eq. 2 (too short)."""
        return self.conciseness != float("-inf")


class HybridScorer:
    """Computes :class:`EvidenceScores` for (question, answer, evidence).

    Args:
        informativeness: QA-model-backed I(e) scorer.
        readability: LM-backed R(e) scorer.
        weights: the (α, β, γ) trade-off.
    """

    def __init__(
        self,
        informativeness: InformativenessScorer,
        readability: ReadabilityScorer,
        weights: HybridWeights | None = None,
    ) -> None:
        self.informativeness = informativeness
        self.readability = readability
        self.weights = weights or HybridWeights()

    def normalized_conciseness(self, evidence: str, answer: str) -> float:
        """Monotone [0, 1] rescaling of Eq. 2 (see module docstring)."""
        raw = conciseness_score(evidence, answer)
        if raw == float("-inf"):
            return float("-inf")
        shortest_valid = evidence_length(answer) + 1
        return min(1.0, shortest_valid * raw)

    def score(self, question: str, answer: str, evidence: str) -> EvidenceScores:
        """Score one candidate evidence; hybrid is -inf for invalid ones."""
        c = self.normalized_conciseness(evidence, answer)
        if c == float("-inf"):
            return EvidenceScores(0.0, float("-inf"), 0.0, float("-inf"))
        i = self.informativeness.score(question, answer, evidence)
        r = self.readability.score(evidence)
        h = self.weights.alpha * i + self.weights.beta * r + self.weights.gamma * c
        return EvidenceScores(
            informativeness=i, conciseness=c, readability=r, hybrid=h
        )
