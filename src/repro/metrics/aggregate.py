"""Corpus-level metric aggregation with confidence intervals.

Experiment tables report means; this module carries the uncertainty that a
careful reproduction should expose: Student-t confidence intervals and
bootstrap comparisons between two evidence-extraction methods.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.statistics import mean_confidence_interval

__all__ = ["MetricSummary", "summarize", "bootstrap_diff"]


@dataclass(frozen=True)
class MetricSummary:
    """Mean with a confidence interval and sample size."""

    name: str
    mean: float
    ci_low: float
    ci_high: float
    n: int

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.mean:.3f} "
            f"[{self.ci_low:.3f}, {self.ci_high:.3f}] (n={self.n})"
        )


def summarize(
    name: str, values: list[float], confidence: float = 0.95
) -> MetricSummary:
    """Mean ± t-interval for one metric's per-example values."""
    mean, lo, hi = mean_confidence_interval(values, confidence=confidence)
    return MetricSummary(name=name, mean=mean, ci_low=lo, ci_high=hi, n=len(values))


def bootstrap_diff(
    sample_a: list[float],
    sample_b: list[float],
    n_resamples: int = 2000,
    seed: int = 0,
) -> tuple[float, float]:
    """Paired bootstrap of mean(a) - mean(b).

    Returns (mean difference, probability that a <= b) — the significance
    check behind "method A beats method B" claims.
    """
    n = min(len(sample_a), len(sample_b))
    if n == 0:
        raise ValueError("empty samples")
    a = np.asarray(sample_a[:n], dtype=float)
    b = np.asarray(sample_b[:n], dtype=float)
    rng = np.random.default_rng(seed)
    diffs = np.empty(n_resamples)
    for i in range(n_resamples):
        idx = rng.integers(0, n, size=n)
        diffs[i] = a[idx].mean() - b[idx].mean()
    return float(a.mean() - b.mean()), float((diffs <= 0).mean())
