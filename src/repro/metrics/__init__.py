"""The paper's quantitative evidence-quality framework (Sec. II-B)."""

from repro.metrics.overlap import exact_match, f1_score, precision_recall_f1
from repro.metrics.informativeness import InformativenessScorer
from repro.metrics.conciseness import conciseness_score
from repro.metrics.readability import ReadabilityScorer
from repro.metrics.hybrid import HybridWeights, HybridScorer, EvidenceScores
from repro.metrics.aggregate import MetricSummary, summarize, bootstrap_diff

__all__ = [
    "MetricSummary",
    "summarize",
    "bootstrap_diff",
    "exact_match",
    "f1_score",
    "precision_recall_f1",
    "InformativenessScorer",
    "conciseness_score",
    "ReadabilityScorer",
    "HybridWeights",
    "HybridScorer",
    "EvidenceScores",
]
