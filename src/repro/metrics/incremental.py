"""Incremental conciseness/readability for clip-candidate scoring.

The clip search (Alg. 1, SCS) scores up to ``max_clip_candidates``
heavily-overlapping evidences per iteration.  The direct path re-renders
each candidate node set to text, re-tokenizes it, and re-walks the full
trigram sequence — O(len) *model* work per candidate even though two
candidates differ only around one removed subtree.  This module provides
the per-example artifacts that make those scores cheap:

* :class:`TreeTokenArtifacts` — per-node word-token contributions and a
  *separability* analysis: when no token can merge with a neighbour under
  :func:`repro.text.tokenizer.detokenize` (hyphen joins, ``%`` attaching
  to a number), the word-token sequence of any node set is exactly the
  concatenation of its nodes' individual word tokens, so candidates never
  need to be rendered or re-tokenized just to measure length/perplexity.
* :class:`TrigramTermCache` — per-position trigram log-probabilities
  ``log p(w | u, v)`` cached by context triple.  Removing a contiguous
  subtree only perturbs the trigram windows at the removal boundaries, so
  a candidate's sequence costs new model evaluations only there
  (O(boundary)); everything else is a dict hit.  The final reduction is a
  cheap left-to-right float sum kept in exactly the order
  :meth:`NGramLanguageModel.log_probability` uses, so results are
  bit-identical to the direct path.

Exactness contract: every value produced here must equal the direct
computation bit-for-bit.  When separability cannot be guaranteed (a
hazard token is present, or the verification pass fails), callers fall
back to rendering and re-tokenizing — slower, never wrong.
"""

from __future__ import annotations

import math

from repro.lm.ngram import BOS, NGramLanguageModel
from repro.text.tokenizer import word_tokens

__all__ = ["TreeTokenArtifacts", "TrigramTermCache"]

# Above this many cached trigram contexts the cache resets; entries are
# idempotent pure values, so clearing only costs recomputation.
_MAX_TERM_CACHE = 262_144


def _hazardous(token: str) -> bool:
    """True if ``token`` can merge with a neighbour under detokenize in a
    way that changes ``word_tokens`` of the joined text.

    Only two join rules can fuse alphanumeric material across token
    boundaries: hyphen joining (``"big" "-" "wide"`` → ``"big-wide"``, one
    word token instead of two) and ``%`` attaching to a preceding number
    (``"5" "%"`` → ``"5%"``, which the tokenizer reads as a single word
    token).  All other attachments move punctuation only, and word
    tokenization is insensitive to whitespace around punctuation.
    """
    return token == "-" or token.endswith("-") or token == "%"


class TreeTokenArtifacts:
    """Per-node token artifacts for one dependency tree, built once.

    Attributes:
        node_word_tokens: for each node, the word tokens its token string
            contributes in isolation (empty for punctuation).
        separable: True when the concatenation of per-node contributions
            is guaranteed to equal ``word_tokens(render(nodes))`` for
            *every* node subset (no hazard tokens present).
    """

    def __init__(self, tokens: list[str]) -> None:
        self.node_word_tokens: tuple[tuple[str, ...], ...] = tuple(
            tuple(word_tokens(token)) for token in tokens
        )
        self.separable: bool = not any(_hazardous(token) for token in tokens)

    def sequence(self, ordered_nodes: list[int]) -> list[str]:
        """Word-token sequence of a node set (nodes pre-sorted by index).

        Only valid when :attr:`separable` is True.
        """
        seq: list[str] = []
        for node in ordered_nodes:
            seq.extend(self.node_word_tokens[node])
        return seq


class TrigramTermCache:
    """Replays :meth:`NGramLanguageModel.log_probability` from cached terms.

    Each per-position term ``math.log(p(w | u, v))`` is a pure function of
    its trigram context, cached by ``(u, v, w)``.  Candidate sequences in
    one clip search share almost all contexts (only removal boundaries
    change), so the language model is consulted O(boundary) times per
    candidate; the summation itself stays left-to-right over the same
    float values the direct path adds, making the total bit-identical.
    """

    def __init__(self, language_model: NGramLanguageModel) -> None:
        self.language_model = language_model
        self._terms: dict[tuple[str, str, str], float] = {}

    def log_probability(self, tokens: list[str]) -> float:
        """Exactly ``language_model.log_probability(tokens)``.

        ``tokens`` must already be lowercase (word_tokens output or
        per-node artifacts, both lowercased), matching the ``t.lower()``
        padding step of the direct implementation.
        """
        terms = self._terms
        if len(terms) > _MAX_TERM_CACHE:
            terms.clear()
        lm = self.language_model
        u, v = BOS, BOS
        total = 0.0
        for w in tokens:
            key = (u, v, w)
            term = terms.get(key)
            if term is None:
                term = math.log(lm.probability(w, v, u))
                terms[key] = term
            total += term
            u, v = v, w
        return total

    def perplexity(self, tokens: list[str]) -> float:
        """Exactly ``language_model.perplexity(tokens)`` (non-empty input)."""
        if not tokens:
            return float(self.language_model.vocab_size)
        return math.exp(-self.log_probability(tokens) / len(tokens))
