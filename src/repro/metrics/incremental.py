"""Incremental conciseness/readability for clip-candidate scoring.

The clip search (Alg. 1, SCS) scores up to ``max_clip_candidates``
heavily-overlapping evidences per iteration.  The direct path re-renders
each candidate node set to text, re-tokenizes it, and re-walks the full
trigram sequence — O(len) *model* work per candidate even though two
candidates differ only around one removed subtree.  This module provides
the per-example artifacts that make those scores cheap:

* :class:`TreeTokenArtifacts` — per-node word-token contributions and a
  *separability* analysis: when no token can merge with a neighbour under
  :func:`repro.text.tokenizer.detokenize` (hyphen joins, ``%`` attaching
  to a number), the word-token sequence of any node set is exactly the
  concatenation of its nodes' individual word tokens, so candidates never
  need to be rendered or re-tokenized just to measure length/perplexity.
* :class:`TrigramTermCache` — per-position trigram log-probabilities
  ``log p(w | u, v)`` cached by context triple.  Removing a contiguous
  subtree only perturbs the trigram windows at the removal boundaries, so
  a candidate's sequence costs new model evaluations only there
  (O(boundary)); everything else is a dict hit.
* :class:`TrigramPrefixSums` — running sums of the per-position terms of
  one *full* token sequence, built once per context.  A candidate that
  survives as token runs of the full sequence then costs O(boundary)
  term lookups plus O(runs) float subtractions, instead of O(len) dict
  hits and additions per candidate.

Summation-order contract (changed in the context-compiled scoring PR):
the per-position *terms* are bit-identical to the ones the direct
:meth:`NGramLanguageModel.log_probability` walk adds, but the prefix-sum
path groups the additions by surviving run — ``P[b] - P[a]`` plus fresh
boundary terms — instead of strictly left to right.  Float addition is
not associative, so a candidate's total log-probability (and therefore
its readability and hybrid scores) may differ from the direct path in
the last ulps.  The guaranteed equivalence is *within 1e-9*, asserted by
``tests/test_scoring_incremental.py``; pure-prefix candidates (a single
run starting at position 0) remain bit-identical because ``P`` itself is
accumulated left to right.  Conciseness and informativeness are
unaffected and stay bit-exact.

When separability cannot be guaranteed (a hazard token is present, or
the verification pass fails), callers fall back to rendering and
re-tokenizing with the term-cache walk — slower, never outside the
contract.
"""

from __future__ import annotations

import math

from repro.lm.ngram import BOS, NGramLanguageModel
from repro.text.tokenizer import word_tokens

__all__ = ["TreeTokenArtifacts", "TrigramPrefixSums", "TrigramTermCache"]

# Above this many cached trigram contexts the cache resets; entries are
# idempotent pure values, so clearing only costs recomputation.
_MAX_TERM_CACHE = 262_144


def _hazardous(token: str) -> bool:
    """True if ``token`` can merge with a neighbour under detokenize in a
    way that changes ``word_tokens`` of the joined text.

    Only two join rules can fuse alphanumeric material across token
    boundaries: hyphen joining (``"big" "-" "wide"`` → ``"big-wide"``, one
    word token instead of two) and ``%`` attaching to a preceding number
    (``"5" "%"`` → ``"5%"``, which the tokenizer reads as a single word
    token).  All other attachments move punctuation only, and word
    tokenization is insensitive to whitespace around punctuation.
    """
    return token == "-" or token.endswith("-") or token == "%"


class TreeTokenArtifacts:
    """Per-node token artifacts for one dependency tree, built once.

    Attributes:
        node_word_tokens: for each node, the word tokens its token string
            contributes in isolation (empty for punctuation).
        word_offsets: for each node, the index of its first word token in
            the full-tree sequence (the concatenation over all nodes).
        total_words: length of the full-tree word-token sequence.
        separable: True when the concatenation of per-node contributions
            is guaranteed to equal ``word_tokens(render(nodes))`` for
            *every* node subset (no hazard tokens present).
    """

    def __init__(self, tokens: list[str]) -> None:
        self.node_word_tokens: tuple[tuple[str, ...], ...] = tuple(
            tuple(word_tokens(token)) for token in tokens
        )
        offsets: list[int] = []
        total = 0
        for node_tokens in self.node_word_tokens:
            offsets.append(total)
            total += len(node_tokens)
        self.word_offsets: tuple[int, ...] = tuple(offsets)
        self.total_words: int = total
        self.separable: bool = not any(_hazardous(token) for token in tokens)

    def sequence(self, ordered_nodes: list[int]) -> list[str]:
        """Word-token sequence of a node set (nodes pre-sorted by index).

        Only valid when :attr:`separable` is True.
        """
        seq: list[str] = []
        for node in ordered_nodes:
            seq.extend(self.node_word_tokens[node])
        return seq

    def full_sequence(self) -> list[str]:
        """The word-token sequence of the whole tree (all nodes)."""
        return self.sequence(list(range(len(self.node_word_tokens))))

    def runs(self, ordered_nodes: list[int]) -> list[tuple[int, int]]:
        """Surviving word-token runs ``[a, b)`` of a node set, in order.

        Positions index the full-tree sequence; nodes must be pre-sorted
        by index.  Punctuation-only nodes contribute no word tokens, so
        removing one never splits a run.  Only valid when
        :attr:`separable` is True.
        """
        runs: list[tuple[int, int]] = []
        word_tokens_by_node = self.node_word_tokens
        offsets = self.word_offsets
        for node in ordered_nodes:
            width = len(word_tokens_by_node[node])
            if not width:
                continue
            a = offsets[node]
            if runs and runs[-1][1] == a:
                runs[-1] = (runs[-1][0], a + width)
            else:
                runs.append((a, a + width))
        return runs


class TrigramTermCache:
    """Replays :meth:`NGramLanguageModel.log_probability` from cached terms.

    Each per-position term ``math.log(p(w | u, v))`` is a pure function of
    its trigram context, cached by ``(u, v, w)``.  Candidate sequences in
    one clip search share almost all contexts (only removal boundaries
    change), so the language model is consulted O(boundary) times per
    candidate; the summation itself stays left-to-right over the same
    float values the direct path adds, making the total bit-identical.
    """

    def __init__(self, language_model: NGramLanguageModel) -> None:
        self.language_model = language_model
        self._terms: dict[tuple[str, str, str], float] = {}

    def term(self, u: str, v: str, w: str) -> float:
        """``math.log(p(w | u, v))``, cached by the context triple."""
        terms = self._terms
        if len(terms) > _MAX_TERM_CACHE:
            terms.clear()
        key = (u, v, w)
        term = terms.get(key)
        if term is None:
            term = math.log(self.language_model.probability(w, v, u))
            terms[key] = term
        return term

    def log_probability(self, tokens: list[str]) -> float:
        """Exactly ``language_model.log_probability(tokens)``.

        ``tokens`` must already be lowercase (word_tokens output or
        per-node artifacts, both lowercased), matching the ``t.lower()``
        padding step of the direct implementation.
        """
        u, v = BOS, BOS
        total = 0.0
        for w in tokens:
            total += self.term(u, v, w)
            u, v = v, w
        return total

    def perplexity(self, tokens: list[str]) -> float:
        """Exactly ``language_model.perplexity(tokens)`` (non-empty input)."""
        if not tokens:
            return float(self.language_model.vocab_size)
        return math.exp(-self.log_probability(tokens) / len(tokens))


class TrigramPrefixSums:
    """Prefix sums of trigram terms over one full token sequence.

    ``prefix[i]`` is the left-to-right sum of the first ``i`` per-position
    terms of ``sequence`` (BOS-padded, exactly the walk
    :meth:`NGramLanguageModel.log_probability` performs).  A candidate
    described as surviving runs ``[a, b)`` of the sequence then pays
    fresh term lookups only for the first two positions of each run
    after a deletion (their trigram context changed) — everything else
    is a single ``prefix[b] - prefix[k]`` subtraction per run.

    See the module docstring for the summation-order contract: totals
    match the direct left-to-right walk within 1e-9, bit-identical for
    pure-prefix candidates.
    """

    def __init__(self, terms: TrigramTermCache, sequence: list[str]) -> None:
        self.terms = terms
        self.sequence = list(sequence)
        prefix = [0.0] * (len(self.sequence) + 1)
        acc = 0.0
        u, v = BOS, BOS
        for i, w in enumerate(self.sequence):
            acc += terms.term(u, v, w)
            prefix[i + 1] = acc
            u, v = v, w
        self.prefix = prefix

    def log_probability(self, runs: list[tuple[int, int]]) -> float:
        """Log-probability of the subsequence formed by ``runs``.

        ``runs`` are disjoint, ordered, non-empty ``[a, b)`` position
        ranges of :attr:`sequence`; their concatenation is the candidate
        token sequence.
        """
        seq = self.sequence
        prefix = self.prefix
        terms = self.terms
        total = 0.0
        u, v = BOS, BOS
        first = True
        for a, b in runs:
            if first and a == 0:
                # Pure prefix: P[b] is the exact left-to-right sum.
                total += prefix[b]
                if b >= 2:
                    u, v = seq[b - 2], seq[b - 1]
                else:
                    u, v = v, seq[b - 1]
            else:
                # The first two positions after a deletion see a changed
                # trigram context; the rest of the run matches the full
                # sequence and collapses to one subtraction.
                k = min(b, a + 2)
                for p in range(a, k):
                    w = seq[p]
                    total += terms.term(u, v, w)
                    u, v = v, w
                if k < b:
                    total += prefix[b] - prefix[k]
                    u, v = seq[b - 2], seq[b - 1]
            first = False
        return total

    def perplexity(self, runs: list[tuple[int, int]], length: int) -> float:
        """Perplexity of the run subsequence (``length`` = total tokens)."""
        if not length:
            return float(self.terms.language_model.vocab_size)
        return math.exp(-self.log_probability(runs) / length)
