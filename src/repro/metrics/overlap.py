"""Answer-overlap metrics: EM and token-level F1 (Eq. 1).

These follow the SQuAD evaluation exactly (Rajpurkar et al., 2016):
normalization strips case, punctuation and articles; F1 counts common
tokens with multiplicity.
"""

from __future__ import annotations

from collections import Counter

from repro.text.normalize import normalize_answer

__all__ = ["exact_match", "precision_recall_f1", "f1_score", "best_f1", "best_em"]


def exact_match(prediction: str, gold: str) -> float:
    """1.0 if the normalized strings are identical, else 0.0."""
    return float(normalize_answer(prediction) == normalize_answer(gold))


def precision_recall_f1(prediction: str, gold: str) -> tuple[float, float, float]:
    """Token precision, recall and F1 between prediction and gold (Eq. 1).

    ``Pre = Nc / L(pred)``, ``Rec = Nc / L(gold)`` where ``Nc`` is the
    number of common tokens (with multiplicity).

    Both empty → perfect match (the SQuAD-2.0 no-answer convention).
    """
    pred_tokens = normalize_answer(prediction).split()
    gold_tokens = normalize_answer(gold).split()
    if not pred_tokens and not gold_tokens:
        return 1.0, 1.0, 1.0
    if not pred_tokens or not gold_tokens:
        return 0.0, 0.0, 0.0
    common = Counter(pred_tokens) & Counter(gold_tokens)
    n_common = sum(common.values())
    if n_common == 0:
        return 0.0, 0.0, 0.0
    precision = n_common / len(pred_tokens)
    recall = n_common / len(gold_tokens)
    f1 = 2.0 * precision * recall / (precision + recall)
    return precision, recall, f1


def f1_score(prediction: str, gold: str) -> float:
    """Token-level F1 between a prediction and a gold answer."""
    return precision_recall_f1(prediction, gold)[2]


def best_f1(prediction: str, golds: list[str]) -> float:
    """Max F1 over multiple acceptable gold answers (SQuAD convention)."""
    if not golds:
        return f1_score(prediction, "")
    return max(f1_score(prediction, g) for g in golds)


def best_em(prediction: str, golds: list[str]) -> float:
    """Max EM over multiple acceptable gold answers."""
    if not golds:
        return exact_match(prediction, "")
    return max(exact_match(prediction, g) for g in golds)
