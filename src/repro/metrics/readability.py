"""Readability ``R(e)`` — Eq. 3-4: reciprocal perplexity under the LM.

The paper computes perplexity with the QA model's underlying PLM; here the
trigram language model fitted by :class:`repro.qa.training.QATrainer`
plays that role (see DESIGN.md substitutions).
"""

from __future__ import annotations

from repro.lm.ngram import NGramLanguageModel
from repro.text.tokenizer import word_tokens
from repro.utils.cache import LRUCache

__all__ = ["ReadabilityScorer"]


class ReadabilityScorer:
    """``R(e) = 1 / PPL(e)``, cached per evidence string.

    Raw reciprocal perplexity lives on a much smaller scale than I and C
    (PPL of fluent text may be 5-50), so a calibration exponent
    ``1 / PPL**gamma`` with gamma < 1 is exposed; the default 0.5 maps
    typical fluent corpus sentences into the same [0, 1] band as the other
    two criteria, which is what makes the hybrid trade-off meaningful.
    """

    def __init__(
        self,
        language_model: NGramLanguageModel,
        gamma: float = 0.5,
        cache_size: int = 8192,
    ) -> None:
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        self.language_model = language_model
        self.gamma = gamma
        self._cache = LRUCache(capacity=cache_size)

    def perplexity(self, evidence: str) -> float:
        """Per-token perplexity of the evidence text."""
        return self.language_model.perplexity(word_tokens(evidence))

    def score(self, evidence: str) -> float:
        """``R(e)`` in (0, 1]; empty evidence scores 0."""
        tokens = word_tokens(evidence)
        if not tokens:
            return 0.0
        cached = self._cache.get(evidence)
        if cached is not None:
            return cached
        ppl = self.language_model.perplexity(tokens)
        value = self.score_from_perplexity(ppl)
        self._cache.put(evidence, value)
        return value

    def score_from_perplexity(self, ppl: float) -> float:
        """The ``R(e)`` calibration applied to a precomputed perplexity."""
        return 1.0 / max(ppl, 1.0) ** self.gamma

    def seed(self, evidence: str, value: float) -> None:
        """Install an externally computed score for ``evidence``.

        The incremental scoring engine computes ``R(e)`` from cached
        trigram terms (bit-identical to :meth:`score`); seeding the
        string-keyed cache lets later direct lookups — e.g. the finalize
        stage re-scoring the winning evidence — hit instead of recomputing.
        """
        self._cache.put(evidence, value)
