"""Conciseness ``C(e)`` — Principle 2 / Eq. 2.

``C(e) = 1 / L(e)`` when the evidence is strictly longer than the answer,
and ``-inf`` otherwise (such evidences are discarded: an evidence no longer
than its answer cannot *explain* it).
"""

from __future__ import annotations

from repro.text.tokenizer import word_tokens

__all__ = ["conciseness_score", "evidence_length"]


def evidence_length(text: str) -> int:
    """Length in word tokens (punctuation excluded, as the paper counts words)."""
    return len(word_tokens(text))


def conciseness_score(evidence: str, answer: str) -> float:
    """``C(e)`` per Eq. 2.

    >>> conciseness_score("Denver Broncos won the title", "Denver Broncos")
    0.2
    >>> conciseness_score("Denver Broncos", "Denver Broncos")
    -inf
    """
    len_e = evidence_length(evidence)
    len_a = evidence_length(answer)
    if len_e <= len_a:
        return float("-inf")
    return 1.0 / len_e
