"""Uniform attention — ablation stand-in for the multi-head substrate.

Assigns every token pair the same weight, removing the content signal SGS
uses to order its growth and SCS uses to break ties.  DESIGN.md lists
"does the attention source matter?" as a design-choice ablation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["UniformAttention"]


class UniformAttention:
    """Drop-in replacement for :class:`MultiHeadAttention` with flat weights."""

    def __init__(self, dim: int = 64) -> None:
        self.dim = dim

    def attention_matrix(self, tokens: Sequence[str]) -> np.ndarray:
        n = len(tokens)
        if n == 0:
            return np.zeros((0, 0))
        return np.full((n, n), 1.0 / n)

    def head_attention(self, tokens: Sequence[str]) -> np.ndarray:
        return self.attention_matrix(tokens)[None, :, :]

    def edge_weights(self, tokens: Sequence[str]) -> np.ndarray:
        return self.attention_matrix(tokens)

    def encode(self, tokens: Sequence[str]) -> np.ndarray:
        return np.zeros((len(tokens), self.dim))
