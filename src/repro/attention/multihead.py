"""Scaled dot-product multi-head self-attention (Eq. 6-8), in numpy.

The paper derives edge weights for the weighted syntactic parsing tree from
the first-layer encoder attention of the PLM: 16 heads, ``d_k = 64``,
softmax-normalized scaled dot products, heads concatenated through an
output projection.  This module reproduces that computation over the
co-occurrence embeddings of :class:`repro.lm.CooccurrenceEmbeddings`; the
projection matrices are deterministic functions of the seed, standing in
for the PLM's trained parameters.

What downstream GCED consumes is the *token-pair attention weight matrix*
``W[i, j]`` — how much token ``i`` attends to token ``j`` — averaged over
heads, plus a symmetric variant used to weight tree edges.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.lm.embeddings import CooccurrenceEmbeddings
from repro.utils.rng import rng_from

__all__ = ["MultiHeadAttention"]


def _softmax(scores: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = scores - scores.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


class MultiHeadAttention:
    """Multi-head self-attention over token embeddings.

    Args:
        embeddings: fitted co-occurrence embeddings supplying token vectors.
        heads: number of attention heads (paper: 16).
        d_k: per-head key/query dimension (paper: 64).
        seed: seed deriving the fixed projection matrices W_q/W_k/W_v per
            head and the output projection W_o.
        content_bias: weight of a similarity bias added to the attention
            logits.  Random projections of low-dimensional embeddings alone
            carry a weak relatedness signal; the bias term mixes in the raw
            embedding dot product (the quantity the projections of a
            *trained* PLM would amplify), keeping the substrate's behaviour
            aligned with first-layer PLM attention: related tokens attend
            more strongly.
    """

    def __init__(
        self,
        embeddings: CooccurrenceEmbeddings,
        heads: int = 16,
        d_k: int = 64,
        seed: int = 0,
        content_bias: float = 2.0,
    ) -> None:
        if heads < 1:
            raise ValueError("heads must be at least 1")
        if d_k < 1:
            raise ValueError("d_k must be at least 1")
        self.embeddings = embeddings
        self.heads = heads
        self.d_k = d_k
        self.seed = seed
        self.content_bias = content_bias
        dim = embeddings.dim
        rng = rng_from(seed, "attention-projections")
        scale = 1.0 / np.sqrt(dim)
        # One (dim, d_k) projection triple per head, as in Eq. 7.
        self._w_q = rng.standard_normal((heads, dim, d_k)) * scale
        self._w_k = rng.standard_normal((heads, dim, d_k)) * scale
        self._w_v = rng.standard_normal((heads, dim, d_k)) * scale
        self._w_o = rng.standard_normal((heads * d_k, dim)) * scale

    # ---------------------------------------------------------------- core
    def head_attention(self, tokens: Sequence[str]) -> np.ndarray:
        """Per-head attention tensor of shape (heads, n, n).

        ``result[h, i, j]`` is the softmax weight with which token ``i``
        attends to token ``j`` in head ``h``.
        """
        n = len(tokens)
        if n == 0:
            return np.zeros((self.heads, 0, 0))
        x = self.embeddings.matrix(tokens)  # (n, dim)
        sim = x @ x.T  # raw content relatedness
        logits = np.empty((self.heads, n, n))
        for h in range(self.heads):
            q = x @ self._w_q[h]  # (n, d_k)
            k = x @ self._w_k[h]
            logits[h] = (q @ k.T) / np.sqrt(self.d_k) + self.content_bias * sim
        return _softmax(logits, axis=-1)

    def attention_matrix(self, tokens: Sequence[str]) -> np.ndarray:
        """Head-averaged attention weights, shape (n, n), rows sum to 1."""
        per_head = self.head_attention(tokens)
        if per_head.size == 0:
            return np.zeros((0, 0))
        return per_head.mean(axis=0)

    def edge_weights(self, tokens: Sequence[str]) -> np.ndarray:
        """Symmetric token-pair weights for annotating tree edges.

        The parse tree's parent→child edges are undirected dependencies for
        the purposes of SGS/SCS, so the weight of edge (i, j) is the mean of
        the two attention directions.
        """
        attn = self.attention_matrix(tokens)
        return (attn + attn.T) / 2.0

    def encode(self, tokens: Sequence[str]) -> np.ndarray:
        """Full multi-head output (Eq. 8): concat heads, project with W_o.

        Returned shape is (n, dim).  GCED itself only needs the attention
        weights, but the contextualized vectors are exposed for the
        embedding-based QA scorer.
        """
        n = len(tokens)
        if n == 0:
            return np.zeros((0, self.embeddings.dim))
        x = self.embeddings.matrix(tokens)
        per_head = self.head_attention(tokens)
        outputs = []
        for h in range(self.heads):
            v = x @ self._w_v[h]  # (n, d_k)
            outputs.append(per_head[h] @ v)
        concat = np.concatenate(outputs, axis=1)  # (n, heads * d_k)
        return concat @ self._w_o
