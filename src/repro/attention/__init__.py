"""Multi-head self-attention substrate producing token-pair weights."""

from repro.attention.multihead import MultiHeadAttention
from repro.attention.uniform import UniformAttention

__all__ = ["MultiHeadAttention", "UniformAttention"]
