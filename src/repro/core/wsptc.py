"""Weighted Syntactic Parsing Tree Constructor (WSPTC) — Sec. III-D.

Parses the answer-oriented sentences into a token-level tree (L-PCFG parse
lexicalized into dependencies) and annotates every edge with the
multi-head attention weight between the child and parent tokens (Eq. 6-8).
"""

from __future__ import annotations

from repro.attention.multihead import MultiHeadAttention
from repro.parsing.dependency import SyntacticParser
from repro.parsing.tree import DependencyTree
from repro.text.tokenizer import Token

__all__ = ["WeightedTreeConstructor"]


class WeightedTreeConstructor:
    """Builds the weighted syntactic parsing tree for the AOS tokens.

    Multi-sentence AOS inputs are parsed jointly: each sentence gets its
    own parse, and sentence roots after the first attach to the first
    sentence's root, giving one connected tree over all token indices (the
    paper's tree in Fig. 6 likewise spans multiple sentences).
    """

    def __init__(
        self,
        parser: SyntacticParser,
        attention: MultiHeadAttention,
    ) -> None:
        self.parser = parser
        self.attention = attention

    def _sentence_boundaries(self, tokens: list[Token]) -> list[tuple[int, int]]:
        """Split the token list at sentence-final punctuation."""
        boundaries: list[tuple[int, int]] = []
        start = 0
        for i, tok in enumerate(tokens):
            if tok.text in (".", "!", "?"):
                boundaries.append((start, i + 1))
                start = i + 1
        if start < len(tokens):
            boundaries.append((start, len(tokens)))
        return boundaries or [(0, len(tokens))]

    def build(self, tokens: list[Token]) -> DependencyTree:
        """Construct the weighted tree over ``tokens``."""
        if not tokens:
            raise ValueError("WSPTC needs at least one token")
        words = [t.text for t in tokens]
        parents = [-1] * len(tokens)
        first_root: int | None = None
        for start, end in self._sentence_boundaries(tokens):
            sent_words = words[start:end]
            if not sent_words:
                continue
            sent_tree = self.parser.parse(sent_words)
            for local in range(len(sent_words)):
                parent_local = sent_tree.parent(local)
                parents[start + local] = (
                    -1 if parent_local == -1 else start + parent_local
                )
            root_global = start + sent_tree.root
            if first_root is None:
                first_root = root_global
            else:
                parents[root_global] = first_root
        tree = DependencyTree(words, parents)

        weights = self.attention.edge_weights(words)
        for node in range(len(tree)):
            parent = tree.parent(node)
            if parent != -1:
                tree.set_weight(node, weights[node, parent])
        return tree
