"""Serialization of distillation results (JSON / JSONL).

A downstream QA service stores the evidence, its scores, and the trace so
that every served answer remains auditable — the traceability property the
paper emphasizes over end-to-end neural explainers.
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterable

from repro.core.pipeline import DistillationResult

__all__ = ["result_to_dict", "write_results_jsonl", "read_results_jsonl"]


def _finite(value: float) -> float | None:
    """JSON has no -inf; invalid scores serialize as null."""
    return value if value == value and abs(value) != float("inf") else None


def result_to_dict(
    result: DistillationResult,
    question: str = "",
    answer: str = "",
) -> dict:
    """Flatten a result (plus its QA pair) into a JSON-safe dict."""
    payload = {
        "question": question,
        "answer": answer,
        "evidence": result.evidence,
        "scores": {
            "informativeness": _finite(result.scores.informativeness),
            "conciseness": _finite(result.scores.conciseness),
            "readability": _finite(result.scores.readability),
            "hybrid": _finite(result.scores.hybrid),
        },
        "reduction": result.reduction,
        "answer_oriented_sentences": [s.text for s in result.ase.sentences],
        "clue_words": list(result.qws.clue_words),
        "forest_size": result.forest_size,
        "grow_steps": [
            {
                "selected_root": step.selected_root,
                "parent": step.parent,
                "weight": step.weight,
                "forest_size_after": step.forest_size_after,
            }
            for step in result.grow_trace
        ],
        "clip_steps": [
            {
                "clipped_root": step.clipped_root,
                "removed": sorted(step.removed_nodes),
                "hybrid_after": _finite(step.hybrid_after),
            }
            for step in result.clip_trace
        ],
        "evidence_token_indices": sorted(result.evidence_nodes),
    }
    if result.retrieval is not None:
        # Only open-context plans set this; closed-plan payloads keep
        # their exact historical shape.
        payload["retrieval"] = result.retrieval
    return payload


def write_results_jsonl(
    path: str | pathlib.Path,
    items: Iterable[tuple[str, str, DistillationResult]],
) -> int:
    """Write (question, answer, result) triples as JSONL; returns the count."""
    path = pathlib.Path(path)
    count = 0
    with path.open("w") as handle:
        for question, answer, result in items:
            handle.write(
                json.dumps(result_to_dict(result, question, answer)) + "\n"
            )
            count += 1
    return count


def read_results_jsonl(path: str | pathlib.Path) -> list[dict]:
    """Read serialized results back as plain dicts."""
    path = pathlib.Path(path)
    return [
        json.loads(line)
        for line in path.read_text().splitlines()
        if line.strip()
    ]
