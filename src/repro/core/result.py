"""The distillation result record produced by the pipeline.

Lives in its own module so the concrete stages
(:mod:`repro.core.stages`) and the pipeline facade
(:mod:`repro.core.pipeline`) can both build results without importing
each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.ase import ASEResult
from repro.core.oec import ClipTrace, GrowTrace
from repro.core.qws import QWSResult
from repro.metrics.hybrid import EvidenceScores
from repro.text.tokenizer import Token

__all__ = ["DistillationResult"]


@dataclass
class DistillationResult:
    """Everything GCED produced for one (question, answer, context) triple.

    Attributes:
        evidence: the distilled evidence text (empty if distillation could
            not find any supported material).
        scores: I/C/R/H of the evidence under the machine metrics.
        ase: the answer-oriented sentence extraction outcome.
        qws: the clue-word selection outcome.
        forest_size: number of trees in the evidence forest.
        grow_trace / clip_trace: step-by-step Grow-and-Clip decisions.
        evidence_nodes: token indices (into the AOS tokens) kept.
        aos_tokens: the tokens of the answer-oriented sentences.
        reduction: fraction of AOS words removed (the paper reports 78.5%
            on SQuAD / 87.2% on TriviaQA relative to the full context).
        retrieval: how the context was resolved on an open-context plan
            (``doc_id``/``score`` from the ``retrieve`` stage, or
            ``{"skipped": True}`` when a context was supplied); ``None``
            on closed-context plans.
    """

    evidence: str
    scores: EvidenceScores
    ase: ASEResult
    qws: QWSResult
    forest_size: int
    grow_trace: list[GrowTrace] = field(default_factory=list)
    clip_trace: list[ClipTrace] = field(default_factory=list)
    evidence_nodes: set[int] = field(default_factory=set)
    aos_tokens: list[Token] = field(default_factory=list)
    reduction: float = 0.0
    retrieval: dict | None = None

    def explain(self) -> str:
        """Human-readable trace of the distillation."""
        lines = []
        if self.retrieval is not None and not self.retrieval.get("skipped"):
            lines.append(
                f"retrieved context: doc {self.retrieval.get('doc_id')} "
                f"(score {self.retrieval.get('score', 0.0):.3f})"
            )
        lines += [
            f"answer-oriented sentences ({len(self.ase.sentences)}): {self.ase.text!r}",
            f"clue words: {', '.join(self.qws.clue_words) or '(none)'}",
            f"evidence forest: {self.forest_size} tree(s)",
        ]
        for step in self.grow_trace:
            lines.append(
                f"  grow: root {step.selected_root} -> parent {step.parent} "
                f"(w={step.weight:.4f}), forest size {step.forest_size_after}"
            )
        for step in self.clip_trace:
            lines.append(
                f"  clip: subtree @{step.clipped_root} removed "
                f"({len(step.removed_nodes)} nodes, H={step.hybrid_after:.4f})"
            )
        lines.append(f"evidence: {self.evidence!r}")
        lines.append(
            f"scores: I={self.scores.informativeness:.3f} "
            f"C={self.scores.conciseness:.3f} R={self.scores.readability:.3f} "
            f"H={self.scores.hybrid:.3f}"
        )
        return "\n".join(lines)
