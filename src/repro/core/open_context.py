"""Open-context evidence distillation: retrieve → distill → re-rank.

The paper's pipeline consumes (question, answer, context) triples; the
open-context workload starts with only the QA pair.  The
:class:`OpenContextDistiller` closes the gap in three moves:

1. **retrieve** the top-k candidate paragraphs from the sharded corpus
   index (:class:`~repro.retrieval.retriever.CorpusRetriever`);
2. **distill** evidence from every candidate as one engine batch
   (:class:`~repro.core.batch.BatchDistiller` — dedup, memoization,
   context-grouped executor chunks all apply);
3. **re-rank** the distilled evidences by hybrid evidence score, so the
   final ordering reflects *evidence quality*, not just lexical overlap
   — a paragraph that merely mentions the answer loses to one whose
   distilled fragment actually supports it.

Ranking is deterministic: hybrid score descending, retrieval rank then
doc id breaking exact ties, failed/invalid candidates last.  The same
:func:`build_outcome` assembles results for the inline path here and the
served ``/ask`` path, which is what makes served-vs-inline byte
equivalence testable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.batch import BatchDistiller
from repro.core.result import DistillationResult
from repro.core.serialize import result_to_dict
from repro.retrieval.retriever import CorpusRetriever, RetrievedParagraph

__all__ = [
    "AskCandidate",
    "AskOutcome",
    "OpenContextDistiller",
    "build_outcome",
]


@dataclass(frozen=True)
class AskCandidate:
    """One retrieved paragraph and what distillation made of it."""

    paragraph: RetrievedParagraph
    result: DistillationResult | None
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.result is not None

    def to_dict(self, question: str, answer: str) -> dict:
        retrieval = {
            "doc_id": self.paragraph.doc_id,
            "rank": self.paragraph.rank,
            "score": self.paragraph.score,
        }
        if self.result is None:
            return {"retrieval": retrieval, "error": self.error}
        payload = result_to_dict(self.result, question, answer)
        payload["retrieval"] = retrieval
        return payload


@dataclass(frozen=True)
class AskOutcome:
    """Ranked open-context distillations for one QA pair."""

    question: str
    answer: str
    candidates: tuple[AskCandidate, ...]

    @property
    def best(self) -> AskCandidate | None:
        """The top-ranked successful candidate, if any."""
        for candidate in self.candidates:
            if candidate.ok:
                return candidate
        return None

    @property
    def errors(self) -> int:
        return sum(1 for candidate in self.candidates if not candidate.ok)

    def to_dict(self) -> dict:
        best = self.best
        return {
            "question": self.question,
            "answer": self.answer,
            "retrieved": len(self.candidates),
            "errors": self.errors,
            "best_evidence": best.result.evidence if best else "",
            "candidates": [
                candidate.to_dict(self.question, self.answer)
                for candidate in self.candidates
            ],
        }


def _rank_key(candidate: AskCandidate) -> tuple:
    """Hybrid score desc; ties by retrieval rank, then doc id; failures last."""
    hit = candidate.paragraph
    if candidate.result is None:
        return (2, 0.0, hit.rank, hit.doc_id)
    hybrid = candidate.result.scores.hybrid
    if not candidate.result.scores.is_valid or not math.isfinite(hybrid):
        return (1, 0.0, hit.rank, hit.doc_id)
    return (0, -hybrid, hit.rank, hit.doc_id)


def build_outcome(
    question: str,
    answer: str,
    hits: list[RetrievedParagraph],
    results: list[DistillationResult | Exception],
) -> AskOutcome:
    """Pair retrieval hits with their distillations and rank by evidence.

    ``results`` is aligned with ``hits``; exceptions (the scheduler's
    per-request error isolation) become failed candidates that rank after
    every successful one instead of poisoning the whole ask.
    """
    candidates = []
    for hit, outcome in zip(hits, results):
        if isinstance(outcome, Exception):
            candidates.append(
                AskCandidate(
                    paragraph=hit,
                    result=None,
                    error=str(outcome) or type(outcome).__name__,
                )
            )
        else:
            candidates.append(AskCandidate(paragraph=hit, result=outcome))
    candidates.sort(key=_rank_key)
    return AskOutcome(
        question=question, answer=answer, candidates=tuple(candidates)
    )


class OpenContextDistiller:
    """Retrieves supporting paragraphs and distills the best evidence.

    Open-context traffic is where the cross-call caches earn their keep:
    popular paragraphs are retrieved for many asks, so their compiled
    context artifacts (:attr:`compiler`) and content-keyed scoring
    sessions stay warm across requests — a re-ask of a QA pair whose
    result memo entry has aged out still skips the per-paragraph
    span-table and clip-score work.

    Args:
        distiller: the warm batch distiller every candidate set runs on.
        retriever: the corpus retriever answering top-k queries.
        top_k: default number of paragraphs to consider per ask.
    """

    def __init__(
        self,
        distiller: BatchDistiller,
        retriever: CorpusRetriever,
        top_k: int = 3,
    ) -> None:
        if top_k < 1:
            raise ValueError("top_k must be at least 1")
        self.distiller = distiller
        self.retriever = retriever
        self.top_k = top_k
        # Convenience handle to the pipeline's compiled-context cache
        # (None for QA models without one): `compiler.snapshot()` shows
        # how much paragraph reuse this ask traffic is getting.  Stats
        # otherwise flow through the distiller's profile.
        self.compiler = distiller.gced.compiler

    def _distill_isolated(
        self, triples: list[tuple[str, str, str]]
    ) -> list[DistillationResult | Exception]:
        """One engine batch, with the scheduler's error-isolation fallback:
        if the batch fails, re-run per item so a single poisoned triple
        yields its exception without failing its batch-mates."""
        try:
            return list(self.distiller.distill_many(triples))
        except Exception:
            results: list[DistillationResult | Exception] = []
            for triple in triples:
                try:
                    results.append(self.distiller.distill_one(*triple))
                except Exception as exc:
                    results.append(exc)
            return results

    def ask(
        self, question: str, answer: str, k: int | None = None
    ) -> AskOutcome:
        """Answer one open-context query (question + answer, no context).

        All candidate paragraphs are distilled as one
        :meth:`BatchDistiller.distill_many` batch, so the configured
        executor (``workers``/``backend``) does the fan-out.
        """
        if k is None:
            k = self.top_k
        hits = self.retriever.retrieve_for_qa(question, answer, k=k)
        results: list[DistillationResult | Exception] = []
        if hits:
            results = self._distill_isolated(
                [(question, answer, hit.text) for hit in hits]
            )
        return build_outcome(question, answer, hits, results)

    def ask_batch(
        self, pairs: list[tuple[str, str]], k: int | None = None
    ) -> list[AskOutcome]:
        """Answer many open-context queries on one engine batch.

        All candidate paragraphs across all pairs are distilled in a
        single :meth:`BatchDistiller.distill_many` call, so context
        grouping and dedup work across the whole request set.
        """
        if k is None:
            k = self.top_k
        per_pair_hits = [
            self.retriever.retrieve_for_qa(question, answer, k=k)
            for question, answer in pairs
        ]
        flat: list[tuple[str, str, str]] = []
        for (question, answer), hits in zip(pairs, per_pair_hits):
            flat.extend((question, answer, hit.text) for hit in hits)
        flat_results = self._distill_isolated(flat) if flat else []
        outcomes: list[AskOutcome] = []
        cursor = 0
        for (question, answer), hits in zip(pairs, per_pair_hits):
            results = flat_results[cursor : cursor + len(hits)]
            cursor += len(hits)
            outcomes.append(build_outcome(question, answer, hits, results))
        return outcomes

    def close(self) -> None:
        self.distiller.close()

    def __enter__(self) -> "OpenContextDistiller":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
