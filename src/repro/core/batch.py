"""Batch distillation — the paper's "speed up distillation" future work.

Distilling a corpus one example at a time re-parses and re-scores the same
sentences constantly.  :class:`BatchDistiller` exploits two structural
facts about QA workloads:

* multiple questions share a context (SQuAD has several QAs per
  paragraph), so grouping by context maximizes the parser/attention/LM
  cache hit rate;
* identical (question, answer, context) triples recur across experiment
  conditions, so finished results are memoized.

It also aggregates per-stage timing so the cost profile of a deployment is
observable (`stats()`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.pipeline import GCED, DistillationResult
from repro.utils.cache import LRUCache
from repro.utils.timing import Timer

__all__ = ["BatchDistiller", "BatchStats"]


@dataclass(frozen=True)
class BatchStats:
    """Aggregate statistics for a batch run."""

    n_distilled: int
    n_cache_hits: int
    total_seconds: float
    mean_ms: float
    mean_reduction: float

    def summary(self) -> str:
        return (
            f"{self.n_distilled} distilled "
            f"({self.n_cache_hits} cache hits), "
            f"{self.total_seconds:.2f}s total, "
            f"{self.mean_ms:.1f}ms/example, "
            f"{100 * self.mean_reduction:.1f}% mean word reduction"
        )


class BatchDistiller:
    """Distills many (question, answer, context) triples efficiently.

    Args:
        gced: the configured pipeline.
        cache_size: memoized finished results (LRU).
    """

    def __init__(self, gced: GCED, cache_size: int = 4096) -> None:
        self.gced = gced
        self._results = LRUCache(capacity=cache_size)
        self.timer = Timer()
        self._n_distilled = 0
        self._n_hits = 0
        self._reductions: list[float] = []

    def distill_one(
        self, question: str, answer: str, context: str
    ) -> DistillationResult:
        """Distill a single triple through the memo cache."""
        key = (question, answer, context)
        cached = self._results.get(key)
        if cached is not None:
            self._n_hits += 1
            return cached
        with self.timer.measure("distill"):
            result = self.gced.distill(question, answer, context)
        self._results.put(key, result)
        self._n_distilled += 1
        self._reductions.append(result.reduction)
        return result

    def distill_many(
        self, triples: Iterable[tuple[str, str, str]]
    ) -> list[DistillationResult]:
        """Distill a sequence of triples, grouped by context for locality.

        The returned list preserves the input order.
        """
        triples = list(triples)
        order = sorted(range(len(triples)), key=lambda i: triples[i][2])
        results: list[DistillationResult | None] = [None] * len(triples)
        for idx in order:
            question, answer, context = triples[idx]
            results[idx] = self.distill_one(question, answer, context)
        return results  # type: ignore[return-value]

    def distill_examples(self, examples: Sequence) -> list[DistillationResult]:
        """Convenience wrapper over :class:`repro.datasets.types.QAExample`."""
        return self.distill_many(
            (e.question, e.primary_answer, e.context) for e in examples
        )

    def stats(self) -> BatchStats:
        total = self.timer.totals.get("distill", 0.0)
        n = max(1, self._n_distilled)
        return BatchStats(
            n_distilled=self._n_distilled,
            n_cache_hits=self._n_hits,
            total_seconds=total,
            mean_ms=1000.0 * total / n,
            mean_reduction=(
                sum(self._reductions) / len(self._reductions)
                if self._reductions
                else 0.0
            ),
        )
