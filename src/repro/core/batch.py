"""Batch distillation — the paper's "speed up distillation" future work.

Distilling a corpus one example at a time re-parses and re-scores the same
sentences constantly.  :class:`BatchDistiller` exploits two structural
facts about QA workloads:

* multiple questions share a context (SQuAD has several QAs per
  paragraph), so grouping by context maximizes the parser/attention/LM
  cache hit rate;
* identical (question, answer, context) triples recur across experiment
  conditions, so finished results are memoized.

Scheduling is delegated to an :mod:`engine executor
<repro.engine.executor>`: ``workers=1`` runs inline, ``workers>1`` fans
context-grouped chunks out to a thread or process pool while preserving
input order and memoization.  Per-stage wall-clock and shared-cache hit
rates aggregate into a :class:`~repro.engine.instrumentation.PipelineProfile`
exposed through :meth:`BatchDistiller.stats` / :meth:`profile`.
"""

from __future__ import annotations

import functools
import operator
import os
import pickle
import threading
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.pipeline import GCED, DistillationResult
from repro.engine.executor import Executor, WarmupReport, build_executor
from repro.engine.instrumentation import CacheStats, PipelineProfile
from repro.faults import CircuitBreaker, fault_point, install_from_env
from repro.obs import trace as obs_trace
from repro.obs.logs import get_logger
from repro.utils.cache import LRUCache, MISSING
from repro.utils.timing import Timer

_log = get_logger("batch")

__all__ = ["BatchDistiller", "BatchStats"]

Triple = tuple[str, str, str]

_by_context = operator.itemgetter(2)


def _traced_task_context(task) -> str:
    """Context-locality key for ``(triple, trace_id, parent_id)`` tasks."""
    return task[0][2]

# Per-process pipeline installed by the process-pool initializer, so each
# task ships a (question, answer, context) triple instead of the pipeline.
_WORKER_GCED: GCED | None = None
# Facts recorded by the initializer (pid, snapshot-load ms), collected by
# the parent through the _worker_info warmup probe.
_WORKER_INIT: dict | None = None


def _init_worker(gced, handle=None) -> None:
    """Install the per-process pipeline (and, optionally, a snapshot).

    ``gced`` is either the pipeline object (legacy path; inherited under
    fork) or a :func:`~repro.engine.snapshot.dump_for_workers` payload —
    bytes whose hollow LM/index/caches rehydrate from ``handle``'s
    snapshot, which is attached and *activated first* so unpickling and
    every later lazy rehydration can read it.
    """
    global _WORKER_GCED, _WORKER_INIT
    # Re-read the fault plan in every (re)spawned worker: respawn after a
    # crash starts fresh processes, and chaos plans must reach them too.
    install_from_env()
    started = time.perf_counter()
    snap = None
    if handle is not None:
        from repro.engine.snapshot import PipelineSnapshot, activate

        snap = PipelineSnapshot.attach(handle)
        activate(snap)
    if isinstance(gced, bytes):
        gced = pickle.loads(gced)
    if snap is not None:
        gced.adopt_snapshot(snap)
    _WORKER_GCED = gced
    _WORKER_INIT = {
        "pid": os.getpid(),
        "snapshot": snap is not None,
        "snapshot_load_ms": round((time.perf_counter() - started) * 1000.0, 3),
    }


def _worker_info() -> dict | None:
    """Warmup probe: what the initializer recorded in this worker."""
    return dict(_WORKER_INIT) if _WORKER_INIT is not None else None


def _adopt_handle(handle) -> dict | None:
    """Re-hydration broadcast task: adopt a newer snapshot in place.

    Runs in a live pool worker.  Attaches the refreshed snapshot,
    activates it, and re-adopts — :meth:`GCED.adopt_snapshot` treats a
    same-or-older generation as an idempotent no-op, so a worker that
    receives the broadcast twice (pool scheduling is best-effort) does
    the expensive index refresh only once.  The previously active
    snapshot is closed (never unlinked — workers don't own segments).
    """
    gced = _WORKER_GCED
    if gced is None:
        return None
    from repro.engine.snapshot import PipelineSnapshot, activate, active

    previous = active()
    if previous is not None and previous.fingerprint == handle.fingerprint:
        if getattr(previous, "generation", 0) >= handle.generation:
            return {
                "pid": os.getpid(),
                "adopted": True,
                "generation": handle.generation,
                "noop": True,
            }
    snap = PipelineSnapshot.attach(handle)
    activate(snap)
    adopted = gced.adopt_snapshot(snap)
    if previous is not None:
        previous.close()
    return {
        "pid": os.getpid(),
        "adopted": adopted,
        "generation": handle.generation,
    }


def _worker_distill(triple: Triple) -> tuple[DistillationResult, PipelineProfile]:
    """Distill in a pool worker, returning the result plus the profile
    *delta* (stage timings and cache hits attributable to this call) so
    the parent can aggregate observability across processes."""
    gced = _WORKER_GCED
    assert gced is not None, "process pool initializer did not run"
    fault_point("worker.distill", detail=triple[2])
    delta = PipelineProfile()
    parent_profile, gced.profile = gced.profile, delta
    before = {
        name: cache.snapshot()[:2]
        for name, cache in gced.shared_caches().items()
    }
    hydration_before = gced.hydration_counts()
    try:
        result = gced.distill(*triple)
    finally:
        gced.profile = parent_profile
    for name, cache in gced.shared_caches().items():
        hits0, misses0 = before.get(name, (0, 0))
        snap = cache.snapshot()
        delta.record_cache(
            CacheStats(
                name=name,
                hits=snap.hits - hits0,
                misses=snap.misses - misses0,
                size=snap.size,
                bytes=snap.bytes,
            )
        )
    for name, (hits, misses) in gced.hydration_counts().items():
        hits0, misses0 = hydration_before.get(name, (0, 0))
        if hits - hits0:
            delta.count(f"hydration_hits.{name}", hits - hits0)
        if misses - misses0:
            delta.count(f"hydration_misses.{name}", misses - misses0)
    return result, delta


def _worker_distill_traced(
    task: tuple[Triple, str, str | None],
) -> tuple[DistillationResult, PipelineProfile, list[obs_trace.Span]]:
    """Traced variant of :func:`_worker_distill` for pool workers.

    The worker opens its own trace joined to the coordinator's
    ``trace_id``, rooted under the coordinator-side ``parent_id``, and
    ships the finished (picklable) span list back with the result so the
    parent folds it into the live trace — the span analogue of the
    profile delta.
    """
    triple, trace_id, parent_id = task
    with obs_trace.start_trace(
        "worker.distill", trace_id=trace_id, parent_id=parent_id,
        pid=os.getpid(),
    ) as handle:
        result, delta = _worker_distill(triple)
    return result, delta, list(handle.trace.spans)


@dataclass(frozen=True)
class BatchStats:
    """Aggregate statistics for a batch run."""

    n_distilled: int
    n_cache_hits: int
    total_seconds: float
    mean_ms: float
    mean_reduction: float
    cache_stats: tuple[CacheStats, ...] = ()
    profile: PipelineProfile | None = field(default=None, compare=False)

    def summary(self) -> str:
        text = (
            f"{self.n_distilled} distilled "
            f"({self.n_cache_hits} cache hits), "
            f"{self.total_seconds:.2f}s total, "
            f"{self.mean_ms:.1f}ms/example, "
            f"{100 * self.mean_reduction:.1f}% mean word reduction"
        )
        cache_parts = [
            stats.describe() for stats in self.cache_stats if stats.lookups
        ]
        if cache_parts:
            text += "; shared caches: " + ", ".join(cache_parts)
        return text


class BatchDistiller:
    """Distills many (question, answer, context) triples efficiently.

    Args:
        gced: the configured pipeline.
        cache_size: memoized finished results (LRU).
        workers: parallelism for :meth:`distill_many` (1 = inline).
        backend: ``"thread"`` shares the pipeline and its caches across a
            thread pool; ``"process"`` ships a pipeline copy to each
            worker process for true multi-core scaling.
        executor: a pre-built executor to use instead of ``workers`` /
            ``backend`` (must run callables in-process, i.e. thread-like).
        snapshot: controls the pipeline-snapshot handoff on the process
            backend.  ``None`` (default) builds one from ``gced``'s warm
            state (owned: unlinked on :meth:`close`); a
            :class:`~repro.engine.snapshot.PipelineSnapshot` is used
            as-is (caller keeps ownership; its fingerprint must match
            ``gced.config``); ``False`` disables the snapshot plane and
            ships the full pipeline through the initializer (cold
            workers, the pre-snapshot behaviour).
        breaker_failures / breaker_reset_s: circuit-breaker tuning for
            the process pool — after ``breaker_failures`` consecutive
            unrecovered pool breaks, batches run serially in the
            coordinator (degraded but correct) until a half-open trial
            succeeds ``breaker_reset_s`` seconds later.
    """

    def __init__(
        self,
        gced: GCED,
        cache_size: int = 4096,
        workers: int = 1,
        backend: str = "thread",
        executor: Executor | None = None,
        snapshot=None,
        breaker_failures: int = 3,
        breaker_reset_s: float = 30.0,
    ) -> None:
        self.gced = gced
        self._snapshot = None
        self._owns_snapshot = False
        if executor is None:
            self.backend = backend
            n_workers = workers if workers > 0 else (os.cpu_count() or 1)
            pool_kwargs = {}
            if backend == "process":
                snap = None
                if n_workers > 1 and snapshot is not False:
                    if snapshot is None:
                        snap = gced.build_snapshot()
                        self._owns_snapshot = True
                    else:
                        snap = snapshot
                        if snap.fingerprint != gced.config.fingerprint():
                            raise ValueError(
                                "stale pipeline snapshot: built under config "
                                f"fingerprint {snap.fingerprint}, but this "
                                "pipeline's config fingerprints as "
                                f"{gced.config.fingerprint()}"
                            )
                if snap is not None:
                    self._snapshot = snap
                    from repro.engine.snapshot import dump_for_workers

                    # Pre-pickled with warm state externalized: the bulky
                    # tables travel once via the snapshot segment, not N
                    # times through initializer payloads (and not at all
                    # by accident under fork's initargs inheritance).
                    payload = dump_for_workers(gced)
                    pool_kwargs = {
                        "initializer": _init_worker,
                        "initargs": (payload, snap.handle),
                    }
                else:
                    pool_kwargs = {
                        "initializer": _init_worker,
                        "initargs": (gced,),
                    }
            executor = build_executor(workers=workers, backend=backend, **pool_kwargs)
        else:
            if getattr(executor, "backend", "thread") == "process":
                raise ValueError(
                    "pre-built process executors lack the pipeline "
                    "initializer; pass workers=/backend='process' instead"
                )
            self.backend = "thread"
        self.executor = executor
        self._worker_profile = PipelineProfile()
        # Warm start: spawn pool workers (and run the process-backend
        # pipeline initializer in each) now, so the first batch measures
        # distillation, not worker startup.  Process pools probe each
        # worker for its initializer facts (pid, snapshot-load ms).
        probe = (
            _worker_info
            if self.backend == "process" and self.executor.workers > 1
            else None
        )
        self._warmup_report: WarmupReport = self.executor.warmup(probe=probe)
        self._worker_profile.count(
            "pool_warmup_ms", round(self._warmup_report.seconds * 1000.0, 3)
        )
        self._results = LRUCache(capacity=cache_size)
        self.timer = Timer()
        # Guards the run counters below: the serving scheduler may flush a
        # batch while another thread reads stats() or distills inline.
        self._stats_lock = threading.Lock()
        self._n_distilled = 0
        self._n_hits = 0
        self._reductions: list[float] = []
        # Trips open after repeated unrecovered pool breaks; while open,
        # _execute() degrades to serial in-parent execution.
        self.pool_breaker = CircuitBreaker(
            name="process_pool",
            failure_threshold=breaker_failures,
            reset_after_s=breaker_reset_s,
        )
        self._degraded_batches = 0
        self._snapshot_refreshes = 0
        self._last_refresh: dict | None = None

    # ------------------------------------------------------------- single
    def distill_one(
        self, question: str, answer: str, context: str
    ) -> DistillationResult:
        """Distill a single triple through the memo cache."""
        key = (question, answer, context)
        cached = self._results.get(key, MISSING)
        if cached is not MISSING:
            with self._stats_lock:
                self._n_hits += 1
            return cached
        with self.timer.measure("distill"):
            result = self.gced.distill(question, answer, context)
        self._record(key, result)
        return result

    def _record(self, key: Triple, result: DistillationResult) -> None:
        self._results.put(key, result)
        with self._stats_lock:
            self._n_distilled += 1
            self._reductions.append(result.reduction)

    # -------------------------------------------------------------- batch
    def distill_many(
        self, triples: Iterable[Triple]
    ) -> list[DistillationResult]:
        """Distill a sequence of triples, grouped by context for locality.

        Duplicate and previously-memoized triples are distilled only once
        (every extra occurrence counts as a cache hit); the rest is
        scheduled on the executor as context-grouped chunks.  The returned
        list preserves the input order.
        """
        triples = [tuple(t) for t in triples]
        results: list[DistillationResult | None] = [None] * len(triples)
        pending: dict[Triple, list[int]] = {}
        for idx, key in enumerate(triples):
            if key in pending:
                # Within-batch duplicate: one distillation will serve it.
                # Credited as a memo hit once the result lands, without a
                # second (miss-counting) lookup now.
                pending[key].append(idx)
                continue
            cached = self._results.get(key, MISSING)
            if cached is not MISSING:
                with self._stats_lock:
                    self._n_hits += 1
                results[idx] = cached
            else:
                pending[key] = [idx]

        if pending:
            jobs = list(pending)
            with self.timer.measure("distill"):
                outcomes = self._execute(jobs)
            for key, result in zip(jobs, outcomes):
                self._record(key, result)
                positions = pending[key]
                with self._stats_lock:
                    self._n_hits += len(positions) - 1
                self._results.record_hits(len(positions) - 1)
                for idx in positions:
                    results[idx] = result
        return results  # type: ignore[return-value]

    def _execute(self, jobs: list[Triple]) -> list[DistillationResult]:
        """Run unique jobs on the executor, folding back worker profiles.

        When the calling thread is being traced, the trace crosses the
        pool boundary explicitly (context variables do not): thread
        workers re-activate the caller's ``(trace, parent_id)``, process
        workers open a joined trace and ship their span buffer back with
        the result exactly like the profile delta.
        """
        active = obs_trace.current()
        if self.backend == "process" and self.executor.workers > 1:
            if self.pool_breaker.allow():
                try:
                    results = self._execute_process(jobs, active)
                except BrokenProcessPool:
                    # The executor already respawned and retried once;
                    # landing here means the pool broke twice in a row.
                    self.pool_breaker.record_failure()
                    _log.warning(
                        "process pool unrecovered; running batch serially "
                        "in the coordinator",
                        exc_info=True,
                        jobs=len(jobs),
                        breaker=self.pool_breaker.state,
                    )
                else:
                    self.pool_breaker.record_success()
                    return results
            return self._execute_degraded(jobs, active)
        if active is not None:
            fn = functools.partial(self._distill_in_context, *active)
            return self.executor.map(fn, jobs, key=_by_context)
        return self.executor.map(self._distill_uncached, jobs, key=_by_context)

    def _execute_process(
        self, jobs: list[Triple], active
    ) -> list[DistillationResult]:
        """The happy-path process-pool fan-out (traced or not)."""
        if active is not None:
            trace, parent_id = active
            tasks = [(job, trace.trace_id, parent_id) for job in jobs]
            rows = self.executor.map(
                _worker_distill_traced, tasks, key=_traced_task_context
            )
            for _result, delta, spans in rows:
                self._worker_profile.merge(delta)
                trace.extend(spans)
            return [result for result, _delta, _spans in rows]
        pairs = self.executor.map(_worker_distill, jobs, key=_by_context)
        for _result, delta in pairs:
            self._worker_profile.merge(delta)
        return [result for result, _delta in pairs]

    def _execute_degraded(
        self, jobs: list[Triple], active
    ) -> list[DistillationResult]:
        """Serial in-parent fallback when the process pool is unusable.

        Same outputs as the pool path (the pipeline is deterministic per
        triple), just slower.  If one job genuinely fails mid-batch, the
        completed batch-mates are memoized *before* the error propagates,
        so the scheduler's per-request retry serves them from the memo
        and only the poisoned item surfaces an error.
        """
        with self._stats_lock:
            self._degraded_batches += 1
        results: list[DistillationResult | None] = [None] * len(jobs)
        done: list[tuple[Triple, DistillationResult]] = []
        token = obs_trace.activate(*active) if active is not None else None
        try:
            for i in sorted(range(len(jobs)), key=lambda i: jobs[i][2]):
                try:
                    results[i] = self.gced.distill(*jobs[i])
                except Exception:
                    for key, result in done:
                        self._record(key, result)
                    raise
                done.append((jobs[i], results[i]))
        finally:
            if token is not None:
                obs_trace.deactivate(token)
        return results  # type: ignore[return-value]

    def _distill_in_context(
        self, trace, parent_id: str | None, triple: Triple
    ) -> DistillationResult:
        """Distill with the submitter's trace re-activated (pool threads)."""
        token = obs_trace.activate(trace, parent_id)
        try:
            return self.gced.distill(*triple)
        finally:
            obs_trace.deactivate(token)

    def _distill_uncached(self, triple: Triple) -> DistillationResult:
        return self.gced.distill(*triple)

    def distill_examples(self, examples: Sequence) -> list[DistillationResult]:
        """Convenience wrapper over :class:`repro.datasets.types.QAExample`."""
        return self.distill_many(
            (e.question, e.primary_answer, e.context) for e in examples
        )

    # ------------------------------------------------------ observability
    @property
    def degraded(self) -> bool:
        """True while the pool breaker is open/half-open (serial fallback)."""
        return self.pool_breaker.degraded

    def recovery_info(self) -> dict:
        """Crash-recovery state for ``/stats``, ``/metrics``, and benches."""
        recovery = getattr(self.executor, "recovery_stats", None)
        executor_stats = (
            recovery()
            if callable(recovery)
            else {"pool_breaks": 0, "chunk_retries": 0, "last_recovery_ms": 0.0}
        )
        with self._stats_lock:
            degraded_batches = self._degraded_batches
        return {
            "degraded": self.degraded,
            "degraded_batches": degraded_batches,
            "breaker": self.pool_breaker.stats(),
            "executor": executor_stats,
        }

    def refresh_snapshot(self) -> dict | None:
        """Rebuild the pipeline snapshot and re-hydrate the live pool.

        The data-plane refresh path (wired to post-compaction by the
        service): builds a new snapshot at ``generation + 1`` from the
        pipeline's *current* warm state, broadcasts an adopt task to the
        running workers — same pids, no respawn — and points future
        respawns at the new handle.  Thread/serial backends (and
        snapshot-less pools) share the coordinator's objects directly,
        so there is nothing to refresh: returns ``None``.
        """
        snap = self._snapshot
        if (
            snap is None
            or self.backend != "process"
            or self.executor.workers <= 1
        ):
            return None
        from repro.engine.snapshot import dump_for_workers

        fresh = self.gced.build_snapshot(generation=snap.generation + 1)
        payload = dump_for_workers(self.gced)
        set_initargs = getattr(self.executor, "set_initargs", None)
        if callable(set_initargs):
            set_initargs((payload, fresh.handle))
        report = self.executor.warmup(
            probe=functools.partial(_adopt_handle, fresh.handle)
        )
        owned = self._owns_snapshot
        self._snapshot = fresh
        self._owns_snapshot = True
        if owned:
            # Safe while stale workers still map it: unlink removes the
            # name, the memory lives until their mappings close.
            snap.close(unlink=True)
        workers = [
            info
            for info in report.worker_infos
            if isinstance(info, dict) and "pid" in info
        ]
        outcome = {
            "generation": fresh.generation,
            "broadcast_ms": round(report.seconds * 1000.0, 3),
            "workers": sorted(
                workers, key=lambda w: (w["pid"], w.get("noop", False))
            ),
        }
        with self._stats_lock:
            self._snapshot_refreshes += 1
            self._last_refresh = outcome
        _log.info(
            "pipeline snapshot refreshed in place",
            generation=fresh.generation,
            workers=len({w["pid"] for w in workers}),
            broadcast_ms=outcome["broadcast_ms"],
        )
        return outcome

    def snapshot_info(self) -> dict | None:
        """Snapshot-plane observability (None when no snapshot is used).

        Reports build cost and size, the warmup barrier's wall-clock, the
        per-worker initializer facts collected by the warmup probe, and
        the aggregate hydration hit rate workers shipped back with their
        profile deltas.
        """
        snap = self._snapshot
        if snap is None:
            return None
        workers: dict[int, dict] = {}
        for info in self._warmup_report.worker_infos:
            if isinstance(info, dict) and "pid" in info:
                workers[info["pid"]] = info
        hits = misses = 0
        for name, value in self._worker_profile.counters.items():
            if name.startswith("hydration_hits."):
                hits += int(value)
            elif name.startswith("hydration_misses."):
                misses += int(value)
        lookups = hits + misses
        with self._stats_lock:
            refreshes = self._snapshot_refreshes
            last_refresh = self._last_refresh
        return {
            "fingerprint": snap.fingerprint,
            "generation": snap.generation,
            "refreshes": refreshes,
            "last_refresh": last_refresh,
            "build_ms": snap.meta.get("build_ms"),
            "bytes": snap.nbytes,
            "shared_memory": snap.shm_name is not None,
            "sections": dict(snap.meta.get("sections", {})),
            "warmup_ms": round(self._warmup_report.seconds * 1000.0, 3),
            "workers": sorted(workers.values(), key=lambda w: w["pid"]),
            "hydration": {
                "hits": hits,
                "misses": misses,
                "hit_rate": hits / lookups if lookups else 0.0,
            },
        }

    def profile(self) -> PipelineProfile:
        """Combined per-stage/per-cache profile of all work so far.

        Thread and serial execution accumulate directly on the shared
        pipeline; process workers ship profile deltas back with each
        result.  The memo cache of finished results appears as
        ``results``.
        """
        combined = PipelineProfile()
        combined.merge(self.gced.snapshot_caches())
        combined.merge(self._worker_profile)
        snap = self._results.snapshot()
        combined.record_cache(
            CacheStats(
                name="results",
                hits=snap.hits,
                misses=snap.misses,
                size=snap.size,
            )
        )
        return combined

    def stats(self) -> BatchStats:
        total = self.timer.totals.get("distill", 0.0)
        with self._stats_lock:
            n_distilled = self._n_distilled
            n_hits = self._n_hits
            reductions = list(self._reductions)
        n = max(1, n_distilled)
        profile = self.profile()
        return BatchStats(
            n_distilled=n_distilled,
            n_cache_hits=n_hits,
            total_seconds=total,
            mean_ms=1000.0 * total / n,
            mean_reduction=(
                sum(reductions) / len(reductions) if reductions else 0.0
            ),
            cache_stats=tuple(
                profile.caches[name] for name in sorted(profile.caches)
            ),
            profile=profile,
        )

    def close(self) -> None:
        """Shut down the worker pool and release any owned snapshot.

        The shared-memory segment is unlinked only after the pool has
        fully shut down (workers hold mappings until then); snapshots
        passed in by the caller are left alone.
        """
        self.executor.close()
        snap, self._snapshot = self._snapshot, None
        if snap is not None and self._owns_snapshot:
            snap.close(unlink=True)

    def __enter__(self) -> "BatchDistiller":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
