"""The end-to-end GCED pipeline (Fig. 3).

``GCED.distill(question, answer, context)`` chains ASE → QWS → WSPTC →
EFC → OEC and returns a :class:`DistillationResult` carrying the evidence,
its quality scores, and a full trace of every decision — the traceability
the paper lists as an advantage over end-to-end neural explainers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.ase import ASEResult, AnswerOrientedSentenceExtractor
from repro.core.config import GCEDConfig
from repro.core.efc import EvidenceForest, EvidenceForestConstructor
from repro.core.oec import ClipTrace, GrowTrace, OptimalEvidenceDistiller
from repro.core.qws import QWSResult, QuestionRelevantWordsSelector
from repro.core.wsptc import WeightedTreeConstructor
from repro.lexicon.wordnet import MiniWordNet
from repro.metrics.hybrid import EvidenceScores, HybridScorer
from repro.metrics.informativeness import InformativenessScorer
from repro.metrics.readability import ReadabilityScorer
from repro.parsing.dependency import SyntacticParser
from repro.qa.base import QAModel
from repro.qa.training import TrainedArtifacts
from repro.text.tokenizer import Token, tokenize, word_tokens

__all__ = ["GCED", "DistillationResult"]


@dataclass
class DistillationResult:
    """Everything GCED produced for one (question, answer, context) triple.

    Attributes:
        evidence: the distilled evidence text (empty if distillation could
            not find any supported material).
        scores: I/C/R/H of the evidence under the machine metrics.
        ase: the answer-oriented sentence extraction outcome.
        qws: the clue-word selection outcome.
        forest_size: number of trees in the evidence forest.
        grow_trace / clip_trace: step-by-step Grow-and-Clip decisions.
        evidence_nodes: token indices (into the AOS tokens) kept.
        aos_tokens: the tokens of the answer-oriented sentences.
        reduction: fraction of AOS words removed (the paper reports 78.5%
            on SQuAD / 87.2% on TriviaQA relative to the full context).
    """

    evidence: str
    scores: EvidenceScores
    ase: ASEResult
    qws: QWSResult
    forest_size: int
    grow_trace: list[GrowTrace] = field(default_factory=list)
    clip_trace: list[ClipTrace] = field(default_factory=list)
    evidence_nodes: set[int] = field(default_factory=set)
    aos_tokens: list[Token] = field(default_factory=list)
    reduction: float = 0.0

    def explain(self) -> str:
        """Human-readable trace of the distillation."""
        lines = [
            f"answer-oriented sentences ({len(self.ase.sentences)}): {self.ase.text!r}",
            f"clue words: {', '.join(self.qws.clue_words) or '(none)'}",
            f"evidence forest: {self.forest_size} tree(s)",
        ]
        for step in self.grow_trace:
            lines.append(
                f"  grow: root {step.selected_root} -> parent {step.parent} "
                f"(w={step.weight:.4f}), forest size {step.forest_size_after}"
            )
        for step in self.clip_trace:
            lines.append(
                f"  clip: subtree @{step.clipped_root} removed "
                f"({len(step.removed_nodes)} nodes, H={step.hybrid_after:.4f})"
            )
        lines.append(f"evidence: {self.evidence!r}")
        lines.append(
            f"scores: I={self.scores.informativeness:.3f} "
            f"C={self.scores.conciseness:.3f} R={self.scores.readability:.3f} "
            f"H={self.scores.hybrid:.3f}"
        )
        return "\n".join(lines)


class GCED:
    """Grow-and-Clip Evidence Distillation.

    Args:
        qa_model: the answer predictor used by ASE and the informativeness
            metric (the paper's fine-tuned PLM).
        artifacts: trained corpus statistics (attention, LM) from
            :class:`repro.qa.training.QATrainer`.
        config: pipeline configuration / ablation switches.
        wordnet: lexical database for QWS (defaults to the embedded one).
        parser: syntactic parser (defaults to a fresh one).
        knowledge: optional entity knowledge graph for knowledge-enhanced
            QWS (the paper's future-work extension; see
            :mod:`repro.lexicon.knowledge`).
    """

    def __init__(
        self,
        qa_model: QAModel,
        artifacts: TrainedArtifacts,
        config: GCEDConfig | None = None,
        wordnet: MiniWordNet | None = None,
        parser: SyntacticParser | None = None,
        knowledge=None,
        knowledge_hops: int = 2,
    ) -> None:
        self.config = config or GCEDConfig()
        self.qa_model = qa_model
        self.artifacts = artifacts
        self.ase = AnswerOrientedSentenceExtractor(
            qa_model, max_sentences=self.config.max_answer_sentences
        )
        self.qws = QuestionRelevantWordsSelector(
            wordnet, knowledge=knowledge, knowledge_hops=knowledge_hops
        )
        self.wsptc = WeightedTreeConstructor(
            parser or SyntacticParser(), artifacts.attention
        )
        self.efc = EvidenceForestConstructor()
        scorer = HybridScorer(
            informativeness=InformativenessScorer(qa_model),
            readability=ReadabilityScorer(artifacts.language_model),
            weights=self.config.effective_weights(),
        )
        self.scorer = scorer
        self.oec = OptimalEvidenceDistiller(
            scorer, clip_times=self.config.clip_times
        )

    # ------------------------------------------------------------ pipeline
    def distill(self, question: str, answer: str, context: str) -> DistillationResult:
        """Distill an informative-yet-concise evidence for the QA pair."""
        if not context.strip():
            raise ValueError("context must be non-empty")
        if not answer.strip():
            # Unanswerable question: there is nothing to support.  The
            # contract mirrors Eq. 2's discard rule — no valid evidence.
            return self._empty_result(question, answer, context)

        # 1. ASE ----------------------------------------------------------
        if self.config.use_ase:
            ase_result = self.ase.extract(question, answer, context)
        else:
            ase_result = self.ase.passthrough(context)
        aos_tokens = tokenize(ase_result.text)
        if not aos_tokens:
            return self._empty_result(question, answer, context, ase_result)

        # 2. QWS ----------------------------------------------------------
        if self.config.use_qws:
            qws_result = self.qws.select(question, aos_tokens)
        else:
            qws_result = self.qws.empty()

        # 3. WSPTC --------------------------------------------------------
        tree = self.wsptc.build(aos_tokens)

        # 4. EFC ----------------------------------------------------------
        answer_indices = self.efc.find_answer_indices(aos_tokens, answer)
        forest = self.efc.build(tree, qws_result.clue_indices, answer_indices)
        if len(forest) == 0:
            # Degenerate case: neither clue nor answer words were located
            # in the AOS (e.g. ASE picked the wrong sentences on a long
            # noisy context).  Fall back to sentence-level evidence — the
            # AOS text itself — rather than returning nothing.
            scores = self.scorer.score(question, answer, ase_result.text)
            total_words = len(word_tokens(context))
            kept_words = len(word_tokens(ase_result.text))
            return DistillationResult(
                evidence=ase_result.text,
                scores=scores,
                ase=ase_result,
                qws=qws_result,
                forest_size=0,
                aos_tokens=aos_tokens,
                reduction=1.0 - kept_words / total_words if total_words else 0.0,
            )

        # 5. OEC ----------------------------------------------------------
        evidence, nodes, grow_trace, clip_trace = self.oec.distill(
            forest,
            question,
            answer,
            use_grow=self.config.use_grow,
            use_clip=self.config.use_clip,
        )
        scores = self.scorer.score(question, answer, evidence)
        total_words = len(word_tokens(context))
        kept_words = len(word_tokens(evidence))
        reduction = 1.0 - kept_words / total_words if total_words else 0.0
        return DistillationResult(
            evidence=evidence,
            scores=scores,
            ase=ase_result,
            qws=qws_result,
            forest_size=len(forest),
            grow_trace=grow_trace,
            clip_trace=clip_trace,
            evidence_nodes=nodes,
            aos_tokens=aos_tokens,
            reduction=reduction,
        )

    def _empty_result(
        self,
        question: str,
        answer: str,
        context: str,
        ase_result: ASEResult | None = None,
        qws_result: QWSResult | None = None,
    ) -> DistillationResult:
        scores = EvidenceScores(0.0, float("-inf"), 0.0, float("-inf"))
        return DistillationResult(
            evidence="",
            scores=scores,
            ase=ase_result or ASEResult((), "", False, 0.0, 0),
            qws=qws_result or QWSResult((), frozenset(), (), {}),
            forest_size=0,
        )
