"""The end-to-end GCED pipeline (Fig. 3), composed from engine stages.

``GCED.distill(question, answer, context)`` runs the registered stage
plan ASE → tokenize → QWS → WSPTC → EFC → OEC → finalize over a
:class:`~repro.engine.stage.StageContext` and returns a
:class:`DistillationResult` carrying the evidence, its quality scores, and
a full trace of every decision — the traceability the paper lists as an
advantage over end-to-end neural explainers.

The pipeline body holds no per-module branching: ablation switches select
stage names in :func:`repro.core.stages.stage_plan`, and per-stage
wall-clock plus shared-cache hit rates accumulate in ``GCED.profile``.
"""

from __future__ import annotations

import time

from repro.core.config import GCEDConfig
from repro.core.efc import EvidenceForestConstructor
from repro.core.oec import OptimalEvidenceDistiller
from repro.core.qws import QuestionRelevantWordsSelector
from repro.core.result import DistillationResult
from repro.core.scoring import CandidateScoringEngine
from repro.core.stages import empty_result, stage_plan
from repro.core.ase import AnswerOrientedSentenceExtractor
from repro.core.wsptc import WeightedTreeConstructor
from repro.engine.instrumentation import CacheStats, PipelineProfile
from repro.engine.registry import StageRegistry, default_registry
from repro.engine.stage import PipelineResources, StageContext
from repro.obs.trace import span as obs_span
from repro.lexicon.wordnet import MiniWordNet
from repro.metrics.hybrid import HybridScorer
from repro.metrics.informativeness import InformativenessScorer
from repro.metrics.readability import ReadabilityScorer
from repro.parsing.dependency import SyntacticParser
from repro.qa.base import QAModel
from repro.qa.training import TrainedArtifacts
from repro.utils.cache import LRUCache, MISSING

__all__ = ["GCED", "DistillationResult"]


class GCED:
    """Grow-and-Clip Evidence Distillation.

    Args:
        qa_model: the answer predictor used by ASE and the informativeness
            metric (the paper's fine-tuned PLM).
        artifacts: trained corpus statistics (attention, LM) from
            :class:`repro.qa.training.QATrainer`.
        config: pipeline configuration / ablation switches.
        wordnet: lexical database for QWS (defaults to the embedded one).
        parser: syntactic parser (defaults to a fresh one).
        knowledge: optional entity knowledge graph for knowledge-enhanced
            QWS (the paper's future-work extension; see
            :mod:`repro.lexicon.knowledge`).
        registry: stage registry to resolve the plan against (defaults to
            the process-wide one; pass a custom registry to splice in
            custom stages).
        plan: explicit stage-name sequence overriding
            :func:`repro.core.stages.stage_plan`; this is how custom
            registered stages (baseline selectors, extra annotators)
            enter the pipeline.

    The classic component handles (``gced.ase``, ``gced.qws``,
    ``gced.wsptc``, ``gced.efc``, ``gced.oec``, ``gced.scorer``) remain
    available; they are the same objects the stages reach through
    ``resources``.
    """

    def __init__(
        self,
        qa_model: QAModel,
        artifacts: TrainedArtifacts,
        config: GCEDConfig | None = None,
        wordnet: MiniWordNet | None = None,
        parser: SyntacticParser | None = None,
        knowledge=None,
        knowledge_hops: int = 2,
        registry: StageRegistry | None = None,
        plan: tuple[str, ...] | None = None,
        retriever=None,
    ) -> None:
        self.config = config or GCEDConfig()
        self.qa_model = qa_model
        self.artifacts = artifacts
        self.ase = AnswerOrientedSentenceExtractor(
            qa_model, max_sentences=self.config.max_answer_sentences
        )
        self.qws = QuestionRelevantWordsSelector(
            wordnet, knowledge=knowledge, knowledge_hops=knowledge_hops
        )
        self.wsptc = WeightedTreeConstructor(
            parser or SyntacticParser(), artifacts.attention
        )
        self.efc = EvidenceForestConstructor()
        self.scorer = HybridScorer(
            informativeness=InformativenessScorer(qa_model),
            readability=ReadabilityScorer(artifacts.language_model),
            weights=self.config.effective_weights(),
        )
        self.scoring_engine = (
            CandidateScoringEngine(self.scorer)
            if self.config.incremental_scoring
            else None
        )
        self.oec = OptimalEvidenceDistiller(
            self.scorer,
            clip_times=self.config.clip_times,
            engine=self.scoring_engine,
        )
        self.retriever = retriever
        # The reader's compiled-context cache (created lazily by
        # SpanScoringQA; None for QA models without one).  Referenced from
        # the resource bundle so batch/serving layers can surface its
        # hit rates next to the other shared caches.
        self.compiler = getattr(qa_model, "context_compiler", None)
        self.resources = PipelineResources(
            config=self.config,
            qa_model=self.qa_model,
            artifacts=self.artifacts,
            ase=self.ase,
            qws=self.qws,
            wsptc=self.wsptc,
            efc=self.efc,
            oec=self.oec,
            scorer=self.scorer,
            retriever=retriever,
            compiler=self.compiler,
        )
        # Resolve the plan to stage instances eagerly: GCED must stay
        # picklable for process executors, and registries may hold
        # non-picklable factories, so the registry itself is not retained.
        self.plan = tuple(plan) if plan is not None else stage_plan(self.config)
        self.stages = (registry or default_registry).build(self.plan)
        self.profile = PipelineProfile()
        # Cached PipelineSnapshot of this pipeline's warm state (built on
        # demand by pipeline_snapshot); owns a shared-memory segment, so
        # it never pickles and is invalidated on config change.
        self._snapshot = None
        # Generation of the snapshot this pipeline last adopted (worker
        # side); None until the first adopt.  A newer generation re-wires
        # the caches *and* refreshes the retrieval index in place.
        self._adopted_generation = None

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_snapshot"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.__dict__.setdefault("_snapshot", None)
        self.__dict__.setdefault("_adopted_generation", None)

    # ------------------------------------------------------------ pipeline
    def make_context(self, question: str, answer: str, context: str) -> StageContext:
        """A fresh stage context wired to this pipeline's resources."""
        return StageContext(
            question=question,
            answer=answer,
            context=context,
            resources=self.resources,
        )

    @property
    def open_context(self) -> bool:
        """True when the plan can resolve its own context via retrieval."""
        return "retrieve" in self.plan

    def distill(
        self, question: str, answer: str, context: str = ""
    ) -> DistillationResult:
        """Distill an informative-yet-concise evidence for the QA pair.

        An empty ``context`` is only admissible on an open-context plan
        (one containing the ``retrieve`` stage), which resolves it
        against the corpus retriever.
        """
        if not context.strip() and not self.open_context:
            raise ValueError("context must be non-empty")
        ctx = self.make_context(question, answer, context)
        if not answer.strip():
            # Unanswerable question: there is nothing to support.  The
            # contract mirrors Eq. 2's discard rule — no valid evidence.
            self.profile.count("unanswerable")
            return empty_result(ctx)
        with obs_span("engine.distill"):
            return self.run_stages(ctx)

    def run_stages(self, ctx: StageContext) -> DistillationResult:
        """Execute the stage plan over ``ctx``, timing each stage."""
        self.profile.count("contexts")
        last = len(self.stages) - 1
        for position, stage in enumerate(self.stages):
            started = time.perf_counter()
            with obs_span(f"stage.{stage.name}") as stage_span:
                stage.run(ctx)
                if ctx.halted and position < last:
                    stage_span.tag(halted=True)
            self.profile.record_stage(
                stage.name,
                time.perf_counter() - started,
                halted=ctx.halted and position < last,
            )
            if ctx.halted:
                break
        if ctx.result is None:
            raise RuntimeError(
                f"stage plan {self.plan} finished without producing a result"
            )
        retrieval = ctx.extras.get("retrieval")
        if retrieval is not None and ctx.result.retrieval is None:
            # Fold the retrieve stage's decision into the result trace
            # (memoized results keep their original retrieval record).
            ctx.result.retrieval = retrieval
        return ctx.result

    # -------------------------------------------------------- snapshot plane
    def build_snapshot(self, use_shared_memory: bool = True, generation: int = 0):
        """Serialize this pipeline's warm state into a fresh snapshot.

        Sections (each present only when it has content): ``lm`` — the
        trigram LM's flat tables; ``index`` — the retrieval shards'
        canonical bytes; ``compiled`` — exported compiled-context
        artifacts; ``sessions`` — warm clip-score entries by session key;
        ``parse`` — the dependency-parse memo; ``informativeness`` /
        ``readability`` — the scorers' string-keyed result caches (small
        floats, but they spare workers the QA predictions and LM walks
        behind them).  The snapshot is stamped with the config
        fingerprint so stale hydration is refused.
        """
        from repro.engine.snapshot import PipelineSnapshot, pack_entry_map

        started = time.perf_counter()
        sections: dict[str, bytes] = {}
        counts: dict[str, int] = {}
        language_model = self.artifacts.language_model
        if getattr(language_model, "_fitted", False):
            sections["lm"] = language_model.snapshot_bytes()
        if self.retriever is not None:
            index = getattr(self.retriever, "index", None)
            if index is not None:
                sections["index"] = index.to_snapshot_bytes()
        if self.compiler is not None:
            states = self.compiler.export_states()
            if states:
                sections["compiled"] = pack_entry_map(states)
                counts["compiled"] = len(states)
        if self.scoring_engine is not None:
            sessions = self.scoring_engine.export_sessions()
            if sessions:
                sections["sessions"] = pack_entry_map(sessions)
                counts["sessions"] = len(sessions)
        parse_cache = self.wsptc.parser.parse_cache()
        if parse_cache is not None:
            parse_entries = dict(parse_cache.items())
            if parse_entries:
                sections["parse"] = pack_entry_map(parse_entries)
                counts["parse"] = len(parse_entries)
        for name, cache in (
            ("informativeness", self.scorer.informativeness._cache),
            ("readability", self.scorer.readability._cache),
        ):
            entries = dict(cache.items())
            if entries:
                sections[name] = pack_entry_map(entries)
                counts[name] = len(entries)
        snapshot = PipelineSnapshot(
            sections,
            fingerprint=self.config.fingerprint(),
            meta={
                "sections": {name: len(blob) for name, blob in sections.items()},
                "counts": counts,
            },
            use_shared_memory=use_shared_memory,
            generation=generation,
        )
        snapshot.meta["build_ms"] = round(
            (time.perf_counter() - started) * 1000.0, 3
        )
        return snapshot

    def pipeline_snapshot(self, refresh: bool = False):
        """The cached snapshot of this pipeline, (re)built when needed.

        Rebuilds when no snapshot exists, when ``refresh`` is passed, or
        when the cached one's fingerprint no longer matches the config (a
        replaced ``config`` invalidates previously serialized state); a
        stale snapshot is unlinked before the rebuild.
        """
        snapshot = self._snapshot
        fingerprint = self.config.fingerprint()
        if (
            snapshot is not None
            and not refresh
            and snapshot.fingerprint == fingerprint
        ):
            return snapshot
        generation = 0
        if snapshot is not None:
            if snapshot.fingerprint != fingerprint:
                self.profile.count("snapshot_stale")
            # A rebuild over the same config is a *refresh* of a changed
            # data plane (e.g. post-compaction): bump the generation so
            # live pools can tell the new snapshot from the one they
            # already adopted.
            generation = snapshot.generation + 1
            snapshot.close(unlink=True)
        self._snapshot = self.build_snapshot(generation=generation)
        return self._snapshot

    def adopt_snapshot(self, snapshot) -> bool:
        """Wire this pipeline's caches to hydrate read-through from
        ``snapshot`` (already attached and activated by the caller).

        Refuses — returning False and counting ``snapshot_stale`` —
        when the snapshot was built under a different config fingerprint:
        ablation switches change scores, so hydrating across configs
        would smuggle one config's results into another's outputs.

        Generations make re-adoption idempotent: adopting the same (or
        an older) generation again is a no-op returning True; adopting a
        *newer* generation of the same config re-wires the cache loaders
        and refreshes the retrieval index in place — how a live worker
        pool picks up a compacted corpus without a respawn.
        """
        from repro.engine.snapshot import EntryMap

        if snapshot.fingerprint != self.config.fingerprint():
            self.profile.count("snapshot_stale")
            return False
        generation = getattr(snapshot, "generation", 0)
        previous = getattr(self, "_adopted_generation", None)
        if previous is not None and generation <= previous:
            self.profile.count("snapshot_readopt_noop")
            return True

        def entry_map(name: str) -> EntryMap | None:
            try:
                blob = snapshot.section(name)
            except (KeyError, RuntimeError):
                return None
            return EntryMap(blob)

        if self.compiler is not None:
            states = entry_map("compiled")
            if states is not None:
                self.compiler.attach_snapshot(
                    lambda text: states.get(text, MISSING)
                )
        if self.scoring_engine is not None:
            sessions = entry_map("sessions")
            if sessions is not None:
                self.scoring_engine.attach_snapshot(
                    lambda key: sessions.get(key, MISSING)
                )
        parse = entry_map("parse")
        if parse is not None:
            self.wsptc.parser.ensure_parse_cache().loader = (
                lambda key: parse.get(key, MISSING)
            )
        for name, cache in (
            ("informativeness", self.scorer.informativeness._cache),
            ("readability", self.scorer.readability._cache),
        ):
            entries = entry_map(name)
            if entries is not None:
                cache.loader = (
                    lambda key, _entries=entries: _entries.get(key, MISSING)
                )
        if previous is not None and generation > previous:
            # A refresh of an already-adopted pipeline: the hollow index
            # bound at spawn may have rehydrated stale postings — rebuild
            # it from the new snapshot's section, preserving identity.
            self._refresh_index_from(snapshot)
            self.profile.count("snapshot_refreshed")
        self._adopted_generation = generation
        self.profile.count("snapshot_adopted")
        return True

    def _refresh_index_from(self, snapshot) -> None:
        """Replace the retriever's index with the snapshot's section."""
        if self.retriever is None:
            return
        try:
            blob = snapshot.section("index")
        except (KeyError, RuntimeError):
            return
        import json as _json

        from repro.retrieval.index import InvertedIndex
        from repro.retrieval.mutable import MutableInvertedIndex

        payload = _json.loads(blob.decode("utf-8"))
        if payload.get("format") == "gced-mutable-index":
            base = InvertedIndex.from_dict(payload["index"])
            tombstones = payload.get("tombstones", ())
            current = self.retriever.index
            if isinstance(current, MutableInvertedIndex):
                current.rebase(base, tombstones)
            else:
                self.retriever.index = MutableInvertedIndex(
                    base, tombstones=tombstones
                )
        else:
            self.retriever.index = InvertedIndex.from_dict(payload)

    def hydration_counts(self) -> dict[str, tuple[int, int]]:
        """Per-cache ``(hits, misses)`` of snapshot read-through traffic."""
        counts: dict[str, tuple[int, int]] = {}
        if self.compiler is not None:
            cache = self.compiler.cache
            counts["compiled_contexts"] = (cache.loader_hits, cache.loader_misses)
        parse_cache = self.wsptc.parser.parse_cache()
        if parse_cache is not None:
            counts["parse"] = (parse_cache.loader_hits, parse_cache.loader_misses)
        for name, cache in (
            ("informativeness", self.scorer.informativeness._cache),
            ("readability", self.scorer.readability._cache),
        ):
            counts[name] = (cache.loader_hits, cache.loader_misses)
        if self.scoring_engine is not None:
            counts["clip_sessions"] = (
                self.scoring_engine.snapshot_hits,
                self.scoring_engine.snapshot_misses,
            )
        return counts

    # ------------------------------------------------------ instrumentation
    def shared_caches(self) -> dict[str, LRUCache]:
        """The live shared caches, by instrumentation name."""
        caches = {
            "parse": self.wsptc.parser.parse_cache(),
            "informativeness": self.scorer.informativeness._cache,
            "readability": self.scorer.readability._cache,
        }
        if self.scoring_engine is not None:
            caches["clip_scores"] = self.scoring_engine.cache
            caches["clip_sessions"] = self.scoring_engine.sessions
        if self.compiler is not None:
            caches["compiled_contexts"] = self.compiler.cache
        return {name: cache for name, cache in caches.items() if cache is not None}

    def snapshot_caches(self) -> PipelineProfile:
        """Refresh ``profile`` with current shared-cache hit/miss counts."""
        for name, cache in self.shared_caches().items():
            snap = cache.snapshot()
            self.profile.record_cache(
                CacheStats(
                    name=name,
                    hits=snap.hits,
                    misses=snap.misses,
                    size=snap.size,
                    bytes=snap.bytes,
                )
            )
        return self.profile
