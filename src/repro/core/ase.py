"""Answer-oriented Sentences Extractor (ASE) — Sec. III-B.

Finds the minimum sentence subset of the context from which the QA model
re-predicts the input answer.  Sentences are fed to the model one at a
time (most relevant first); the subset stops growing the first time the
model recovers the answer.  If the model never recovers it, the tested
subset with the maximum Eq. 1 overlap wins.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.overlap import f1_score
from repro.qa.base import QAModel
from repro.text.normalize import normalize_answer
from repro.text.sentences import Sentence, split_sentences

__all__ = ["ASEResult", "AnswerOrientedSentenceExtractor"]


@dataclass(frozen=True)
class ASEResult:
    """Output of ASE.

    Attributes:
        sentences: the answer-oriented sentence(s) in document order.
        text: their concatenation (the unit all later modules operate on).
        recovered: whether the QA model exactly recovered the input answer.
        overlap: Eq. 1 F1 between the model's prediction from ``text`` and
            the input answer.
        sentences_tried: how many sentences were fed before stopping.
    """

    sentences: tuple[Sentence, ...]
    text: str
    recovered: bool
    overlap: float
    sentences_tried: int


class AnswerOrientedSentenceExtractor:
    """Selects the minimal answer-supporting sentence subset.

    Args:
        qa_model: the answer predictor (Step 2 of Sec. II-B1).
        max_sentences: cap on the subset size; contexts rarely need more
            than two or three sentences to support a span answer.
    """

    def __init__(self, qa_model: QAModel, max_sentences: int = 3) -> None:
        if max_sentences < 1:
            raise ValueError("max_sentences must be at least 1")
        self.qa_model = qa_model
        self.max_sentences = max_sentences

    def _compiled(self, context: str):
        """The model's compiled artifact for ``context``, if it keeps one.

        Span-scoring models expose :meth:`compiled_context`; its artifact
        carries the paragraph's sentence split and per-question sentence
        prediction batches, so repeated ASE runs over the same paragraph
        (and snapshot-hydrated workers) skip both.
        """
        factory = getattr(self.qa_model, "compiled_context", None)
        return factory(context) if factory is not None else None

    def _rank_sentences(
        self,
        question: str,
        answer: str,
        sentences: list[Sentence],
        compiled=None,
    ) -> list[Sentence]:
        """Order sentences by single-sentence answer support.

        A sentence that contains the answer string outranks everything;
        after that, the model's prediction overlap and confidence decide.
        """
        norm_answer = normalize_answer(answer)
        # One batched prediction for all sentences: models amortize their
        # question-side work, results equal per-sentence predicts exactly.
        # The batch is an artifact of (question, paragraph), so compiled
        # contexts memoize it across calls.
        if compiled is not None:
            predictions = compiled.sentence_predictions(
                question,
                lambda: self.qa_model.predict_batch(
                    question, [sent.text for sent in sentences]
                ),
            )
        else:
            predictions = self.qa_model.predict_batch(
                question, [sent.text for sent in sentences]
            )
        ranked: list[tuple[float, float, int, Sentence]] = []
        for sent, prediction in zip(sentences, predictions):
            contains = 1.0 if norm_answer and norm_answer in normalize_answer(sent.text) else 0.0
            overlap = f1_score(prediction.text, answer) if answer else 0.0
            ranked.append((contains, overlap, -sent.index, sent))
        ranked.sort(key=lambda item: (-item[0], -item[1], item[2]))
        return [item[3] for item in ranked]

    def extract(self, question: str, answer: str, context: str) -> ASEResult:
        """Run ASE for one (question, answer, context) triple."""
        compiled = self._compiled(context)
        if compiled is not None:
            sentences = list(compiled.sentences())
        else:
            sentences = split_sentences(context)
        if not sentences:
            return ASEResult((), "", False, 0.0, 0)
        norm_answer = normalize_answer(answer)
        ranked = self._rank_sentences(question, answer, sentences, compiled)

        subset: list[Sentence] = []
        best_subset: list[Sentence] = []
        best_overlap = -1.0
        tried = 0
        for sent in ranked[: self.max_sentences]:
            subset.append(sent)
            tried += 1
            ordered = sorted(subset, key=lambda s: s.index)
            text = " ".join(s.text for s in ordered)
            prediction = self.qa_model.predict(question, text)
            if norm_answer and normalize_answer(prediction.text) == norm_answer:
                return ASEResult(tuple(ordered), text, True, 1.0, tried)
            overlap = f1_score(prediction.text, answer)
            if overlap > best_overlap:
                best_overlap = overlap
                best_subset = list(ordered)
        ordered = best_subset or sorted(subset, key=lambda s: s.index)
        text = " ".join(s.text for s in ordered)
        return ASEResult(tuple(ordered), text, False, max(best_overlap, 0.0), tried)

    def passthrough(self, context: str) -> ASEResult:
        """The "w/o ASE" ablation: the whole context is the sentence set."""
        compiled = self._compiled(context)
        if compiled is not None:
            sentences = compiled.sentences()
        else:
            sentences = tuple(split_sentences(context))
        text = " ".join(s.text for s in sentences)
        return ASEResult(sentences, text, False, 0.0, 0)
