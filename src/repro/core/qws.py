"""Question-relevant Words Selector (QWS) — Sec. III-C.

Removes insignificant question words, then marks every token of the
answer-oriented sentences that matches a remaining question word or one of
its WordNet relatives (synonyms, antonyms, hypernym siblings).  Inflected
surface forms are matched through a light stemmer so "represented" in the
context matches "represent" in the question.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lexicon.stopwords import is_insignificant
from repro.lexicon.wordnet import MiniWordNet, default_wordnet
from repro.text.stem import lemma, light_stem as _stem
from repro.text.tokenizer import Token, tokenize

__all__ = ["QWSResult", "QuestionRelevantWordsSelector"]


@dataclass(frozen=True)
class QWSResult:
    """Output of QWS.

    Attributes:
        significant_words: question words surviving the stopword filter.
        clue_indices: indices (into the AOS token list) of clue tokens.
        clue_words: the matched surface forms, for inspection.
        matches: mapping question word → set of matched AOS token indices,
            the trace the paper renders in Fig. 5.
    """

    significant_words: tuple[str, ...]
    clue_indices: frozenset[int]
    clue_words: tuple[str, ...]
    matches: dict[str, frozenset[int]]


class QuestionRelevantWordsSelector:
    """Marks question-relevant clue words in the answer-oriented sentences.

    Args:
        wordnet: lexical database for synonym/antonym/sibling expansion.
        knowledge: optional entity knowledge graph
            (:class:`repro.lexicon.knowledge.KnowledgeGraph`) — the paper's
            "world knowledge" extension: question entities additionally
            expand to related entities' words, bridging gaps like
            Solomon → David → Bathsheba (Sec. IV-G's failure case).
        knowledge_hops: neighbourhood radius for entity expansion.
    """

    def __init__(
        self,
        wordnet: MiniWordNet | None = None,
        knowledge=None,
        knowledge_hops: int = 1,
    ) -> None:
        self.wordnet = wordnet or default_wordnet()
        self.knowledge = knowledge
        self.knowledge_hops = knowledge_hops

    def significant_question_words(self, question: str) -> list[str]:
        """Question words after removing question terms, auxiliaries,
        function words and punctuation."""
        return [
            t.text
            for t in tokenize(question)
            if t.is_word and not is_insignificant(t.text)
        ]

    def _expansion(self, word: str) -> set[str]:
        """The word, its lemma, and all WordNet relatives (stemmed too).

        Looking up the lemma lets inflected question words ("won") reach
        the lexicon's base-form synsets ("win" → earn/gain/...).
        """
        base = lemma(word)
        related = (
            {word.lower(), base}
            | self.wordnet.related(word)
            | self.wordnet.related(base)
        )
        if self.knowledge is not None:
            related |= self.knowledge.related_words(
                word, hops=self.knowledge_hops
            )
        return {_stem(w) for w in related} | {w.lower() for w in related}

    def select(self, question: str, aos_tokens: list[Token]) -> QWSResult:
        """Find clue tokens of ``question`` among the AOS tokens."""
        significant = self.significant_question_words(question)
        matches: dict[str, frozenset[int]] = {}
        clue_indices: set[int] = set()
        for word in significant:
            expansion = self._expansion(word)
            hits = {
                tok.index
                for tok in aos_tokens
                if tok.is_word
                and (tok.lower in expansion or _stem(tok.lower) in expansion)
            }
            if hits:
                matches[word] = frozenset(hits)
                clue_indices.update(hits)
        clue_words = tuple(
            aos_tokens[i].text for i in sorted(clue_indices)
        )
        return QWSResult(
            significant_words=tuple(significant),
            clue_indices=frozenset(clue_indices),
            clue_words=clue_words,
            matches=matches,
        )

    def empty(self) -> QWSResult:
        """The "w/o QWS" ablation: no clue words at all."""
        return QWSResult((), frozenset(), (), {})
