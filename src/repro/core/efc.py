"""Evidence Forest Constructor (EFC) — Sec. III-E.

The forest's trees are the connected components induced in the weighted
syntactic parsing tree by the question-relevant clue words, the answer
words, and their parents (Fig. 6(b): clue nodes 3, 5, 7 with parents 2, 6
form two evidence trees; answer nodes 13, 15 with parent 14 form the
answer tree).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.parsing.tree import DependencyTree
from repro.text.normalize import normalize_answer
from repro.text.tokenizer import Token

__all__ = ["EvidenceForest", "EvidenceForestConstructor"]


@dataclass
class EvidenceForest:
    """The evidence forest over a weighted syntactic parsing tree.

    Attributes:
        tree: the underlying dependency tree T.
        components: node sets of the forest trees, each connected in T.
        roots: the root of each component (its shallowest node).
        protected: union of all component nodes — the clue/answer material
            the clip step must never remove.
        answer_components: indices of components containing answer words.
    """

    tree: DependencyTree
    components: list[frozenset[int]]
    roots: list[int]
    protected: frozenset[int]
    answer_components: frozenset[int]

    def __len__(self) -> int:
        return len(self.components)


class EvidenceForestConstructor:
    """Builds the evidence forest from clue and answer token indices."""

    def find_answer_indices(
        self, tokens: list[Token], answer: str
    ) -> frozenset[int]:
        """Token indices of the answer span inside the AOS tokens.

        Prefers a contiguous surface match; falls back to matching the
        answer's individual content words (answers occasionally differ in
        inflection or ordering from the context span).
        """
        if not answer.strip():
            return frozenset()
        answer_words = [w for w in normalize_answer(answer).split() if w]
        if not answer_words:
            return frozenset()
        norm = [normalize_answer(t.text) for t in tokens]
        # Match over content positions only (articles/punctuation normalize
        # to ""), then return the full original index range so interior
        # function words like the "the" of "William the Conqueror" stay in
        # the protected answer span.
        content = [(i, w) for i, w in enumerate(norm) if w]
        m = len(answer_words)
        for k in range(len(content) - m + 1):
            if [w for _i, w in content[k : k + m]] == answer_words:
                first = content[k][0]
                last = content[k + m - 1][0]
                return frozenset(range(first, last + 1))
        loose = {
            i for i, w in enumerate(norm) if w and w in set(answer_words)
        }
        return frozenset(loose)

    def build(
        self,
        tree: DependencyTree,
        clue_indices: frozenset[int],
        answer_indices: frozenset[int],
    ) -> EvidenceForest:
        """Construct the forest from marked nodes plus their parents."""
        marked: set[int] = set(clue_indices) | set(answer_indices)
        with_parents = set(marked)
        for node in marked:
            parent = tree.parent(node)
            if parent != -1:
                with_parents.add(parent)

        # Connected components of T restricted to `with_parents`.
        components: list[frozenset[int]] = []
        roots: list[int] = []
        unvisited = set(with_parents)
        while unvisited:
            seed = unvisited.pop()
            component = {seed}
            frontier = [seed]
            while frontier:
                node = frontier.pop()
                neighbors = [tree.parent(node)] + tree.children(node)
                for neighbor in neighbors:
                    if neighbor in unvisited:
                        unvisited.discard(neighbor)
                        component.add(neighbor)
                        frontier.append(neighbor)
            # The component root is the node whose parent lies outside.
            comp_roots = [
                node for node in component if tree.parent(node) not in component
            ]
            # Within one tree a connected set has exactly one such node.
            components.append(frozenset(component))
            roots.append(comp_roots[0])

        answer_components = frozenset(
            idx
            for idx, comp in enumerate(components)
            if comp & answer_indices
        )
        return EvidenceForest(
            tree=tree,
            components=components,
            roots=roots,
            protected=frozenset(with_parents),
            answer_components=answer_components,
        )
