"""Concrete GCED pipeline stages (Fig. 3) for the staged execution engine.

Each module of the paper — ASE, QWS, WSPTC, EFC, OEC — becomes one
registered :class:`~repro.engine.stage.Stage`, and every Table VIII
ablation becomes a stage *substitution* in :func:`stage_plan` rather than
an ``if config.use_*`` branch inside the pipeline body:

========================  =========================================
ablation                  plan change
========================  =========================================
w/o ASE                   ``ase`` → ``ase-passthrough``
w/o QWS                   ``qws`` → ``qws-passthrough``
w/o Grow                  ``oec`` → ``oec-no-grow``
w/o Clip                  ``oec`` → ``oec-no-clip``
========================  =========================================

Custom stages (knowledge-enhanced selectors, baseline extractors, ...)
plug in the same way: register under a new name and splice that name into
the plan.
"""

from __future__ import annotations

from functools import partial

from repro.core.ase import ASEResult
from repro.core.config import GCEDConfig
from repro.core.qws import QWSResult
from repro.core.result import DistillationResult
from repro.engine.registry import register_stage
from repro.engine.stage import StageContext
from repro.metrics.hybrid import EvidenceScores
from repro.text.tokenizer import tokenize, word_tokens

__all__ = [
    "ASEStage",
    "EFCStage",
    "FinalizeStage",
    "OECStage",
    "PassthroughASEStage",
    "PassthroughQWSStage",
    "QWSStage",
    "RetrieveStage",
    "TokenizeStage",
    "WSPTCStage",
    "empty_result",
    "open_context_plan",
    "stage_plan",
]


def empty_result(ctx: StageContext) -> DistillationResult:
    """The no-evidence outcome (Eq. 2's discard rule)."""
    scores = EvidenceScores(0.0, float("-inf"), 0.0, float("-inf"))
    return DistillationResult(
        evidence="",
        scores=scores,
        ase=ctx.ase or ASEResult((), "", False, 0.0, 0),
        qws=ctx.qws or QWSResult((), frozenset(), (), {}),
        forest_size=0,
    )


def _reduction(context: str, evidence: str) -> float:
    """Fraction of context words the evidence dropped."""
    total_words = len(word_tokens(context))
    kept_words = len(word_tokens(evidence))
    return 1.0 - kept_words / total_words if total_words else 0.0


@register_stage("retrieve")
class RetrieveStage:
    """Resolves an open-context input against the corpus retriever.

    Question+answer-only triples (empty context) retrieve their best
    supporting paragraph from ``resources.retriever`` before the closed
    pipeline runs; inputs that already carry a context pass through
    untouched, so one plan serves both open and closed traffic.  Either
    way the retrieval decision is recorded in ``ctx.extras`` for the
    result trace.
    """

    name = "retrieve"

    def run(self, ctx: StageContext) -> None:
        if ctx.context.strip():
            ctx.extras["retrieval"] = {"skipped": True}
            return
        retriever = ctx.resources.retriever
        if retriever is None:
            raise RuntimeError(
                "open-context input (empty context) but the pipeline has "
                "no retriever; pass retriever= to GCED or provide a context"
            )
        hits = retriever.retrieve_for_qa(ctx.question, ctx.answer, k=1)
        if not hits:
            ctx.extras["retrieval"] = {"skipped": False, "doc_id": None}
            ctx.halt(empty_result(ctx))
            return
        hit = hits[0]
        ctx.context = hit.text
        ctx.extras["retrieval"] = {
            "skipped": False,
            "doc_id": hit.doc_id,
            "score": hit.score,
        }


@register_stage("ase")
class ASEStage:
    """Answer-oriented Sentences Extractor (Sec. III-B)."""

    name = "ase"

    def run(self, ctx: StageContext) -> None:
        ctx.ase = ctx.resources.ase.extract(ctx.question, ctx.answer, ctx.context)


@register_stage("ase-passthrough")
class PassthroughASEStage:
    """The "w/o ASE" ablation: the whole context is the sentence set."""

    name = "ase-passthrough"

    def run(self, ctx: StageContext) -> None:
        ctx.ase = ctx.resources.ase.passthrough(ctx.context)


@register_stage("tokenize")
class TokenizeStage:
    """Tokenizes the AOS text; halts with no evidence if nothing remains."""

    name = "tokenize"

    def run(self, ctx: StageContext) -> None:
        ctx.aos_tokens = tokenize(ctx.ase.text)
        if not ctx.aos_tokens:
            ctx.halt(empty_result(ctx))


@register_stage("qws")
class QWSStage:
    """Question-relevant Words Selector (Sec. III-C)."""

    name = "qws"

    def run(self, ctx: StageContext) -> None:
        ctx.qws = ctx.resources.qws.select(ctx.question, ctx.aos_tokens)


@register_stage("qws-passthrough")
class PassthroughQWSStage:
    """The "w/o QWS" ablation: no clue words at all."""

    name = "qws-passthrough"

    def run(self, ctx: StageContext) -> None:
        ctx.qws = ctx.resources.qws.empty()


@register_stage("wsptc")
class WSPTCStage:
    """Weighted Syntactic Parsing Tree Constructor (Sec. III-D)."""

    name = "wsptc"

    def run(self, ctx: StageContext) -> None:
        ctx.tree = ctx.resources.wsptc.build(ctx.aos_tokens)


@register_stage("efc")
class EFCStage:
    """Evidence Forest Constructor (Sec. III-E), with the degenerate
    empty-forest fallback.

    If neither clue nor answer words were located in the AOS (e.g. ASE
    picked the wrong sentences on a long noisy context), fall back to
    sentence-level evidence — the AOS text itself — rather than returning
    nothing.
    """

    name = "efc"

    def run(self, ctx: StageContext) -> None:
        resources = ctx.resources
        ctx.answer_indices = resources.efc.find_answer_indices(
            ctx.aos_tokens, ctx.answer
        )
        ctx.forest = resources.efc.build(
            ctx.tree, ctx.qws.clue_indices, ctx.answer_indices
        )
        if len(ctx.forest) == 0:
            scores = resources.scorer.score(ctx.question, ctx.answer, ctx.ase.text)
            ctx.halt(
                DistillationResult(
                    evidence=ctx.ase.text,
                    scores=scores,
                    ase=ctx.ase,
                    qws=ctx.qws,
                    forest_size=0,
                    aos_tokens=ctx.aos_tokens,
                    reduction=_reduction(ctx.context, ctx.ase.text),
                )
            )


class OECStage:
    """Optimal Evidence Distiller (Sec. III-F) — Grow-and-Clip.

    The grow/clip ablations are separate registered variants of this one
    class, so the plan (not the stage body) decides what runs.
    """

    def __init__(self, use_grow: bool = True, use_clip: bool = True) -> None:
        self.use_grow = use_grow
        self.use_clip = use_clip
        suffix = {
            (True, True): "",
            (False, True): "-no-grow",
            (True, False): "-no-clip",
            (False, False): "-minimal",
        }[(use_grow, use_clip)]
        self.name = f"oec{suffix}"

    def run(self, ctx: StageContext) -> None:
        evidence, nodes, grow_trace, clip_trace = ctx.resources.oec.distill(
            ctx.forest,
            ctx.question,
            ctx.answer,
            use_grow=self.use_grow,
            use_clip=self.use_clip,
        )
        ctx.evidence = evidence
        ctx.evidence_nodes = nodes
        ctx.grow_trace = grow_trace
        ctx.clip_trace = clip_trace


register_stage("oec", partial(OECStage, use_grow=True, use_clip=True))
register_stage("oec-no-grow", partial(OECStage, use_grow=False, use_clip=True))
register_stage("oec-no-clip", partial(OECStage, use_grow=True, use_clip=False))
register_stage("oec-minimal", partial(OECStage, use_grow=False, use_clip=False))


@register_stage("finalize")
class FinalizeStage:
    """Scores the distilled evidence and assembles the result record."""

    name = "finalize"

    def run(self, ctx: StageContext) -> None:
        scores = ctx.resources.scorer.score(ctx.question, ctx.answer, ctx.evidence)
        ctx.halt(
            DistillationResult(
                evidence=ctx.evidence,
                scores=scores,
                ase=ctx.ase,
                qws=ctx.qws,
                forest_size=len(ctx.forest),
                grow_trace=ctx.grow_trace,
                clip_trace=ctx.clip_trace,
                evidence_nodes=ctx.evidence_nodes,
                aos_tokens=ctx.aos_tokens,
                reduction=_reduction(ctx.context, ctx.evidence),
            )
        )


def stage_plan(config: GCEDConfig) -> tuple[str, ...]:
    """The registered-stage sequence realizing ``config``.

    Ablation switches select stage *names*; the pipeline body never
    branches on them.
    """
    if config.use_grow and config.use_clip:
        oec = "oec"
    elif config.use_clip:
        oec = "oec-no-grow"
    elif config.use_grow:
        oec = "oec-no-clip"
    else:
        oec = "oec-minimal"
    return (
        "ase" if config.use_ase else "ase-passthrough",
        "tokenize",
        "qws" if config.use_qws else "qws-passthrough",
        "wsptc",
        "efc",
        oec,
        "finalize",
    )


def open_context_plan(config: GCEDConfig) -> tuple[str, ...]:
    """The closed plan prefixed with corpus retrieval.

    A pipeline running this plan accepts question+answer-only inputs:
    the ``retrieve`` stage fills in the best-matching corpus paragraph,
    then the ordinary stage sequence distills it.
    """
    return ("retrieve",) + stage_plan(config)
