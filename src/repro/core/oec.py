"""Optimal Evidence Distiller (OEC) — the Grow-and-Clip strategy (Alg. 1).

Sequential Grow Searching (SGS) repeatedly selects the forest tree whose
root has the maximum attention weight to its parent and merges it with
that parent and its sibling subtrees, until the forest collapses to a
single unclipped evidence tree.  Sequential Clip Searching (SCS) then
removes, ``M`` times, the clue-free subtree whose deletion maximizes the
hybrid score (ties broken by minimum parent-edge attention weight).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.efc import EvidenceForest
from repro.core.scoring import CandidateScoringEngine
from repro.metrics.hybrid import EvidenceScores, HybridScorer
from repro.parsing.tree import DependencyTree
from repro.text.tokenizer import detokenize

__all__ = ["GrowTrace", "ClipTrace", "OptimalEvidenceDistiller"]


@dataclass(frozen=True)
class GrowTrace:
    """One SGS step: which tree grew, and what it absorbed."""

    selected_root: int
    parent: int
    weight: float
    absorbed_roots: tuple[int, ...]
    forest_size_after: int


@dataclass(frozen=True)
class ClipTrace:
    """One SCS step: which subtree was pruned and the score it achieved."""

    clipped_root: int
    removed_nodes: frozenset[int]
    hybrid_after: float
    edge_weight: float


class OptimalEvidenceDistiller:
    """Runs Grow-and-Clip over an evidence forest.

    Args:
        scorer: hybrid scorer used by the clip step.
        clip_times: M, the number of clip iterations.
        max_clip_candidates: evaluation budget per clip iteration; the
            candidates with the smallest parent-edge weights are evaluated
            first (weak attachments are the likeliest noise), which keeps
            the QA-model calls per example bounded.
        engine: optional incremental scoring engine.  When present, the
            clip search scores candidates through node-set-keyed sessions
            (memoized, incremental metrics, batched QA predictions); when
            ``None``, every candidate is rendered and scored directly.
            Outputs are bit-identical either way.
    """

    def __init__(
        self,
        scorer: HybridScorer,
        clip_times: int = 2,
        max_clip_candidates: int = 24,
        engine: CandidateScoringEngine | None = None,
    ) -> None:
        if clip_times < 0:
            raise ValueError("clip_times must be non-negative")
        self.scorer = scorer
        self.clip_times = clip_times
        self.max_clip_candidates = max_clip_candidates
        self.engine = engine

    # ------------------------------------------------------------- helpers
    @staticmethod
    def render(tree: DependencyTree, nodes: set[int] | frozenset[int]) -> str:
        """Tokens of ``nodes`` ranked by index, joined into readable text."""
        return detokenize(tree.text_of(nodes))

    # ---------------------------------------------------------------- grow
    def grow(
        self, forest: EvidenceForest
    ) -> tuple[set[int], int, list[GrowTrace]]:
        """SGS: returns (evidence node set, evidence root, trace).

        Terminates because every step strictly moves the selected root
        toward the tree root; once a component's root is the tree root its
        subtree spans everything and the forest collapses.
        """
        tree = forest.tree
        components: list[set[int]] = [set(c) for c in forest.components]
        roots: list[int] = list(forest.roots)
        trace: list[GrowTrace] = []
        if len(components) == 1:
            # A single forest tree is already the unclipped evidence tree,
            # but it may be a sparse, unreadable node set.  Apply the same
            # closure a grow step applies — take the full subtree under its
            # root ("merge with ... sibling subtrees") — so the evidence is
            # contiguous and the clip step has material to prune.
            return set(tree.subtree(roots[0])), roots[0], trace
        while len(components) > 1:
            # Select the component whose root has the max parent-edge weight.
            best_idx = max(
                range(len(components)),
                key=lambda i: (tree.weight(roots[i]), -roots[i]),
            )
            root = roots[best_idx]
            parent = tree.parent(root)
            if parent == -1:
                # The selected component is already rooted at the tree root;
                # everything else lies in its subtree — absorb it all.
                new_root = root
            else:
                new_root = parent
            members = tree.subtree(new_root)
            absorbed: list[int] = []
            survivors_c: list[set[int]] = []
            survivors_r: list[int] = []
            merged = set(members) if parent != -1 else set(components[best_idx]) | members
            for idx, (comp, comp_root) in enumerate(zip(components, roots)):
                if comp_root in members or idx == best_idx:
                    merged |= comp
                    if idx != best_idx:
                        absorbed.append(comp_root)
                else:
                    survivors_c.append(comp)
                    survivors_r.append(comp_root)
            survivors_c.append(merged)
            survivors_r.append(new_root)
            components, roots = survivors_c, survivors_r
            trace.append(
                GrowTrace(
                    selected_root=root,
                    parent=parent,
                    weight=tree.weight(root),
                    absorbed_roots=tuple(absorbed),
                    forest_size_after=len(components),
                )
            )
        return components[0], roots[0], trace

    # ---------------------------------------------------------------- clip
    def _clip_candidates(
        self,
        tree: DependencyTree,
        evidence: set[int],
        evidence_root: int,
        protected: frozenset[int],
    ) -> list[tuple[int, frozenset[int]]]:
        """Subtrees of the evidence tree that contain no protected nodes."""
        candidates: list[tuple[int, frozenset[int]]] = []
        for node in evidence:
            if node == evidence_root:
                continue
            if tree.parent(node) not in evidence:
                continue  # fragment boundary (w/o-Grow ablation)
            sub = frozenset(tree.subtree(node) & evidence)
            if sub & protected:
                continue
            candidates.append((node, sub))
        return candidates

    def clip(
        self,
        tree: DependencyTree,
        evidence: set[int],
        evidence_root: int,
        protected: frozenset[int],
        question: str,
        answer: str,
    ) -> tuple[set[int], list[ClipTrace]]:
        """SCS: iteratively prune the best-to-remove subtree, M times.

        The current evidence's score is computed once (lazily, the first
        time a clip decision needs it) and carried forward as the chosen
        candidate's score thereafter — it is by construction the previous
        iteration's ``hybrid_after``, so re-scoring it from scratch every
        iteration was pure redundancy.
        """
        evidence = set(evidence)
        trace: list[ClipTrace] = []
        session = self.engine.session(tree, question, answer) if self.engine else None
        current_scores = None
        for _ in range(self.clip_times):
            candidates = self._clip_candidates(
                tree, evidence, evidence_root, protected
            )
            if not candidates:
                break
            # Maximal candidates only: clipping a node implies clipping its
            # descendants, so nested candidates are redundant to evaluate.
            roots_set = {node for node, _sub in candidates}
            maximal = [
                (node, sub)
                for node, sub in candidates
                if tree.parent(node) not in roots_set
                or tree.parent(node) in protected
            ]
            maximal = maximal or candidates
            # Evaluation budget: weakest attachments first.
            maximal.sort(key=lambda item: tree.weight(item[0]))
            maximal = maximal[: self.max_clip_candidates]

            if session is not None:
                # One engine call per iteration: node-set memo hits skip
                # rendering, misses share one batched QA prediction.
                all_scores = session.score_many(
                    [frozenset(evidence - sub) for _node, sub in maximal]
                )
            else:
                all_scores = [
                    self.scorer.score(
                        question, answer, self.render(tree, evidence - sub)
                    )
                    for _node, sub in maximal
                ]
            best: tuple[float, float, int, frozenset[int], EvidenceScores] | None = None
            for (node, sub), scores in zip(maximal, all_scores):
                key = (scores.hybrid, -tree.weight(node))
                if best is None or key > (best[0], best[1]):
                    best = (scores.hybrid, -tree.weight(node), node, sub, scores)
            if best is None or best[0] == float("-inf"):
                break
            hybrid_after, neg_weight, node, sub, best_scores = best
            if current_scores is None:
                current_scores = (
                    session.score(frozenset(evidence))
                    if session is not None
                    else self.scorer.score(
                        question, answer, self.render(tree, evidence)
                    )
                )
            if hybrid_after < current_scores.hybrid:
                # No clip improves the evidence: stop early (the paper's M
                # is an upper bound tuned by experiments).
                break
            evidence -= sub
            current_scores = best_scores
            trace.append(
                ClipTrace(
                    clipped_root=node,
                    removed_nodes=sub,
                    hybrid_after=hybrid_after,
                    edge_weight=-neg_weight,
                )
            )
        return evidence, trace

    # ------------------------------------------------------------- distill
    def distill(
        self,
        forest: EvidenceForest,
        question: str,
        answer: str,
        use_grow: bool = True,
        use_clip: bool = True,
    ) -> tuple[str, set[int], list[GrowTrace], list[ClipTrace]]:
        """Full OEC: grow then clip; returns (text, nodes, traces).

        ``use_grow`` / ``use_clip`` implement the Table VIII ablations.
        """
        tree = forest.tree
        if len(forest) == 0:
            return "", set(), [], []
        if use_grow:
            evidence, evidence_root, grow_trace = self.grow(forest)
        else:
            evidence = set().union(*forest.components)
            evidence_root = forest.roots[0]
            grow_trace = []
        if use_clip:
            evidence, clip_trace = self.clip(
                tree,
                evidence,
                evidence_root,
                forest.protected,
                question,
                answer,
            )
        else:
            clip_trace = []
        return self.render(tree, evidence), evidence, grow_trace, clip_trace
