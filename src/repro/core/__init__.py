"""GCED core: the five modules of Fig. 3 plus the staged pipeline.

* :class:`AnswerOrientedSentenceExtractor` (ASE, Sec. III-B)
* :class:`QuestionRelevantWordsSelector` (QWS, Sec. III-C)
* :class:`WeightedTreeConstructor` (WSPTC, Sec. III-D)
* :class:`EvidenceForestConstructor` (EFC, Sec. III-E)
* :class:`OptimalEvidenceDistiller` (OEC / Grow-and-Clip, Sec. III-F)
* :mod:`repro.core.stages` — each module wrapped as a registered engine
  stage, with :func:`~repro.core.stages.stage_plan` mapping a config to a
  stage sequence.
* :class:`GCED` — the pipeline facade composing registered stages.
"""

from repro.core.config import GCEDConfig
from repro.core.ase import AnswerOrientedSentenceExtractor, ASEResult
from repro.core.qws import QuestionRelevantWordsSelector, QWSResult
from repro.core.wsptc import WeightedTreeConstructor
from repro.core.efc import EvidenceForest, EvidenceForestConstructor
from repro.core.oec import OptimalEvidenceDistiller, GrowTrace, ClipTrace
from repro.core.pipeline import GCED, DistillationResult
from repro.core.stages import open_context_plan, stage_plan
from repro.core.batch import BatchDistiller, BatchStats
from repro.core.open_context import (
    AskCandidate,
    AskOutcome,
    OpenContextDistiller,
    build_outcome,
)
from repro.core.serialize import (
    result_to_dict,
    write_results_jsonl,
    read_results_jsonl,
)

__all__ = [
    "AskCandidate",
    "AskOutcome",
    "BatchDistiller",
    "BatchStats",
    "OpenContextDistiller",
    "build_outcome",
    "open_context_plan",
    "stage_plan",
    "result_to_dict",
    "write_results_jsonl",
    "read_results_jsonl",
    "GCEDConfig",
    "AnswerOrientedSentenceExtractor",
    "ASEResult",
    "QuestionRelevantWordsSelector",
    "QWSResult",
    "WeightedTreeConstructor",
    "EvidenceForest",
    "EvidenceForestConstructor",
    "OptimalEvidenceDistiller",
    "GrowTrace",
    "ClipTrace",
    "GCED",
    "DistillationResult",
]
