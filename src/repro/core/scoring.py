"""Incremental candidate-scoring engine for the Grow-and-Clip search.

The clip step (Alg. 1, SCS) is the hottest loop in the system: every
iteration scores up to ``max_clip_candidates`` evidences that differ from
the current one by a single removed subtree.  The direct path pays, per
candidate, a render (detokenize), two re-tokenizations (conciseness and
readability), a full trigram walk, and a QA-model prediction — almost all
of it redundant across candidates.  :class:`CandidateScoringEngine`
removes that redundancy in four layers:

1. **Content-keyed sessions** — :class:`ScoringSession` objects are
   cached on ``(question, answer, tree tokens)``, so re-distilling the
   same paragraph for the same QA pair (open-context re-asks, ablation
   sweeps, repeated batch traffic) reuses the per-tree artifacts *and*
   every previously scored node set across calls, not just within one
   clip search.
2. **Node-set-keyed memoization** — finished :class:`EvidenceScores` are
   cached on ``(content_id, frozenset(nodes))`` under a stable
   per-content id, so re-encounters of a node set (the carried-forward
   current evidence, repeated candidates across iterations *and calls*)
   never render text at all.  Text is rendered lazily, only for
   candidates that reach the QA model.
3. **Incremental metric deltas** — conciseness comes from per-node token
   counts and readability from trigram *prefix sums* over the full tree
   sequence (:mod:`repro.metrics.incremental`); a candidate pays fresh
   language-model terms only at its removal boundaries plus one
   subtraction per surviving run.  When per-node token independence
   cannot be guaranteed (hazard tokens, see
   ``TreeTokenArtifacts.separable``), the session transparently falls
   back to rendering and re-tokenizing — slower, never outside the
   contract.
4. **Batched informativeness** — all candidates of one clip iteration
   needing a QA prediction are issued as a single
   :meth:`QAModel.predict_batch` call through
   :meth:`InformativenessScorer.score_batch`.

Equivalence contract: informativeness and conciseness are bit-identical
to ``HybridScorer.score(question, answer, render(nodes))``; readability
(and therefore the hybrid total) matches within 1e-9 — the prefix-sum
path regroups float additions by surviving run (see the summation-order
contract in :mod:`repro.metrics.incremental`).  The equivalence is
asserted by ``tests/test_scoring_incremental.py`` over randomized trees
and by the full-pipeline harness with the engine on/off.
"""

from __future__ import annotations

import itertools

from repro.metrics.hybrid import EvidenceScores, HybridScorer
from repro.metrics.incremental import (
    TreeTokenArtifacts,
    TrigramPrefixSums,
    TrigramTermCache,
)
from repro.parsing.tree import DependencyTree
from repro.text.tokenizer import detokenize, word_tokens
from repro.utils.cache import LRUCache, MISSING

__all__ = ["CandidateScoringEngine", "ScoringSession"]

# Sessions are long-lived now (content-keyed, cached across calls), so
# the per-session render memo needs a bound; above this many distinct
# node-set renders it resets.  Entries are pure values — clearing only
# costs re-rendering on the next miss.
_MAX_RENDERS = 1024


def _estimate_session_bytes(session: "ScoringSession") -> int:
    """Estimated steady-state footprint of one cached session.

    Taken at insert time: charges a per-token amortized constant for the
    token artifacts and lazy prefix sums, plus a flat allowance for the
    (independently bounded) render memo.
    """
    return 4096 + 600 * len(session.tree.tokens)


def _invalid_scores() -> EvidenceScores:
    """The discarded-evidence outcome, matching ``HybridScorer.score``."""
    return EvidenceScores(0.0, float("-inf"), 0.0, float("-inf"))


class ScoringSession:
    """Scoring context for one (tree content, question, answer) triple.

    Sessions are created by :meth:`CandidateScoringEngine.session` and
    cached there on content, so one session may serve many clip searches
    over its lifetime.  It owns the per-tree token artifacts, the lazy
    trigram prefix sums, and the render memo, and routes score lookups
    through the engine's shared node-set cache under a stable
    ``content_id``.  Scores depend only on the tree's *tokens* (rendering
    sorts by node index), so any tree with equal tokens may share the
    session regardless of its parents/weights.
    """

    def __init__(
        self,
        engine: "CandidateScoringEngine",
        tree: DependencyTree,
        question: str,
        answer: str,
        content_id: int,
    ) -> None:
        self.engine = engine
        self.tree = tree
        self.question = question
        self.answer = answer
        self.content_id = content_id
        # L(a) + 1, the shortest admissible evidence length (Eq. 2).
        self._answer_length = len(word_tokens(answer))
        self._artifacts = TreeTokenArtifacts(tree.tokens)
        self._prefix: TrigramPrefixSums | None = None
        self._renders: dict[frozenset[int], str] = {}
        self._verified = False

    # -------------------------------------------------------------- pieces
    def render(self, nodes: frozenset[int]) -> str:
        """``detokenize(tree.text_of(nodes))``, memoized per node set.

        Delegates to the same ``text_of`` the direct path renders with,
        so there is exactly one rendering implementation to keep exact.
        """
        text = self._renders.get(nodes)
        if text is None:
            if len(self._renders) > _MAX_RENDERS:
                self._renders.clear()
            text = detokenize(self.tree.text_of(nodes))
            self._renders[nodes] = text
        return text

    def _measure(
        self, nodes: frozenset[int]
    ) -> tuple[int, list[tuple[int, int]] | None, list[str] | None]:
        """``(length, runs, seq)`` of a node set's word-token sequence.

        Separable trees measure from per-node counts and describe the
        sequence as surviving runs of the full tree (``seq`` stays None);
        otherwise the rendered text is re-tokenized (``runs`` stays
        None).  Either way ``length == len(word_tokens(render(nodes)))``.
        """
        artifacts = self._artifacts
        if artifacts.separable:
            ordered = sorted(nodes)
            if not self._verified:
                # Belt and braces: one direct re-tokenization per session
                # confirms the separability analysis on real data; any
                # mismatch flips the session into fallback mode.  The
                # flag is set only *after* the check completes — sessions
                # are shared across threads now, and a concurrent caller
                # must not skip ahead on an unverified analysis (it may
                # re-verify redundantly instead; that is just waste).
                direct = word_tokens(self.render(nodes))
                if direct != artifacts.sequence(ordered):
                    artifacts.separable = False
                    self._verified = True
                    return len(direct), None, direct
                self._verified = True
            runs = artifacts.runs(ordered)
            return sum(b - a for a, b in runs), runs, None
        seq = word_tokens(self.render(nodes))
        return len(seq), None, seq

    def _conciseness(self, length: int) -> float:
        """Eq. 2 + the scorer's monotone [0, 1] rescaling, from a length.

        Mirrors ``HybridScorer.normalized_conciseness`` exactly:
        ``min(1.0, (L(a) + 1) * (1 / L(e)))`` for admissible evidences.
        """
        if length <= self._answer_length:
            return float("-inf")
        return min(1.0, (self._answer_length + 1) * (1.0 / length))

    def _prefix_sums(self) -> TrigramPrefixSums:
        """Prefix sums over the full tree sequence, built once per session."""
        prefix = self._prefix
        if prefix is None:
            prefix = self._prefix = TrigramPrefixSums(
                self.engine.terms, self._artifacts.full_sequence()
            )
        return prefix

    def _readability(
        self,
        length: int,
        runs: list[tuple[int, int]] | None,
        seq: list[str] | None,
    ) -> float:
        """``R(e)`` via prefix sums (runs) or the term-cache walk (seq)."""
        if not length:
            return 0.0
        if runs is not None:
            ppl = self._prefix_sums().perplexity(runs, length)
        else:
            ppl = self.engine.terms.perplexity(seq)
        return self.engine.scorer.readability.score_from_perplexity(ppl)

    # -------------------------------------------------------------- scores
    def score(self, nodes: frozenset[int]) -> EvidenceScores:
        """Scores for one node set (see :meth:`score_many`)."""
        return self.score_many([nodes])[0]

    def score_many(
        self, node_sets: list[frozenset[int]]
    ) -> list[EvidenceScores]:
        """Scores for many node sets (equivalence contract: see module doc).

        Cache hits — including hits left by *previous* clip searches over
        the same content — return without rendering; misses compute
        conciseness and readability incrementally and share one batched
        QA prediction for informativeness.
        """
        engine = self.engine
        cache = engine.cache
        content_id = self.content_id
        out: list[EvidenceScores | None] = [None] * len(node_sets)
        misses: list[tuple[int, frozenset[int]]] = []
        for pos, nodes in enumerate(node_sets):
            cached = cache.get((content_id, nodes), MISSING)
            if cached is not MISSING:
                out[pos] = cached
            else:
                misses.append((pos, nodes))

        valid: list[tuple[int, frozenset[int], float, float, str]] = []
        for pos, nodes in misses:
            length, runs, seq = self._measure(nodes)
            c = self._conciseness(length)
            if c == float("-inf"):
                scores = _invalid_scores()
                cache.put((content_id, nodes), scores)
                out[pos] = scores
                continue
            r = self._readability(length, runs, seq)
            valid.append((pos, nodes, c, r, self.render(nodes)))

        if valid:
            scorer = engine.scorer
            weights = scorer.weights
            infos = scorer.informativeness.score_batch(
                self.question, self.answer, [text for *_rest, text in valid]
            )
            for (pos, nodes, c, r, text), i in zip(valid, infos):
                # Seed the string-keyed readability cache so the finalize
                # stage's direct re-score of the winner hits.
                scorer.readability.seed(text, r)
                h = weights.alpha * i + weights.beta * r + weights.gamma * c
                scores = EvidenceScores(
                    informativeness=i, conciseness=c, readability=r, hybrid=h
                )
                cache.put((content_id, nodes), scores)
                out[pos] = scores
        return out  # type: ignore[return-value]


class CandidateScoringEngine:
    """Shared, pipeline-wide state behind :class:`ScoringSession`.

    One engine lives per :class:`~repro.core.pipeline.GCED`.  It owns the
    node-set score cache (surfaced as the ``clip_scores`` shared cache in
    profiles — its lookup counts are the clip search's scoring traffic),
    the content-keyed session cache (surfaced as ``clip_sessions``; its
    hits are cross-call reuse events), and the trigram term cache.  All
    three stay warm across examples and calls: repeated distillations of
    the same paragraph for the same QA pair hit the same session and
    therefore the same node-set entries.  Thread-safe for the thread
    executor (both LRU caches are locked; session-internal memos hold
    idempotent pure values) and picklable for the process executor.
    """

    def __init__(
        self,
        scorer: HybridScorer,
        cache_size: int = 8192,
        session_cache_size: int = 512,
        session_max_bytes: int | None = 32 * 1024 * 1024,
    ) -> None:
        self.scorer = scorer
        self.cache = LRUCache(capacity=cache_size)
        # Sessions retain per-paragraph artifacts (prefix sums, renders),
        # so the cache is bounded by estimated bytes as well as entries.
        self.sessions = LRUCache(
            capacity=session_cache_size,
            size_estimator=_estimate_session_bytes,
            max_bytes=session_max_bytes,
        )
        self.terms = TrigramTermCache(scorer.readability.language_model)
        self._content_ids = itertools.count()
        # Pipeline-snapshot read-through (installed by attach_snapshot):
        # session_key -> ((nodes, scores, render_text|None), ...) or
        # MISSING.  Hit/miss counts surface in hydration stats.
        self._snapshot_lookup = None
        self.snapshot_hits = 0
        self.snapshot_misses = 0

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        # The lookup closes over the parent's snapshot reader; workers
        # re-attach their own through GCED.adopt_snapshot.
        state["_snapshot_lookup"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.__dict__.setdefault("_snapshot_lookup", None)
        self.__dict__.setdefault("snapshot_hits", 0)
        self.__dict__.setdefault("snapshot_misses", 0)

    def session(
        self, tree: DependencyTree, question: str, answer: str
    ) -> ScoringSession:
        """The session for this content, reused across calls when cached.

        Keyed on ``(question, answer, tree tokens)`` — everything a score
        depends on.  An evicted-and-rebuilt session gets a fresh
        ``content_id``, orphaning (never corrupting) its old node-set
        entries, which age out of the LRU naturally.  Session misses
        consult the attached pipeline snapshot (if any) and bulk-load the
        parent's node-set scores under the fresh content id, so a
        worker's first clip search over known content starts warm.
        """
        key = (question, answer, tuple(tree.tokens))
        session = self.sessions.get(key, MISSING)
        if session is MISSING:
            session = ScoringSession(
                self, tree, question, answer, next(self._content_ids)
            )
            self.sessions.put(key, session)
            lookup = self._snapshot_lookup
            if lookup is not None:
                entries = lookup(key)
                if entries is not MISSING and entries:
                    self.snapshot_hits += 1
                    readability = self.scorer.readability
                    for nodes, scores, text in entries:
                        self.cache.put((session.content_id, nodes), scores)
                        if text is not None:
                            # Keep the finalize stage's direct re-score
                            # on the engine-computed value, exactly as if
                            # this process had scored the miss itself.
                            readability.seed(text, scores.readability)
                else:
                    self.snapshot_misses += 1
        return session

    # -------------------------------------------------------- snapshot plane
    def export_sessions(self) -> dict:
        """Warm per-session score entries, keyed for the snapshot plane.

        ``content_id`` is process-local, so entries re-key by the stable
        session key ``(question, answer, tree tokens)``; each carries its
        node set, final scores, and (when the render memo still holds it)
        the rendered text used to seed the readability cache on import.
        """
        by_content: dict[int, list] = {}
        for (content_id, nodes), scores in self.cache.items():
            by_content.setdefault(content_id, []).append((nodes, scores))
        exported: dict = {}
        for key, session in self.sessions.items():
            entries = by_content.get(session.content_id)
            if not entries:
                continue
            exported[key] = tuple(
                (nodes, scores, session._renders.get(nodes))
                for nodes, scores in entries
            )
        return exported

    def attach_snapshot(self, lookup) -> None:
        """Install the snapshot read-through consulted on session misses.

        ``lookup(session_key)`` returns :meth:`export_sessions`-shaped
        entries or ``MISSING``.
        """
        self._snapshot_lookup = lookup
