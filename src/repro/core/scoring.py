"""Incremental candidate-scoring engine for the Grow-and-Clip search.

The clip step (Alg. 1, SCS) is the hottest loop in the system: every
iteration scores up to ``max_clip_candidates`` evidences that differ from
the current one by a single removed subtree.  The direct path pays, per
candidate, a render (detokenize), two re-tokenizations (conciseness and
readability), a full trigram walk, and a QA-model prediction — almost all
of it redundant across candidates.  :class:`CandidateScoringEngine`
removes that redundancy in three layers:

1. **Node-set-keyed memoization** — finished :class:`EvidenceScores` are
   cached on ``(tree_id, frozenset(nodes))``, so re-encounters of a node
   set (the carried-forward current evidence, repeated candidates across
   iterations) never render text at all.  Text is rendered lazily, only
   for candidates that reach the QA model.
2. **Incremental metric deltas** — conciseness comes from per-node token
   counts and readability from cached trigram terms
   (:mod:`repro.metrics.incremental`); the language model is consulted
   only at removal boundaries.  When per-node token independence cannot
   be guaranteed (hazard tokens, see ``TreeTokenArtifacts.separable``),
   the session transparently falls back to rendering and re-tokenizing —
   slower, never wrong.
3. **Batched informativeness** — all candidates of one clip iteration
   needing a QA prediction are issued as a single
   :meth:`QAModel.predict_batch` call through
   :meth:`InformativenessScorer.score_batch`.

Exactness contract: every :class:`EvidenceScores` produced here is
bit-identical to ``HybridScorer.score(question, answer, render(nodes))``.
The equivalence is asserted by ``tests/test_scoring_incremental.py`` over
randomized trees and by the full-pipeline harness with the engine on/off.
"""

from __future__ import annotations

import itertools

from repro.metrics.hybrid import EvidenceScores, HybridScorer
from repro.metrics.incremental import TreeTokenArtifacts, TrigramTermCache
from repro.parsing.tree import DependencyTree
from repro.text.tokenizer import detokenize, word_tokens
from repro.utils.cache import LRUCache, MISSING

__all__ = ["CandidateScoringEngine", "ScoringSession"]


def _invalid_scores() -> EvidenceScores:
    """The discarded-evidence outcome, matching ``HybridScorer.score``."""
    return EvidenceScores(0.0, float("-inf"), 0.0, float("-inf"))


class ScoringSession:
    """Per-example scoring context: one tree, one (question, answer) pair.

    Sessions are cheap, transient objects created once per clip search.
    They own the per-tree token artifacts and route score lookups through
    the engine's shared node-set cache under a session-unique ``tree_id``.
    """

    def __init__(
        self,
        engine: "CandidateScoringEngine",
        tree: DependencyTree,
        question: str,
        answer: str,
        tree_id: int,
    ) -> None:
        self.engine = engine
        self.tree = tree
        self.question = question
        self.answer = answer
        self.tree_id = tree_id
        # L(a) + 1, the shortest admissible evidence length (Eq. 2).
        self._answer_length = len(word_tokens(answer))
        self._artifacts = TreeTokenArtifacts(tree.tokens)
        self._renders: dict[frozenset[int], str] = {}
        self._verified = False

    # -------------------------------------------------------------- pieces
    def render(self, nodes: frozenset[int]) -> str:
        """``detokenize(tree.text_of(nodes))``, memoized per node set.

        Delegates to the same ``text_of`` the direct path renders with,
        so there is exactly one rendering implementation to keep exact.
        """
        text = self._renders.get(nodes)
        if text is None:
            text = detokenize(self.tree.text_of(nodes))
            self._renders[nodes] = text
        return text

    def _sequence(self, nodes: frozenset[int]) -> list[str]:
        """Word-token sequence of ``nodes``; exact, fast when separable."""
        artifacts = self._artifacts
        if artifacts.separable:
            seq = artifacts.sequence(sorted(nodes))
            if not self._verified:
                # Belt and braces: one direct re-tokenization per session
                # confirms the separability analysis on real data; any
                # mismatch flips the session into fallback mode.
                self._verified = True
                direct = word_tokens(self.render(nodes))
                if direct != seq:
                    artifacts.separable = False
                    return direct
            return seq
        return word_tokens(self.render(nodes))

    def _conciseness(self, length: int) -> float:
        """Eq. 2 + the scorer's monotone [0, 1] rescaling, from a length.

        Mirrors ``HybridScorer.normalized_conciseness`` exactly:
        ``min(1.0, (L(a) + 1) * (1 / L(e)))`` for admissible evidences.
        """
        if length <= self._answer_length:
            return float("-inf")
        return min(1.0, (self._answer_length + 1) * (1.0 / length))

    def _readability(self, seq: list[str]) -> float:
        """``R(e)`` from cached trigram terms; equals the direct scorer."""
        if not seq:
            return 0.0
        ppl = self.engine.terms.perplexity(seq)
        return self.engine.scorer.readability.score_from_perplexity(ppl)

    # -------------------------------------------------------------- scores
    def score(self, nodes: frozenset[int]) -> EvidenceScores:
        """Scores for one node set (see :meth:`score_many`)."""
        return self.score_many([nodes])[0]

    def score_many(
        self, node_sets: list[frozenset[int]]
    ) -> list[EvidenceScores]:
        """Scores for many node sets, bit-identical to the direct path.

        Cache hits return without rendering; misses compute conciseness
        and readability incrementally and share one batched QA prediction
        for informativeness.
        """
        engine = self.engine
        cache = engine.cache
        tree_id = self.tree_id
        out: list[EvidenceScores | None] = [None] * len(node_sets)
        misses: list[tuple[int, frozenset[int]]] = []
        for pos, nodes in enumerate(node_sets):
            cached = cache.get((tree_id, nodes), MISSING)
            if cached is not MISSING:
                out[pos] = cached
            else:
                misses.append((pos, nodes))

        valid: list[tuple[int, frozenset[int], float, float, str]] = []
        for pos, nodes in misses:
            seq = self._sequence(nodes)
            c = self._conciseness(len(seq))
            if c == float("-inf"):
                scores = _invalid_scores()
                cache.put((tree_id, nodes), scores)
                out[pos] = scores
                continue
            r = self._readability(seq)
            valid.append((pos, nodes, c, r, self.render(nodes)))

        if valid:
            scorer = engine.scorer
            weights = scorer.weights
            infos = scorer.informativeness.score_batch(
                self.question, self.answer, [text for *_rest, text in valid]
            )
            for (pos, nodes, c, r, text), i in zip(valid, infos):
                # Seed the string-keyed readability cache so the finalize
                # stage's direct re-score of the winner hits.
                scorer.readability.seed(text, r)
                h = weights.alpha * i + weights.beta * r + weights.gamma * c
                scores = EvidenceScores(
                    informativeness=i, conciseness=c, readability=r, hybrid=h
                )
                cache.put((tree_id, nodes), scores)
                out[pos] = scores
        return out  # type: ignore[return-value]


class CandidateScoringEngine:
    """Shared, pipeline-wide state behind :class:`ScoringSession`.

    One engine lives per :class:`~repro.core.pipeline.GCED`.  It owns the
    node-set score cache (surfaced as the ``clip_scores`` shared cache in
    profiles — its lookup counts are the clip search's scoring traffic)
    and the trigram term cache.  The *term* cache stays warm across
    examples; node-set entries are keyed by session-unique ``tree_id``,
    so they serve repeats within one clip search only (cross-example
    session reuse, keyed on tree content, is a ROADMAP follow-on).
    Thread-safe for the thread executor (LRU cache is locked; the term
    cache holds idempotent pure values) and picklable for the process
    executor.
    """

    def __init__(self, scorer: HybridScorer, cache_size: int = 8192) -> None:
        self.scorer = scorer
        self.cache = LRUCache(capacity=cache_size)
        self.terms = TrigramTermCache(scorer.readability.language_model)
        self._tree_ids = itertools.count()

    def session(
        self, tree: DependencyTree, question: str, answer: str
    ) -> ScoringSession:
        """A fresh per-example session with a unique ``tree_id``."""
        return ScoringSession(self, tree, question, answer, next(self._tree_ids))
