"""GCED configuration, including the ablation switches of Table VIII."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace

from repro.metrics.hybrid import HybridWeights

__all__ = ["GCEDConfig"]


@dataclass(frozen=True)
class GCEDConfig:
    """Tunable knobs of the GCED pipeline.

    Attributes:
        weights: (α, β, γ) of the hybrid score (Eq. 5).
        clip_times: M, the number of clip iterations (Sec. III-F2, tuned by
            experiments; the paper's worked example uses 1, our default 2).
        max_answer_sentences: cap on the minimal sentence subset ASE may
            select.
        use_ase / use_qws / use_grow / use_clip: ablation switches for the
            pipeline stages ("w/o ASE" rows of Table VIII).
        use_informativeness / use_conciseness / use_readability: criterion
            ablations; disabling one redistributes its hybrid weight over
            the remaining criteria ("w/o I" rows of Table VIII).
        incremental_scoring: route the clip search through the
            node-set-keyed incremental scoring engine
            (:mod:`repro.core.scoring`).  Outputs are bit-identical with
            the engine on or off; the switch exists for equivalence tests
            and debugging.
    """

    weights: HybridWeights = field(default_factory=HybridWeights)
    clip_times: int = 2
    max_answer_sentences: int = 3
    incremental_scoring: bool = True
    use_ase: bool = True
    use_qws: bool = True
    use_grow: bool = True
    use_clip: bool = True
    use_informativeness: bool = True
    use_conciseness: bool = True
    use_readability: bool = True

    def __post_init__(self) -> None:
        if self.clip_times < 0:
            raise ValueError("clip_times must be non-negative")
        if self.max_answer_sentences < 1:
            raise ValueError("max_answer_sentences must be at least 1")
        if not (
            self.use_informativeness or self.use_conciseness or self.use_readability
        ):
            raise ValueError("at least one scoring criterion must stay enabled")

    def fingerprint(self) -> str:
        """Stable digest of every knob, for snapshot freshness checks.

        A :class:`~repro.engine.snapshot.PipelineSnapshot` built under one
        config must not hydrate a pipeline running another (ablations
        change scores); the dataclass ``repr`` covers all fields
        deterministically, so equal configs share a fingerprint.
        """
        return hashlib.sha256(repr(self).encode("utf-8")).hexdigest()[:16]

    def effective_weights(self) -> HybridWeights:
        """Hybrid weights with disabled criteria zeroed and renormalized."""
        alpha = self.weights.alpha if self.use_informativeness else 0.0
        beta = self.weights.beta if self.use_readability else 0.0
        gamma = self.weights.gamma if self.use_conciseness else 0.0
        total = alpha + beta + gamma
        return HybridWeights(alpha / total, beta / total, gamma / total)

    def ablate(self, component: str) -> "GCEDConfig":
        """Return a copy with one named component disabled.

        ``component`` is one of: "ase", "qws", "grow", "clip", "i", "c",
        "r" — matching the rows of Table VIII.
        """
        mapping = {
            "ase": {"use_ase": False},
            "qws": {"use_qws": False},
            "grow": {"use_grow": False},
            "clip": {"use_clip": False},
            "i": {"use_informativeness": False},
            "c": {"use_conciseness": False},
            "r": {"use_readability": False},
        }
        if component not in mapping:
            raise KeyError(f"unknown component {component!r}; known: {sorted(mapping)}")
        return replace(self, **mapping[component])
