"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``distill`` — distill evidence for one QA pair over a corpus file.
* ``batch`` — distill a whole dataset split on the engine executor.
* ``index`` — build and persist a sharded corpus retrieval index.
* ``ask`` — open-context distillation: retrieve top-k paragraphs from a
  persisted index, distill each, rank by hybrid evidence score.
* ``serve`` — run the long-lived evidence service (JSON over HTTP).
* ``trace`` — pretty-print a running service's ``/debug/traces`` ring
  (or a saved trace JSON file) as span trees.
* ``dataset`` — generate a synthetic dataset and write SQuAD-schema JSON.
* ``experiment`` — run one of the paper's experiments and print the table.
* ``errors`` — triage weak evidences (Sec. IV-G error analysis).

``--workers N`` fans distillation out over the staged execution engine's
parallel executor; ``--profile`` prints the per-stage wall-clock and
shared-cache hit rates the engine collected.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro import GCED, QATrainer
from repro.datasets import DATASET_KEYS, load_dataset
from repro.datasets.io import save_dataset
from repro.eval import (
    ExperimentContext,
    ablation_table,
    agreement_table,
    degradation_curves,
    format_table,
    human_evaluation_table,
    qa_augmentation_table,
    reduction_statistics,
)
from repro.eval.error_analysis import CATEGORY_DESCRIPTIONS, analyze_errors

__all__ = ["main", "build_parser"]

DEFAULT_INDEX_PATH = pathlib.Path("gced_index.json")

_EXPERIMENTS = (
    "table2",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "fig7",
    "reduction",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Grow-and-Clip Evidence Distillation (GCED) toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_distill = sub.add_parser("distill", help="distill evidence for a QA pair")
    p_distill.add_argument("--question", required=True)
    p_distill.add_argument("--answer", required=True)
    p_distill.add_argument(
        "--context",
        help="context string; defaults to the corpus file's first paragraph",
    )
    p_distill.add_argument(
        "--corpus",
        type=pathlib.Path,
        help="text file, one context paragraph per line (training corpus)",
    )
    p_distill.add_argument("--seed", type=int, default=0)
    p_distill.add_argument(
        "--trace", action="store_true", help="print the full distillation trace"
    )
    p_distill.add_argument(
        "--profile",
        action="store_true",
        help="print per-stage timings and cache hit rates",
    )

    p_batch = sub.add_parser(
        "batch", help="distill a dataset split on the engine executor"
    )
    p_batch.add_argument("--dataset", default="squad11", choices=DATASET_KEYS)
    p_batch.add_argument("--n-examples", type=int, default=24)
    p_batch.add_argument("--n-train", type=int, default=100)
    p_batch.add_argument("--n-dev", type=int, default=60)
    p_batch.add_argument("--seed", type=int, default=0)
    p_batch.add_argument(
        "--workers", type=int, default=1, help="executor pool size (1 = serial)"
    )
    p_batch.add_argument(
        "--backend",
        default="thread",
        choices=("thread", "process"),
        help="parallel executor backend",
    )
    p_batch.add_argument(
        "--profile",
        action="store_true",
        help="print per-stage timings and cache hit rates",
    )
    p_batch.add_argument(
        "--out",
        type=pathlib.Path,
        help="write distilled evidences as JSONL to this path",
    )

    p_index = sub.add_parser(
        "index", help="build and persist a sharded corpus retrieval index"
    )
    p_index.add_argument("--dataset", default="squad11", choices=DATASET_KEYS)
    p_index.add_argument(
        "--corpus",
        type=pathlib.Path,
        help="text file, one paragraph per line (overrides --dataset)",
    )
    p_index.add_argument(
        "--out",
        type=pathlib.Path,
        default=DEFAULT_INDEX_PATH,
        help=f"index file to write (default: {DEFAULT_INDEX_PATH})",
    )
    p_index.add_argument(
        "--shards", type=int, default=4, help="inverted-index shard count"
    )
    p_index.add_argument("--n-train", type=int, default=120)
    p_index.add_argument("--n-dev", type=int, default=60)
    p_index.add_argument("--seed", type=int, default=0)
    p_index.add_argument(
        "--workers",
        type=int,
        default=1,
        help="executor pool size for shard construction (1 = serial)",
    )
    p_index.add_argument(
        "--backend",
        default="thread",
        choices=("thread", "process"),
        help="parallel executor backend",
    )

    p_ask = sub.add_parser(
        "ask",
        help="open-context distillation over a persisted retrieval index",
    )
    p_ask.add_argument("--question", required=True)
    p_ask.add_argument("--answer", required=True)
    p_ask.add_argument(
        "--index",
        type=pathlib.Path,
        default=DEFAULT_INDEX_PATH,
        help=f"index file written by `repro index` (default: {DEFAULT_INDEX_PATH})",
    )
    p_ask.add_argument(
        "--k", type=int, default=3, help="paragraphs to retrieve and distill"
    )
    p_ask.add_argument(
        "--scorer", default="bm25", choices=("bm25", "tfidf")
    )
    p_ask.add_argument(
        "--workers", type=int, default=1, help="executor pool size (1 = serial)"
    )
    p_ask.add_argument(
        "--backend",
        default="thread",
        choices=("thread", "process"),
        help="parallel executor backend",
    )
    p_ask.add_argument(
        "--json",
        action="store_true",
        help="print the full ranked outcome as JSON",
    )
    p_ask.add_argument(
        "--page-size",
        type=int,
        default=0,
        help="page the ranked candidates (0 = one fat response); pages "
        "use the same stateless cursors the /ask endpoint serves",
    )
    p_ask.add_argument(
        "--trace",
        action="store_true",
        help="record a request trace and print the span tree "
        "(retrieval, engine stages, process-worker spans)",
    )

    p_serve = sub.add_parser(
        "serve", help="run the evidence service (JSON over HTTP)"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8080, help="0 picks an ephemeral port"
    )
    p_serve.add_argument("--dataset", default="squad11", choices=DATASET_KEYS)
    p_serve.add_argument("--n-train", type=int, default=100)
    p_serve.add_argument("--n-dev", type=int, default=60)
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument(
        "--workers", type=int, default=1, help="executor pool size (1 = serial)"
    )
    p_serve.add_argument(
        "--backend",
        default="thread",
        choices=("thread", "process"),
        help="parallel executor backend",
    )
    p_serve.add_argument(
        "--max-batch-size",
        type=int,
        default=16,
        help="flush a micro-batch once this many requests are queued",
    )
    p_serve.add_argument(
        "--max-wait-ms",
        type=float,
        default=5.0,
        help="flush at the latest this long after the oldest queued request",
    )
    p_serve.add_argument(
        "--max-queue-depth",
        type=int,
        default=256,
        help="shed requests (429 + Retry-After) past this many pending "
        "in the admission queue (0 = unbounded)",
    )
    p_serve.add_argument(
        "--client-rate",
        type=float,
        default=0.0,
        help="per-client token-bucket refill in engine triples/second "
        "(X-Client-Id header; 0 disables rate limiting)",
    )
    p_serve.add_argument(
        "--client-burst",
        type=float,
        default=0.0,
        help="token-bucket capacity (0 = max(1, client rate))",
    )
    p_serve.add_argument(
        "--trace-sample",
        type=float,
        default=1.0,
        help="fraction of requests to trace (deterministic every-Nth; "
        "0 disables tracing, X-Trace-Id requests always trace)",
    )
    p_serve.add_argument(
        "--slow-trace-ms",
        type=float,
        default=250.0,
        help="traces at/above this latency enter GET /debug/traces",
    )
    p_serve.add_argument(
        "--breaker-failures",
        type=int,
        default=3,
        help="consecutive failures that trip the process-pool and "
        "retrieval circuit breakers open (degraded mode)",
    )
    p_serve.add_argument(
        "--breaker-reset-s",
        type=float,
        default=30.0,
        help="cooldown before an open breaker admits a half-open trial",
    )
    p_serve.add_argument(
        "--ingest-dir",
        default="",
        help="durable live-ingest directory (WAL + segment); enables "
        "POST /ingest and DELETE /docs/<id> and recovers any state "
        "already there",
    )
    p_serve.add_argument(
        "--compact-every",
        type=int,
        default=0,
        help="fold the ingest WAL into a fresh segment after this many "
        "applied operations (0 = only explicit compaction)",
    )
    p_serve.add_argument(
        "--fleet",
        action="store_true",
        help="serve retrieval through a supervised per-shard worker "
        "fleet (scatter-gather with restart + degrade-to-survivors)",
    )
    p_serve.add_argument(
        "--log-level",
        default="info",
        choices=("debug", "info", "warning", "error"),
        help="JSON access/structured log level on stderr",
    )
    p_serve.add_argument(
        "--self-test",
        action="store_true",
        help="serve on an ephemeral port, exercise every endpoint "
        "concurrently, verify byte-identity with single-shot distill, exit",
    )

    p_ingest = sub.add_parser(
        "ingest",
        help="manage the durable live-corpus plane (offline dir or "
        "running service)",
    )
    p_ingest.add_argument(
        "--url",
        default=None,
        help="running service base URL (uses POST /ingest + DELETE "
        "/docs); mutually exclusive with --dir",
    )
    p_ingest.add_argument(
        "--dir",
        type=pathlib.Path,
        default=None,
        help="ingest directory to open offline (recovers WAL state; "
        "mutually exclusive with --url)",
    )
    p_ingest.add_argument(
        "--corpus",
        type=pathlib.Path,
        default=None,
        help="bootstrap corpus (one paragraph per line) for a fresh "
        "--dir with no segment yet",
    )
    p_ingest.add_argument(
        "--add",
        action="append",
        default=[],
        metavar="TEXT",
        help="durably append one paragraph (repeatable)",
    )
    p_ingest.add_argument(
        "--add-file",
        type=pathlib.Path,
        default=None,
        help="durably append one paragraph per non-blank line",
    )
    p_ingest.add_argument(
        "--delete",
        action="append",
        type=int,
        default=[],
        metavar="DOC_ID",
        help="tombstone one document id (repeatable)",
    )
    p_ingest.add_argument(
        "--compact",
        action="store_true",
        help="fold the WAL into a fresh segment (offline --dir only)",
    )
    p_ingest.add_argument(
        "--stats",
        action="store_true",
        help="print the ingest stats block (default when no other action)",
    )

    p_trace = sub.add_parser(
        "trace",
        help="pretty-print slow-trace exemplars from a running service",
    )
    p_trace.add_argument(
        "--url",
        default="http://127.0.0.1:8080",
        help="service base URL to fetch GET /debug/traces from",
    )
    p_trace.add_argument(
        "--file",
        type=pathlib.Path,
        help="read a /debug/traces JSON snapshot (or one trace dict) "
        "from this file instead of a running service",
    )
    p_trace.add_argument(
        "--limit", type=int, default=5, help="newest traces to print"
    )
    p_trace.add_argument(
        "--json",
        action="store_true",
        help="print the raw snapshot JSON instead of span trees",
    )

    p_dataset = sub.add_parser("dataset", help="generate a synthetic dataset")
    p_dataset.add_argument("key", choices=DATASET_KEYS)
    p_dataset.add_argument("--out", type=pathlib.Path, required=True)
    p_dataset.add_argument("--n-train", type=int, default=120)
    p_dataset.add_argument("--n-dev", type=int, default=60)
    p_dataset.add_argument("--seed", type=int, default=0)

    p_exp = sub.add_parser("experiment", help="run a paper experiment")
    p_exp.add_argument("name", choices=_EXPERIMENTS)
    p_exp.add_argument("--dataset", default=None, choices=DATASET_KEYS)
    p_exp.add_argument("--n-examples", type=int, default=24)
    p_exp.add_argument("--n-train", type=int, default=100)
    p_exp.add_argument("--n-dev", type=int, default=60)
    p_exp.add_argument("--seed", type=int, default=0)
    p_exp.add_argument(
        "--workers", type=int, default=1, help="executor pool size (1 = serial)"
    )

    p_err = sub.add_parser("errors", help="triage weak evidences (Sec. IV-G)")
    p_err.add_argument("--dataset", default="squad11", choices=DATASET_KEYS)
    p_err.add_argument("--n-examples", type=int, default=30)
    p_err.add_argument("--seed", type=int, default=0)

    p_report = sub.add_parser(
        "report", help="run the full evaluation suite and write a markdown report"
    )
    p_report.add_argument("--dataset", default="squad11", choices=DATASET_KEYS)
    p_report.add_argument("--out", type=pathlib.Path, required=True)
    p_report.add_argument("--n-examples", type=int, default=24)
    p_report.add_argument("--n-train", type=int, default=100)
    p_report.add_argument("--n-dev", type=int, default=60)
    p_report.add_argument("--seed", type=int, default=0)
    return parser


def _default_dataset(name: str) -> str:
    return {
        "table2": "squad11",
        "table4": "squad11",
        "table5": "triviaqa-web",
        "table6": "squad11",
        "table7": "triviaqa-web",
        "table8": "squad20",
        "fig7": "squad11",
        "reduction": "squad11",
    }[name]


def _run_distill(args: argparse.Namespace) -> int:
    if args.corpus:
        corpus = [
            line.strip()
            for line in args.corpus.read_text().splitlines()
            if line.strip()
        ]
    elif args.context:
        corpus = [args.context]
    else:
        print("error: provide --corpus and/or --context", file=sys.stderr)
        return 2
    context = args.context or corpus[0]
    artifacts = QATrainer(seed=args.seed).train(corpus)
    gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
    if args.trace:
        from repro.obs import render_trace, start_trace

        with start_trace("cli.distill") as handle:
            result = gced.distill(args.question, args.answer, context)
        print(result.explain())
        print(render_trace(handle.to_dict()))
    else:
        result = gced.distill(args.question, args.answer, context)
        print(result.evidence)
    if args.profile:
        print(gced.snapshot_caches().report())
    return 0


def _run_batch(args: argparse.Namespace) -> int:
    from repro.core import BatchDistiller, write_results_jsonl
    from repro.datasets import load_dataset as _load

    dataset = _load(
        args.dataset, seed=args.seed, n_train=args.n_train, n_dev=args.n_dev
    )
    artifacts = QATrainer(seed=args.seed).train(dataset.contexts())
    gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
    examples = dataset.answerable_dev()[: args.n_examples]
    with BatchDistiller(
        gced, workers=args.workers, backend=args.backend
    ) as batch:
        results = batch.distill_examples(examples)
        stats = batch.stats()
        print(stats.summary())
        if args.profile:
            print(stats.profile.report())
    if args.out:
        count = write_results_jsonl(
            args.out,
            (
                (e.question, e.primary_answer, r)
                for e, r in zip(examples, results)
            ),
        )
        print(f"wrote {count} records to {args.out}")
    return 0


def _run_index(args: argparse.Namespace) -> int:
    from repro.retrieval import CorpusRetriever

    if args.corpus:
        docs = [
            line.strip()
            for line in args.corpus.read_text().splitlines()
            if line.strip()
        ]
        metadata = {"source": str(args.corpus), "seed": args.seed}
        source = str(args.corpus)
    else:
        from repro.datasets import load_dataset as _load

        dataset = _load(
            args.dataset, seed=args.seed, n_train=args.n_train, n_dev=args.n_dev
        )
        docs = list(dataset.contexts())
        metadata = {
            "dataset": args.dataset,
            "seed": args.seed,
            "n_train": args.n_train,
            "n_dev": args.n_dev,
        }
        source = args.dataset
    if not docs:
        print("error: the corpus has no paragraphs", file=sys.stderr)
        return 2
    retriever = CorpusRetriever.build(
        docs,
        n_shards=args.shards,
        workers=args.workers,
        backend=args.backend,
        metadata=metadata,
    )
    path = retriever.save(args.out)
    print(f"indexed {source}: {retriever.index.describe()}")
    print(f"wrote {path}")
    return 0


def _run_ask(args: argparse.Namespace) -> int:
    import json

    from repro.core import BatchDistiller, OpenContextDistiller
    from repro.retrieval import CorpusRetriever, make_scorer

    if not args.index.exists():
        print(
            f"error: no index at {args.index}; build one first with "
            "`repro index --dataset squad11`",
            file=sys.stderr,
        )
        return 2
    retriever = CorpusRetriever.load(args.index, scorer=make_scorer(args.scorer))
    seed = int(retriever.index.metadata.get("seed", 0))
    artifacts = QATrainer(seed=seed).train(retriever.corpus)
    gced = GCED(qa_model=artifacts.reader, artifacts=artifacts)
    trace_handle = None
    with OpenContextDistiller(
        BatchDistiller(gced, workers=args.workers, backend=args.backend),
        retriever,
        top_k=args.k,
    ) as distiller:
        if args.trace:
            from repro.obs import start_trace

            with start_trace("cli.ask", k=args.k) as trace_handle:
                outcome = distiller.ask(args.question, args.answer)
        else:
            outcome = distiller.ask(args.question, args.answer)
    if trace_handle is not None:
        from repro.obs import render_trace

        print(render_trace(trace_handle.to_dict()), file=sys.stderr)
    if args.page_size > 0:
        # Same page envelopes the /ask endpoint serves, built offline.
        from repro.service.paging import paginate_ask

        outcome_dict = outcome.to_dict()
        offset = 0
        while True:
            page = paginate_ask(
                outcome_dict, args.k, offset, args.page_size
            )
            print(json.dumps(page, indent=2, sort_keys=True))
            if page["next_cursor"] is None:
                break
            offset += args.page_size
        return 0 if outcome.best is not None else 1
    if args.json:
        print(json.dumps(outcome.to_dict(), indent=2, sort_keys=True))
        # Same exit-code contract as the plain-text mode below.
        return 0 if outcome.best is not None else 1
    if outcome.best is None:
        print("no supporting evidence found", file=sys.stderr)
        return 1
    print(outcome.best.result.evidence)
    for position, candidate in enumerate(outcome.candidates, start=1):
        hit = candidate.paragraph
        if candidate.ok:
            detail = (
                f"hybrid {candidate.result.scores.hybrid:.4f}, "
                f"evidence: {candidate.result.evidence[:80]}"
            )
        else:
            detail = f"error: {candidate.error}"
        print(
            f"  #{position} doc {hit.doc_id} "
            f"(retrieval rank {hit.rank}, score {hit.score:.3f}) {detail}",
            file=sys.stderr,
        )
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    from repro.faults import install_from_env
    from repro.obs import configure_logging
    from repro.service import DistillService, ServiceConfig, make_server

    configure_logging(level=args.log_level)
    # Honor a REPRO_FAULTS plan in the coordinator too (workers install
    # it in their own initializer) — the chaos CI leg's entry point.
    install_from_env()
    config = ServiceConfig(
        dataset=args.dataset,
        seed=args.seed,
        n_train=args.n_train,
        n_dev=args.n_dev,
        workers=args.workers,
        backend=args.backend,
        max_batch_size=args.max_batch_size,
        max_wait_ms=args.max_wait_ms,
        max_queue_depth=args.max_queue_depth,
        client_rate=args.client_rate,
        client_burst=args.client_burst,
        trace_sample=args.trace_sample,
        slow_trace_ms=args.slow_trace_ms,
        breaker_failures=args.breaker_failures,
        breaker_reset_s=args.breaker_reset_s,
        ingest_dir=args.ingest_dir,
        compact_every=args.compact_every,
        fleet=args.fleet,
    )
    print(f"building service resources for {args.dataset} ...", file=sys.stderr)
    service = DistillService.build(config)
    if args.self_test:
        return _serve_self_test(service)
    server = make_server(service, args.host, args.port)
    host, port = server.server_address[:2]
    print(
        f"serving GCED on http://{host}:{port} "
        f"(workers={args.workers}, max_batch_size={args.max_batch_size}, "
        f"max_wait_ms={args.max_wait_ms:g}, "
        f"max_queue_depth={args.max_queue_depth}, "
        f"client_rate={args.client_rate:g}) — Ctrl-C to stop",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.close()
    return 0


def _serve_self_test(service) -> int:
    """End-to-end smoke: serve, hit every endpoint, verify byte-identity."""
    import json
    from concurrent.futures import ThreadPoolExecutor

    from repro.core.serialize import result_to_dict
    from repro.service import ServiceClient, ServiceError, start_server

    server, _thread = start_server(service, quiet=True)
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}")
    failures: list[str] = []
    try:
        if client.healthz().get("status") != "ok":
            failures.append("healthz did not report ok")

        examples = service.dataset.answerable_dev()[:6]
        with ThreadPoolExecutor(max_workers=4) as pool:
            served = list(
                pool.map(
                    lambda e: client.distill(
                        e.question, e.primary_answer, e.context
                    ),
                    examples,
                )
            )
        for example, payload in zip(examples, served):
            direct = result_to_dict(
                service.gced.distill(
                    example.question, example.primary_answer, example.context
                ),
                example.question,
                example.primary_answer,
            )
            if json.dumps(payload, sort_keys=True) != json.dumps(
                direct, sort_keys=True
            ):
                failures.append(
                    f"served result diverged for {example.question!r}"
                )

        batch = client.distill_batch(
            [
                {
                    "question": e.question,
                    "answer": e.primary_answer,
                    "context": e.context,
                }
                for e in examples[:3]
            ]
            + [{"question": "poisoned", "answer": "x", "context": "   "}]
        )
        if batch["errors"] != 1 or len(batch["results"]) != 4:
            failures.append(f"batch error isolation failed: {batch['errors']}")

        try:
            client.distill("q", "a", "")
            failures.append("empty context was not rejected")
        except ServiceError as exc:
            if exc.status != 400:
                failures.append(f"expected 400 for empty context, got {exc.status}")

        if service.retriever is None:
            failures.append("service built without a retriever")
        else:
            from repro.core.open_context import build_outcome

            example = examples[0]
            served_ask = client.ask(example.question, example.primary_answer, k=2)
            hits = service.retriever.retrieve_for_qa(
                example.question, example.primary_answer, k=2
            )
            direct_ask = build_outcome(
                example.question,
                example.primary_answer,
                hits,
                [
                    service.gced.distill(
                        example.question, example.primary_answer, hit.text
                    )
                    for hit in hits
                ],
            ).to_dict()
            if json.dumps(served_ask, sort_keys=True) != json.dumps(
                direct_ask, sort_keys=True
            ):
                failures.append(
                    "served /ask diverged from inline open-context distillation"
                )
            paged = list(
                client.ask_pages(
                    example.question, example.primary_answer, k=2, page_size=1
                )
            )
            stitched = [c for page in paged for c in page["candidates"]]
            if json.dumps(stitched, sort_keys=True) != json.dumps(
                served_ask["candidates"], sort_keys=True
            ):
                failures.append(
                    "paged /ask candidates did not concatenate to the fat response"
                )

        stats = client.stats()
        for key in ("service", "scheduler", "batch", "stages", "caches", "obs"):
            if key not in stats:
                failures.append(f"stats missing {key!r}")
        if stats.get("scheduler", {}).get("completed", 0) < len(examples):
            failures.append("stats did not count served requests")

        # Telemetry plane: /metrics must be valid Prometheus exposition
        # and agree with /stats on the shared counters.
        from repro.obs.metrics import (
            lint_exposition,
            parse_exposition,
            sample_value,
        )

        metrics_text = client.metrics_text()
        problems = lint_exposition(metrics_text)
        if problems:
            failures.append(f"/metrics failed exposition lint: {problems[:3]}")
        families = parse_exposition(metrics_text)
        stats_after = client.stats()
        for metric, block, field in (
            ("gced_scheduler_submitted_total", "scheduler", "submitted"),
            ("gced_scheduler_completed_total", "scheduler", "completed"),
            ("gced_scheduler_coalesced_total", "scheduler", "coalesced"),
            ("gced_scheduler_shed_total", "scheduler", "shed"),
            ("gced_admission_admitted_total", "admission", "admitted"),
        ):
            exposed = sample_value(families, metric)
            reported = stats_after.get(block, {}).get(field)
            if exposed is None or reported is None or exposed != reported:
                failures.append(
                    f"{metric}={exposed} disagrees with "
                    f"/stats {block}.{field}={reported}"
                )

        # An explicit X-Trace-Id must be honored and echoed back.
        import urllib.request

        example = examples[0]
        request = urllib.request.Request(
            f"http://{host}:{port}/distill",
            data=json.dumps(
                {
                    "question": example.question,
                    "answer": example.primary_answer,
                    "context": example.context,
                }
            ).encode("utf-8"),
            headers={
                "Content-Type": "application/json",
                "X-Trace-Id": "cafef00dcafef00d",
            },
        )
        with urllib.request.urlopen(request, timeout=30) as resp:
            echoed = resp.headers.get("X-Trace-Id")
            resp.read()
        if echoed != "cafef00dcafef00d":
            failures.append(f"X-Trace-Id not echoed (got {echoed!r})")

        # A request whose X-Deadline-Ms budget is already spent must
        # answer 504 with a parseable JSON body, without engine work.
        try:
            client.distill(
                example.question,
                example.primary_answer,
                example.context + " (deadline probe)",
                deadline_ms=0,
            )
            failures.append("expired deadline was not rejected")
        except ServiceError as exc:
            if exc.status != 504:
                failures.append(
                    f"expected 504 for expired deadline, got {exc.status}"
                )
            elif not (
                isinstance(exc.payload, dict) and exc.payload.get("error")
            ):
                failures.append(
                    f"504 body was not parseable JSON: {exc.payload!r}"
                )
    finally:
        server.shutdown()
        server.server_close()
        service.close()

    if failures:
        for failure in failures:
            print(f"self-test FAILED: {failure}", file=sys.stderr)
        return 1
    print(
        f"self-test ok: {len(served)} concurrent /distill requests "
        "byte-identical to single-shot GCED.distill; /ask matched inline "
        "open-context distillation (fat and paged); /batch isolated the "
        "poisoned request; /healthz and /stats healthy; /metrics valid "
        "and consistent with /stats; X-Trace-Id honored and echoed; "
        "expired X-Deadline-Ms answered 504 with a parseable body"
    )
    return 0


def _run_ingest(args: argparse.Namespace) -> int:
    """Live-corpus writes, against a running service or an offline dir."""
    import json

    if (args.url is None) == (args.dir is None):
        print("error: provide exactly one of --url or --dir", file=sys.stderr)
        return 2
    texts = list(args.add)
    if args.add_file is not None:
        texts.extend(
            line.strip()
            for line in args.add_file.read_text().splitlines()
            if line.strip()
        )
    wants_stats = args.stats or not (texts or args.delete or args.compact)

    if args.url is not None:
        from repro.service import ServiceClient, ServiceError

        if args.compact:
            print(
                "error: --compact is offline-only (use --dir; a running "
                "service compacts via --compact-every)",
                file=sys.stderr,
            )
            return 2
        client = ServiceClient(args.url)
        try:
            if texts:
                print(json.dumps(client.ingest(texts)))
            for doc_id in args.delete:
                print(json.dumps(client.delete_doc(doc_id)))
            if wants_stats:
                print(json.dumps(client.stats().get("ingest"), indent=2))
        except ServiceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        return 0

    from repro.retrieval import IngestManager

    corpus = None
    if args.corpus is not None:
        corpus = [
            line.strip()
            for line in args.corpus.read_text().splitlines()
            if line.strip()
        ]
    try:
        manager = IngestManager.open(args.dir, base_corpus=corpus)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    with manager:
        if texts:
            print(json.dumps({"doc_ids": manager.add_documents(texts)}))
        for doc_id in args.delete:
            try:
                manager.delete_document(doc_id)
                print(json.dumps({"deleted": doc_id}))
            except KeyError:
                print(f"error: no live document {doc_id}", file=sys.stderr)
                return 1
        if args.compact:
            print(json.dumps(manager.compact()))
        if wants_stats:
            print(json.dumps(manager.stats(), indent=2))
    return 0


def _run_trace(args: argparse.Namespace) -> int:
    import json

    from repro.obs import render_trace

    if args.file is not None:
        snapshot = json.loads(args.file.read_text())
        # Accept either a full /debug/traces snapshot or one trace dict.
        if "spans" in snapshot:
            snapshot = {
                "traces": [
                    {
                        "duration_ms": snapshot.get("duration_ms", 0.0),
                        "trace": snapshot,
                    }
                ]
            }
    else:
        from repro.service import ServiceClient, ServiceError

        try:
            snapshot = ServiceClient(args.url).debug_traces()
        except (ServiceError, OSError) as exc:
            print(f"error: cannot fetch {args.url}/debug/traces: {exc}",
                  file=sys.stderr)
            return 2
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return 0
    traces = snapshot.get("traces", [])
    if not traces:
        threshold = snapshot.get("threshold_ms")
        seen = snapshot.get("seen", 0)
        print(
            f"no slow traces captured yet "
            f"({seen} traces seen, threshold {threshold}ms)"
        )
        return 0
    for entry in traces[: args.limit]:
        print(f"--- {entry['duration_ms']:.1f}ms ---")
        print(render_trace(entry["trace"]))
    remaining = len(traces) - args.limit
    if remaining > 0:
        print(f"... {remaining} older trace(s) not shown (--limit)")
    return 0


def _run_dataset(args: argparse.Namespace) -> int:
    dataset = load_dataset(
        args.key, seed=args.seed, n_train=args.n_train, n_dev=args.n_dev
    )
    save_dataset(dataset, args.out)
    print(
        f"wrote {len(dataset.train)} train / {len(dataset.dev)} dev examples "
        f"to {args.out}"
    )
    return 0


def _run_experiment(args: argparse.Namespace) -> int:
    dataset_key = args.dataset or _default_dataset(args.name)
    with ExperimentContext.build(
        dataset_key,
        seed=args.seed,
        n_train=args.n_train,
        n_dev=args.n_dev,
        workers=args.workers,
    ) as ctx:
        n = args.n_examples
        if args.name == "table2":
            print(format_table(agreement_table(ctx, n_examples=n)))
        elif args.name in ("table4", "table5"):
            print(format_table(human_evaluation_table(ctx, n_examples=n)))
        elif args.name in ("table6", "table7"):
            print(format_table(qa_augmentation_table(ctx, n_examples=n)))
        elif args.name == "table8":
            print(format_table(ablation_table(ctx, n_examples=n)))
        elif args.name == "fig7":
            print(format_table(degradation_curves(ctx, n_examples=n)))
        elif args.name == "reduction":
            stats = reduction_statistics(ctx, n_examples=n)
            print(
                f"{stats['dataset']}: {100 * stats['mean_reduction']:.1f}% "
                f"words removed ({stats['mean_context_words']:.0f} -> "
                f"{stats['mean_evidence_words']:.0f})"
            )
    return 0


def _run_errors(args: argparse.Namespace) -> int:
    ctx = ExperimentContext.build(args.dataset, seed=args.seed)
    diagnoses = analyze_errors(ctx, n_examples=args.n_examples)
    counts: dict[str, int] = {}
    for diagnosis in diagnoses:
        counts[diagnosis.category] = counts.get(diagnosis.category, 0) + 1
    print("category counts:")
    for category, count in sorted(counts.items(), key=lambda kv: -kv[1]):
        print(f"  {category:<22} {count:>3}  {CATEGORY_DESCRIPTIONS[category]}")
    worst = [d for d in diagnoses if d.category != "ok"][:5]
    if worst:
        print("\nworst cases:")
        for diagnosis in worst:
            print(f"  [{diagnosis.category}] Q: {diagnosis.question}")
            print(f"    evidence: {diagnosis.evidence[:100]}")
    return 0


def _run_report(args: argparse.Namespace) -> int:
    from repro.eval.report import write_report

    ctx = ExperimentContext.build(
        args.dataset, seed=args.seed, n_train=args.n_train, n_dev=args.n_dev
    )
    path = write_report(ctx, args.out, n_examples=args.n_examples)
    print(f"report written to {path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "distill": _run_distill,
        "batch": _run_batch,
        "index": _run_index,
        "ask": _run_ask,
        "serve": _run_serve,
        "ingest": _run_ingest,
        "trace": _run_trace,
        "dataset": _run_dataset,
        "experiment": _run_experiment,
        "errors": _run_errors,
        "report": _run_report,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests/CLI
    raise SystemExit(main())
