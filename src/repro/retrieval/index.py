"""Sharded inverted index over a paragraph corpus.

The index is the retrieval subsystem's data plane: each paragraph is
tokenized once (with :func:`repro.text.tokenizer.word_tokens`, the same
normalization every scorer in the repo uses) into a shard's postings —
``term → ((doc_id, tf), ...)`` — plus per-document lengths.  Documents are
assigned to shards round-robin by id (``doc_id % n_shards``), so the
shard layout is a pure function of the corpus and the shard count, never
of who built it.

Shard construction is embarrassingly parallel and fans out over the
engine's executors (:func:`repro.engine.executor.build_executor`):
:func:`build_shard` is a module-level function of picklable inputs, so
serial, thread-pool, and process-pool builds produce *byte-identical*
indexes — the same contract the batch distiller keeps, extended to the
retrieval layer.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.engine.executor import Executor, SerialExecutor
from repro.text.tokenizer import word_tokens

__all__ = ["IndexShard", "InvertedIndex", "build_shard", "query_terms"]

Posting = tuple[int, int]
"""One posting: ``(doc_id, term_frequency)``."""


@dataclass(frozen=True)
class IndexShard:
    """Postings and document statistics for one corpus shard.

    Attributes:
        shard_id: the shard's position in the index layout.
        doc_lengths: word-token count per document in this shard.
        postings: ``term → ((doc_id, tf), ...)``, doc ids ascending,
            terms inserted in sorted order (the canonical form the
            byte-identity guarantees are stated over).
    """

    shard_id: int
    doc_lengths: dict[int, int]
    postings: dict[str, tuple[Posting, ...]]

    @property
    def n_docs(self) -> int:
        return len(self.doc_lengths)

    @property
    def n_terms(self) -> int:
        return len(self.postings)


def build_shard(payload: tuple[int, tuple[tuple[int, str], ...]]) -> IndexShard:
    """Build one shard from ``(shard_id, ((doc_id, text), ...))``.

    Module-level and picklable-in/picklable-out on purpose: this is the
    unit of work the executor fans out, including to process pools.
    """
    shard_id, docs = payload
    doc_lengths: dict[int, int] = {}
    term_postings: dict[str, list[Posting]] = {}
    for doc_id, text in docs:
        counts = Counter(word_tokens(text))
        doc_lengths[doc_id] = sum(counts.values())
        for term, tf in counts.items():
            term_postings.setdefault(term, []).append((doc_id, tf))
    # Canonical form: terms sorted, postings already ascending by doc_id
    # because docs arrive in ascending id order.
    postings = {
        term: tuple(term_postings[term]) for term in sorted(term_postings)
    }
    return IndexShard(
        shard_id=shard_id, doc_lengths=doc_lengths, postings=postings
    )


@dataclass
class InvertedIndex:
    """A sharded inverted index plus the raw corpus it was built from.

    The raw paragraphs ride along (``docs``) so a persisted index is
    self-contained: ``repro ask`` can re-train the QA artifacts and serve
    retrieved paragraphs from the index file alone, fully offline.
    """

    shards: tuple[IndexShard, ...]
    docs: tuple[str, ...]
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        doc_freq: dict[str, int] = {}
        total_len = 0
        for shard in self.shards:
            total_len += sum(shard.doc_lengths.values())
            for term, postings in shard.postings.items():
                doc_freq[term] = doc_freq.get(term, 0) + len(postings)
        self._doc_freq = doc_freq
        self._total_len = total_len

    # -------------------------------------------------------- snapshot plane
    def __getstate__(self) -> dict:
        from repro.engine.snapshot import externalizing

        if externalizing():
            # Shards and docs ride the snapshot's shared segment (the
            # canonical JSON bytes, one copy for all workers); the pickle
            # carries a hollow shell that re-attaches on first lookup.
            return {"metadata": dict(self.metadata), "_hollow": True}
        return self.__dict__.copy()

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def __getattr__(self, name: str):
        # Reached only for *missing* attributes: a hollow instance lazily
        # rehydrates its data plane from the active snapshot.
        if name in ("shards", "docs", "_doc_freq", "_total_len") and self.__dict__.get(
            "_hollow"
        ):
            self._rehydrate()
            return self.__dict__[name]
        raise AttributeError(name)

    def _rehydrate(self) -> None:
        from repro.engine.snapshot import load_active_section

        blob = load_active_section("index")
        if blob is None:
            raise RuntimeError(
                "inverted index was externalized to a pipeline snapshot, "
                "but no snapshot is active in this process"
            )
        loaded = InvertedIndex.from_snapshot_bytes(blob)
        self.__dict__.update(
            shards=loaded.shards,
            docs=loaded.docs,
            _doc_freq=loaded._doc_freq,
            _total_len=loaded._total_len,
            _hollow=False,
        )

    def to_snapshot_bytes(self) -> bytes:
        """Canonical serialized form for the snapshot's ``index`` section.

        Reuses :meth:`to_dict` (the byte-identity reference form) encoded
        as deterministic JSON, so snapshot round trips are byte-identical
        and workers parse postings only if their traffic retrieves.
        """
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")

    @classmethod
    def from_snapshot_bytes(cls, blob: bytes) -> "InvertedIndex":
        return cls.from_dict(json.loads(blob.decode("utf-8")))

    # ------------------------------------------------------------ building
    @classmethod
    def build(
        cls,
        docs: Iterable[str],
        n_shards: int = 4,
        executor: Executor | None = None,
        metadata: dict | None = None,
    ) -> "InvertedIndex":
        """Index ``docs``, fanning shard construction out on ``executor``.

        The shard layout (``doc_id % n_shards``) and each shard's content
        depend only on the corpus and ``n_shards`` — the executor choice
        (serial/thread/process) changes wall-clock, never bytes.
        """
        docs = tuple(docs)
        if not docs:
            raise ValueError("cannot index an empty corpus")
        if n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        n_shards = min(n_shards, len(docs))
        payloads = [
            (
                shard_id,
                tuple(
                    (doc_id, docs[doc_id])
                    for doc_id in range(shard_id, len(docs), n_shards)
                ),
            )
            for shard_id in range(n_shards)
        ]
        executor = executor or SerialExecutor()
        shards = tuple(executor.map(build_shard, payloads))
        return cls(shards=shards, docs=docs, metadata=dict(metadata or {}))

    # ------------------------------------------------------------- lookups
    @property
    def n_docs(self) -> int:
        return len(self.docs)

    @property
    def n_terms(self) -> int:
        return len(self._doc_freq)

    @property
    def avg_doc_len(self) -> float:
        return self._total_len / len(self.docs) if self.docs else 0.0

    def doc_freq(self, term: str) -> int:
        """Number of documents containing ``term`` (0 if unseen)."""
        return self._doc_freq.get(term, 0)

    def doc_length(self, doc_id: int) -> int:
        return self.shards[doc_id % len(self.shards)].doc_lengths[doc_id]

    def postings(self, term: str) -> tuple[Posting, ...]:
        """Merged ``(doc_id, tf)`` postings for ``term``, ids ascending."""
        merged: list[Posting] = []
        for shard in self.shards:
            merged.extend(shard.postings.get(term, ()))
        merged.sort()
        return tuple(merged)

    def doc_text(self, doc_id: int) -> str:
        return self.docs[doc_id]

    # ------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        """Canonical JSON-safe form (the byte-identity reference)."""
        return {
            "n_shards": len(self.shards),
            "metadata": dict(sorted(self.metadata.items())),
            "docs": list(self.docs),
            "shards": [
                {
                    "shard_id": shard.shard_id,
                    "doc_lengths": {
                        str(doc_id): length
                        for doc_id, length in sorted(shard.doc_lengths.items())
                    },
                    "postings": {
                        term: [list(posting) for posting in postings]
                        for term, postings in shard.postings.items()
                    },
                }
                for shard in self.shards
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "InvertedIndex":
        shards = tuple(
            IndexShard(
                shard_id=int(shard["shard_id"]),
                doc_lengths={
                    int(doc_id): int(length)
                    for doc_id, length in shard["doc_lengths"].items()
                },
                postings={
                    term: tuple(
                        (int(doc_id), int(tf)) for doc_id, tf in postings
                    )
                    for term, postings in shard["postings"].items()
                },
            )
            for shard in payload["shards"]
        )
        return cls(
            shards=shards,
            docs=tuple(payload["docs"]),
            metadata=dict(payload.get("metadata", {})),
        )

    def describe(self) -> str:
        """One-line human summary (used by the CLI)."""
        return (
            f"{self.n_docs} docs, {self.n_terms} terms, "
            f"{len(self.shards)} shards, "
            f"avg doc length {self.avg_doc_len:.1f} words"
        )


def query_terms(query: str) -> Sequence[str]:
    """Tokenize a free-text query exactly like indexed documents."""
    return word_tokens(query)
