"""The retrieval facade: index + scorer → ranked paragraphs.

:class:`CorpusRetriever` is what the rest of the system talks to — the
``retrieve`` pipeline stage, the open-context distiller, the ``/ask``
endpoint, and the CLI all hold one of these.  It binds a sharded
:class:`~repro.retrieval.index.InvertedIndex` to a ranking scorer and
returns :class:`RetrievedParagraph` hits carrying everything downstream
ranking needs: the paragraph text, its corpus id, the retrieval score,
and the retrieval rank (the deterministic tie-break key for the evidence
re-ranking step).
"""

from __future__ import annotations

import pathlib
import threading
from dataclasses import dataclass
from typing import Iterable

from repro.engine.executor import build_executor
from repro.faults import CircuitBreaker, fault_point
from repro.obs.logs import get_logger
from repro.obs.trace import span as obs_span
from repro.retrieval.bm25 import BM25Scorer, RankingScorer
from repro.retrieval.index import InvertedIndex, Posting
from repro.retrieval.store import load_index, save_index

__all__ = ["CorpusRetriever", "RetrievedParagraph"]

_log = get_logger("retrieval")


@dataclass(frozen=True)
class RetrievedParagraph:
    """One retrieval hit.

    Attributes:
        doc_id: position of the paragraph in the indexed corpus.
        rank: 0-based retrieval rank (0 = best match).
        score: the scorer's relevance score.
        text: the paragraph itself.
    """

    doc_id: int
    rank: int
    score: float
    text: str

    def to_dict(self) -> dict:
        return {
            "doc_id": self.doc_id,
            "rank": self.rank,
            "score": self.score,
            "text": self.text,
        }


class _ReducedIndexView:
    """A duck-typed :class:`InvertedIndex` view over a shard subset.

    The degraded search surface: scorers only call ``n_docs`` /
    ``avg_doc_len`` / ``doc_freq`` / ``postings`` / ``doc_length``, all
    of which this view answers from the kept shards alone, so a search
    never touches the shards being dropped.  Corpus statistics are
    recomputed over the subset — degraded rankings are deterministic for
    a given subset, just computed from less of the corpus.
    """

    def __init__(self, index: InvertedIndex, n_keep: int) -> None:
        self._shards = index.shards[:n_keep]
        self._stride = len(index.shards)
        doc_freq: dict[str, int] = {}
        total_len = 0
        for shard in self._shards:
            total_len += sum(shard.doc_lengths.values())
            for term, postings in shard.postings.items():
                doc_freq[term] = doc_freq.get(term, 0) + len(postings)
        self._doc_freq = doc_freq
        self.n_docs = sum(shard.n_docs for shard in self._shards)
        self.avg_doc_len = total_len / self.n_docs if self.n_docs else 0.0
        self.n_shards = n_keep

    def doc_freq(self, term: str) -> int:
        return self._doc_freq.get(term, 0)

    def doc_length(self, doc_id: int) -> int:
        # Shard layout is doc_id % total shards; postings from kept
        # shards only ever name doc ids that land in kept shards.
        return self._shards[doc_id % self._stride].doc_lengths[doc_id]

    def postings(self, term: str) -> tuple[Posting, ...]:
        merged: list[Posting] = []
        for shard in self._shards:
            merged.extend(shard.postings.get(term, ()))
        merged.sort()
        return tuple(merged)


class CorpusRetriever:
    """Top-k paragraph retrieval over an inverted index.

    Wraps the search in a :class:`~repro.faults.CircuitBreaker`:
    repeated scorer failures trip it open, and searches degrade to the
    first half of the shards (recomputed statistics, deterministic
    ranking over the subset) instead of failing the request.  The
    service surfaces this through ``degraded: true`` and ``/healthz``.
    """

    def __init__(
        self,
        index: InvertedIndex,
        scorer: RankingScorer | None = None,
        breaker_failures: int = 3,
        breaker_reset_s: float = 30.0,
    ) -> None:
        self.index = index
        self.scorer = scorer or BM25Scorer()
        self.fleet = None
        self.breaker = CircuitBreaker(
            name="retrieval",
            failure_threshold=breaker_failures,
            reset_after_s=breaker_reset_s,
        )
        self._reduced: _ReducedIndexView | None = None
        self._stats_lock = threading.Lock()
        self._degraded_searches = 0

    # ----------------------------------------------------------- pickling
    def __getstate__(self) -> dict:
        # A retriever crosses process boundaries inside the pipeline
        # snapshot payload.  Locks, fleets (threads), and cached views
        # stay behind; the worker side searches inline over its
        # snapshot-hydrated index.
        state = self.__dict__.copy()
        del state["_stats_lock"]
        state["fleet"] = None
        state["_reduced"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._stats_lock = threading.Lock()

    @property
    def n_shards(self) -> int:
        """Shard count without materializing a mutable index's overlay."""
        index = self.index
        if hasattr(index, "n_shards"):
            return index.n_shards
        return len(index.shards)

    def attach_fleet(self, fleet) -> None:
        """Route searches through a :class:`~repro.retrieval.fleet.ShardFleet`.

        The fleet and the inline scorer rank identically (see the fleet
        module docstring); the retrieval breaker and reduced-shard
        fallback wrap the fleet exactly as they wrap inline search.
        """
        self.fleet = fleet

    # ------------------------------------------------------------ building
    @classmethod
    def build(
        cls,
        corpus: Iterable[str],
        n_shards: int = 4,
        workers: int = 1,
        backend: str = "thread",
        scorer: RankingScorer | None = None,
        metadata: dict | None = None,
    ) -> "CorpusRetriever":
        """Index ``corpus`` on the engine executor and wrap it.

        ``workers``/``backend`` pick the executor exactly as the batch
        distiller does; the built index is byte-identical regardless.
        """
        with build_executor(workers=workers, backend=backend) as executor:
            index = InvertedIndex.build(
                corpus, n_shards=n_shards, executor=executor, metadata=metadata
            )
        return cls(index, scorer=scorer)

    @classmethod
    def load(
        cls, path: str | pathlib.Path, scorer: RankingScorer | None = None
    ) -> "CorpusRetriever":
        """Load a retriever from a persisted index file."""
        return cls(load_index(path), scorer=scorer)

    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        """Persist the underlying index (scorers are config, not state)."""
        return save_index(self.index, path)

    # ----------------------------------------------------------- retrieval
    def retrieve(self, query: str, k: int = 3) -> list[RetrievedParagraph]:
        """The ``k`` paragraphs most relevant to ``query``, best first.

        While the retrieval breaker is open (or on an individual search
        failure), the ranking comes from the reduced shard subset rather
        than an error — degraded recall beats a failed request for a
        read-only endpoint.
        """
        if k < 1:
            raise ValueError("k must be at least 1")
        with obs_span("retrieval.search", k=k) as search_span:
            if not self.breaker.allow():
                hits = self._search_reduced(query, k)
                search_span.tag(hits=len(hits), degraded=True)
            else:
                try:
                    fault_point("retrieval.search", detail=query)
                    if self.fleet is not None:
                        hits = self.fleet.search(query, k)
                    else:
                        hits = self.scorer.top_k(self.index, query, k)
                except Exception:
                    self.breaker.record_failure()
                    _log.warning(
                        "retrieval search failed; serving reduced-shard "
                        "results",
                        exc_info=True,
                        breaker=self.breaker.state,
                    )
                    hits = self._search_reduced(query, k)
                    search_span.tag(hits=len(hits), degraded=True)
                else:
                    self.breaker.record_success()
                    search_span.tag(hits=len(hits))
        return [
            RetrievedParagraph(
                doc_id=doc_id,
                rank=rank,
                score=score,
                text=self.index.doc_text(doc_id),
            )
            for rank, (doc_id, score) in enumerate(hits)
        ]

    def _search_reduced(self, query: str, k: int) -> list[tuple[int, float]]:
        """Rank over the first half of the shards (the degraded path).

        The view is cached only for immutable indexes — a mutable index
        changes under live ingest, so its degraded view is rebuilt per
        search from the materialized overlay.
        """
        n_keep = max(1, self.n_shards // 2)
        if isinstance(self.index, InvertedIndex):
            if self._reduced is None:
                self._reduced = _ReducedIndexView(self.index, n_keep)
            reduced = self._reduced
        else:
            reduced = _ReducedIndexView(self.index, n_keep)
        with self._stats_lock:
            self._degraded_searches += 1
        return self.scorer.top_k(reduced, query, k)

    @property
    def degraded(self) -> bool:
        """True while the retrieval breaker is open/half-open."""
        return self.breaker.degraded

    def recovery_info(self) -> dict:
        """Breaker + degraded-search counters for ``/stats``."""
        with self._stats_lock:
            degraded_searches = self._degraded_searches
        return {
            "degraded": self.degraded,
            "degraded_searches": degraded_searches,
            "reduced_shards": max(1, self.n_shards // 2),
            "n_shards": self.n_shards,
            "breaker": self.breaker.stats(),
        }

    def retrieve_for_qa(
        self, question: str, answer: str, k: int = 3
    ) -> list[RetrievedParagraph]:
        """Retrieve supporting paragraphs for a question-answer pair.

        The query concatenates question and answer: the answer terms are
        the strongest signal for *evidence* retrieval (the paragraph must
        contain the answer span to support it).
        """
        return self.retrieve(f"{question} {answer}", k=k)

    @property
    def corpus(self) -> tuple[str, ...]:
        """The raw indexed paragraphs (doc_id order)."""
        return self.index.docs
