"""The retrieval facade: index + scorer → ranked paragraphs.

:class:`CorpusRetriever` is what the rest of the system talks to — the
``retrieve`` pipeline stage, the open-context distiller, the ``/ask``
endpoint, and the CLI all hold one of these.  It binds a sharded
:class:`~repro.retrieval.index.InvertedIndex` to a ranking scorer and
returns :class:`RetrievedParagraph` hits carrying everything downstream
ranking needs: the paragraph text, its corpus id, the retrieval score,
and the retrieval rank (the deterministic tie-break key for the evidence
re-ranking step).
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import Iterable

from repro.engine.executor import build_executor
from repro.obs.trace import span as obs_span
from repro.retrieval.bm25 import BM25Scorer, RankingScorer
from repro.retrieval.index import InvertedIndex
from repro.retrieval.store import load_index, save_index

__all__ = ["CorpusRetriever", "RetrievedParagraph"]


@dataclass(frozen=True)
class RetrievedParagraph:
    """One retrieval hit.

    Attributes:
        doc_id: position of the paragraph in the indexed corpus.
        rank: 0-based retrieval rank (0 = best match).
        score: the scorer's relevance score.
        text: the paragraph itself.
    """

    doc_id: int
    rank: int
    score: float
    text: str

    def to_dict(self) -> dict:
        return {
            "doc_id": self.doc_id,
            "rank": self.rank,
            "score": self.score,
            "text": self.text,
        }


class CorpusRetriever:
    """Top-k paragraph retrieval over an inverted index."""

    def __init__(
        self, index: InvertedIndex, scorer: RankingScorer | None = None
    ) -> None:
        self.index = index
        self.scorer = scorer or BM25Scorer()

    # ------------------------------------------------------------ building
    @classmethod
    def build(
        cls,
        corpus: Iterable[str],
        n_shards: int = 4,
        workers: int = 1,
        backend: str = "thread",
        scorer: RankingScorer | None = None,
        metadata: dict | None = None,
    ) -> "CorpusRetriever":
        """Index ``corpus`` on the engine executor and wrap it.

        ``workers``/``backend`` pick the executor exactly as the batch
        distiller does; the built index is byte-identical regardless.
        """
        with build_executor(workers=workers, backend=backend) as executor:
            index = InvertedIndex.build(
                corpus, n_shards=n_shards, executor=executor, metadata=metadata
            )
        return cls(index, scorer=scorer)

    @classmethod
    def load(
        cls, path: str | pathlib.Path, scorer: RankingScorer | None = None
    ) -> "CorpusRetriever":
        """Load a retriever from a persisted index file."""
        return cls(load_index(path), scorer=scorer)

    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        """Persist the underlying index (scorers are config, not state)."""
        return save_index(self.index, path)

    # ----------------------------------------------------------- retrieval
    def retrieve(self, query: str, k: int = 3) -> list[RetrievedParagraph]:
        """The ``k`` paragraphs most relevant to ``query``, best first."""
        with obs_span("retrieval.search", k=k) as search_span:
            hits = self.scorer.top_k(self.index, query, k)
            search_span.tag(hits=len(hits))
        return [
            RetrievedParagraph(
                doc_id=doc_id,
                rank=rank,
                score=score,
                text=self.index.doc_text(doc_id),
            )
            for rank, (doc_id, score) in enumerate(hits)
        ]

    def retrieve_for_qa(
        self, question: str, answer: str, k: int = 3
    ) -> list[RetrievedParagraph]:
        """Retrieve supporting paragraphs for a question-answer pair.

        The query concatenates question and answer: the answer terms are
        the strongest signal for *evidence* retrieval (the paragraph must
        contain the answer span to support it).
        """
        return self.retrieve(f"{question} {answer}", k=k)

    @property
    def corpus(self) -> tuple[str, ...]:
        """The raw indexed paragraphs (doc_id order)."""
        return self.index.docs
