"""Versioned on-disk persistence for the inverted index.

``repro index`` builds once and writes here; ``repro ask`` and the
service load warm.  Two envelope versions of the same format coexist:

* **version 1** — a plain immutable index (the original format)::

      {"format": "gced-index", "version": 1, "index": {<canonical index>}}

* **version 2** — an ingestion *segment*: the compacted index plus the
  tombstoned doc ids (dead slots whose ids must never be reused) and
  segment metadata — the WAL sequence number folded into the segment
  (``applied_seq``, which makes post-crash replay idempotent) and the
  compaction ``generation`` (which versions pipeline-snapshot refreshes)::

      {"format": "gced-index", "version": 2, "index": {...},
       "tombstones": [...], "segment": {"applied_seq": N, "generation": G}}

Both payloads are serialized with sorted keys, so saving the same state
twice produces byte-identical files and save → load → save round trips
are identities on bytes (the property the tests pin down).  The loaders
accept *both* versions — a version-1 file loads as a segment with no
tombstones and no WAL history — and reject unknown versions loudly
rather than guessing.

:func:`save_segment` is the compaction swap primitive: write to a
temporary file in the same directory, fsync it, ``rename`` over the
target, fsync the directory.  A crash at any byte leaves either the old
segment or the new one — never a torn file.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass, field

from repro.retrieval.index import InvertedIndex

__all__ = [
    "INDEX_FORMAT",
    "INDEX_VERSION",
    "SEGMENT_VERSION",
    "Segment",
    "index_to_json",
    "load_index",
    "load_segment",
    "save_index",
    "save_segment",
    "segment_to_json",
]

INDEX_FORMAT = "gced-index"
INDEX_VERSION = 1
SEGMENT_VERSION = 2
_SUPPORTED_VERSIONS = (INDEX_VERSION, SEGMENT_VERSION)


@dataclass(frozen=True)
class Segment:
    """One durable checkpoint of the ingestion state.

    Attributes:
        index: the compacted immutable index (tombstoned slots hold
            ``""`` and contribute no postings).
        tombstones: dead doc ids, kept so the id space stays append-only.
        applied_seq: every WAL record with ``seq <= applied_seq`` is
            already folded into ``index`` — replay skips them.
        generation: bumped by each compaction; consumed by the pipeline
            snapshot plane to re-hydrate live worker pools.
    """

    index: InvertedIndex
    tombstones: tuple[int, ...] = ()
    applied_seq: int = 0
    generation: int = 0
    meta: dict = field(default_factory=dict)


def index_to_json(index: InvertedIndex) -> str:
    """The canonical version-1 envelope (sorted keys, trailing newline)."""
    envelope = {
        "format": INDEX_FORMAT,
        "version": INDEX_VERSION,
        "index": index.to_dict(),
    }
    return json.dumps(envelope, sort_keys=True) + "\n"


def segment_to_json(segment: Segment) -> str:
    """The canonical version-2 envelope (sorted keys, trailing newline)."""
    envelope = {
        "format": INDEX_FORMAT,
        "version": SEGMENT_VERSION,
        "index": segment.index.to_dict(),
        "tombstones": sorted(int(i) for i in segment.tombstones),
        "segment": {
            "applied_seq": int(segment.applied_seq),
            "generation": int(segment.generation),
            "meta": dict(sorted(segment.meta.items())),
        },
    }
    return json.dumps(envelope, sort_keys=True) + "\n"


def save_index(index: InvertedIndex, path: str | pathlib.Path) -> pathlib.Path:
    """Persist ``index`` as a version-1 file at ``path``."""
    path = pathlib.Path(path)
    path.write_text(index_to_json(index))
    return path


def save_segment(segment: Segment, path: str | pathlib.Path) -> pathlib.Path:
    """Atomically persist a version-2 segment at ``path``.

    Write-temp → fsync → rename → fsync-dir: readers (and a post-crash
    restart) see either the previous segment or this one, complete.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    data = segment_to_json(segment).encode("utf-8")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.rename(tmp, path)
    _fsync_dir(path.parent)
    return path


def _fsync_dir(directory: pathlib.Path) -> None:
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _read_envelope(path: pathlib.Path) -> dict:
    envelope = json.loads(path.read_text())
    if not isinstance(envelope, dict) or envelope.get("format") != INDEX_FORMAT:
        raise ValueError(f"{path} is not a {INDEX_FORMAT} file")
    version = envelope.get("version")
    if version not in _SUPPORTED_VERSIONS:
        raise ValueError(
            f"{path} has unsupported {INDEX_FORMAT} version {version!r}; "
            f"this build reads versions {list(_SUPPORTED_VERSIONS)}"
        )
    return envelope


def load_index(path: str | pathlib.Path) -> InvertedIndex:
    """Load the index from a version-1 *or* version-2 file.

    Version-2 segment state (tombstones, WAL position) is dropped — use
    :func:`load_segment` when it matters.
    """
    envelope = _read_envelope(pathlib.Path(path))
    return InvertedIndex.from_dict(envelope["index"])


def load_segment(path: str | pathlib.Path) -> Segment:
    """Load a segment from either envelope version.

    A version-1 file is a segment with no tombstones, no applied WAL
    history, and generation 0 — the seed state of an ingest directory
    bootstrapped from a plain index file.
    """
    envelope = _read_envelope(pathlib.Path(path))
    index = InvertedIndex.from_dict(envelope["index"])
    if envelope["version"] == INDEX_VERSION:
        return Segment(index=index)
    state = envelope.get("segment", {})
    return Segment(
        index=index,
        tombstones=tuple(int(i) for i in envelope.get("tombstones", ())),
        applied_seq=int(state.get("applied_seq", 0)),
        generation=int(state.get("generation", 0)),
        meta=dict(state.get("meta", {})),
    )
