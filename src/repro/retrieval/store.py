"""Versioned on-disk persistence for the inverted index.

``repro index`` builds once and writes here; ``repro ask`` and the
service load warm.  The envelope is a single JSON document::

    {"format": "gced-index", "version": 1, "index": {<canonical index>}}

The payload is the index's canonical
:meth:`~repro.retrieval.index.InvertedIndex.to_dict` form, serialized
with sorted keys — so saving the same index twice
produces byte-identical files, and a save → load → save round trip is an
identity on bytes (the property the tests pin down).

Version bumps are explicit: a loader only accepts versions it knows how
to migrate, and rejects unknown formats loudly rather than guessing.
"""

from __future__ import annotations

import json
import pathlib

from repro.retrieval.index import InvertedIndex

__all__ = [
    "INDEX_FORMAT",
    "INDEX_VERSION",
    "index_to_json",
    "load_index",
    "save_index",
]

INDEX_FORMAT = "gced-index"
INDEX_VERSION = 1


def index_to_json(index: InvertedIndex) -> str:
    """The canonical serialized envelope (sorted keys, trailing newline)."""
    envelope = {
        "format": INDEX_FORMAT,
        "version": INDEX_VERSION,
        "index": index.to_dict(),
    }
    return json.dumps(envelope, sort_keys=True) + "\n"


def save_index(index: InvertedIndex, path: str | pathlib.Path) -> pathlib.Path:
    """Persist ``index`` at ``path``; returns the resolved path."""
    path = pathlib.Path(path)
    path.write_text(index_to_json(index))
    return path


def load_index(path: str | pathlib.Path) -> InvertedIndex:
    """Load a persisted index, validating the format envelope."""
    path = pathlib.Path(path)
    envelope = json.loads(path.read_text())
    if not isinstance(envelope, dict) or envelope.get("format") != INDEX_FORMAT:
        raise ValueError(f"{path} is not a {INDEX_FORMAT} file")
    version = envelope.get("version")
    if version != INDEX_VERSION:
        raise ValueError(
            f"{path} has unsupported {INDEX_FORMAT} version {version!r}; "
            f"this build reads version {INDEX_VERSION}"
        )
    return InvertedIndex.from_dict(envelope["index"])
