"""A mutable overlay over the immutable sharded inverted index.

:class:`MutableInvertedIndex` is the in-memory half of the ingestion
subsystem: it layers *delta* postings (documents added since the last
compaction) and a *tombstone* set (documents deleted since then) over an
immutable :class:`~repro.retrieval.index.InvertedIndex` base, while
presenting the exact scorer surface (``n_docs`` / ``avg_doc_len`` /
``doc_freq`` / ``postings`` / ``doc_length`` / ``doc_text``) the ranking
layer already consumes — BM25 over the overlay is *byte-identical* to
BM25 over a from-scratch index of the same live corpus, because every
statistic is integer-derived and accumulated in the same sorted-term
order.

Identity semantics: document ids are append-only and never reused.  A
deleted document keeps its id slot forever (its text becomes ``""`` and
its postings vanish), so ranked results and paged cursors that embed
``doc_id`` stay stable across deletes and compactions.  ``n_docs``,
``avg_doc_len`` and ``doc_freq`` count *live* documents only.

Reader/writer discipline: one writer at a time (the ingest manager holds
the write lock); readers are lock-free.  Mutations publish in an order
that keeps concurrent readers consistent — an add becomes *findable*
last (text → length → statistics → postings), a delete becomes
*invisible* first (tombstone → statistics) — so a reader never sees a
document in the postings without its length and text.
"""

from __future__ import annotations

import json
import threading
from collections import Counter
from typing import Iterable

from repro.retrieval.index import IndexShard, InvertedIndex, Posting
from repro.text.tokenizer import word_tokens

__all__ = ["MutableInvertedIndex"]


class MutableInvertedIndex:
    """Delta postings + tombstones over an immutable base index.

    Args:
        base: the compacted (or freshly built) immutable index.
        tombstones: ids already dead in ``base`` — a loaded ``gced-index``
            version-2 segment records them so the id space stays
            append-only across restarts; their slots hold ``""``.
    """

    def __init__(
        self, base: InvertedIndex, tombstones: Iterable[int] = ()
    ) -> None:
        self._base = base
        self._n_shards = len(base.shards)
        self._lock = threading.RLock()
        self._delta_lengths: list[dict[int, int]] = [
            {} for _ in range(self._n_shards)
        ]
        self._delta_postings: list[dict[str, list[Posting]]] = [
            {} for _ in range(self._n_shards)
        ]
        self._extra_docs: dict[int, str] = {}
        self._tombstones: set[int] = set()
        self._doc_freq: dict[str, int] = dict(base._doc_freq)
        self._total_len = base._total_len
        self._live = len(base.docs)
        self._next_doc_id = len(base.docs)
        self._shards_cache: tuple[IndexShard, ...] | None = None
        for doc_id in sorted(set(tombstones)):
            self._subtract(doc_id, base.docs[doc_id])
            self._tombstones.add(doc_id)

    # ---------------------------------------------------------- snapshot
    def __getstate__(self) -> dict:
        from repro.engine.snapshot import externalizing

        if externalizing():
            return {"_hollow": True}
        state = self.__dict__.copy()
        state.pop("_lock", None)
        state.pop("_shards_cache", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()
        self._shards_cache = None

    def __getattr__(self, name: str):
        if self.__dict__.get("_hollow") and not name.startswith("__"):
            self._rehydrate()
            return getattr(self, name)
        raise AttributeError(name)

    def _rehydrate(self) -> None:
        from repro.engine.snapshot import load_active_section

        blob = load_active_section("index")
        if blob is None:
            raise RuntimeError(
                "mutable index was externalized to a pipeline snapshot, "
                "but no snapshot is active in this process"
            )
        loaded = MutableInvertedIndex.from_snapshot_bytes(blob)
        state = loaded.__dict__.copy()
        state["_hollow"] = False
        self.__dict__.update(state)

    def to_snapshot_bytes(self) -> bytes:
        """Canonical bytes for the pipeline snapshot's ``index`` section.

        The live overlay is materialized (delta folded into shard form)
        and shipped with the tombstone ids so workers reconstruct the
        same live statistics; a delta-free index snapshots to the same
        bytes run over run.
        """
        payload = {
            "format": "gced-mutable-index",
            "index": self.compacted().to_dict(),
            "tombstones": sorted(self._tombstones),
        }
        return json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")

    @classmethod
    def from_snapshot_bytes(cls, blob: bytes) -> "MutableInvertedIndex":
        payload = json.loads(blob.decode("utf-8"))
        return cls(
            InvertedIndex.from_dict(payload["index"]),
            tombstones=payload.get("tombstones", ()),
        )

    # ------------------------------------------------------------ scorer surface
    @property
    def n_docs(self) -> int:
        """Live documents (tombstones excluded)."""
        return self._live

    @property
    def n_terms(self) -> int:
        return len(self._doc_freq)

    @property
    def avg_doc_len(self) -> float:
        return self._total_len / self._live if self._live else 0.0

    def doc_freq(self, term: str) -> int:
        return self._doc_freq.get(term, 0)

    def doc_length(self, doc_id: int) -> int:
        shard = doc_id % self._n_shards
        delta = self._delta_lengths[shard]
        if doc_id in delta:
            return delta[doc_id]
        return self._base.shards[shard].doc_lengths[doc_id]

    def postings(self, term: str) -> tuple[Posting, ...]:
        """Live ``(doc_id, tf)`` postings, ids ascending, tombstones cut."""
        tombstones = self._tombstones
        merged = [
            posting
            for posting in self._base.postings(term)
            if posting[0] not in tombstones
        ]
        for shard in self._delta_postings:
            merged.extend(
                posting
                for posting in shard.get(term, ())
                if posting[0] not in tombstones
            )
        merged.sort()
        return tuple(merged)

    def doc_text(self, doc_id: int) -> str:
        """The paragraph at ``doc_id``; ``""`` for tombstoned slots."""
        if doc_id in self._tombstones:
            return ""
        if doc_id in self._extra_docs:
            return self._extra_docs[doc_id]
        return self._base.docs[doc_id]

    @property
    def docs(self) -> tuple[str, ...]:
        """The full id space, ``""`` at tombstoned (and gap) slots."""
        return tuple(
            self.doc_text(doc_id) for doc_id in range(self._next_doc_id)
        )

    @property
    def tombstones(self) -> frozenset[int]:
        return frozenset(self._tombstones)

    @property
    def next_doc_id(self) -> int:
        return self._next_doc_id

    @property
    def n_shards(self) -> int:
        return self._n_shards

    @property
    def delta_docs(self) -> int:
        """Documents living in the delta (folded away by compaction)."""
        return len(self._extra_docs)

    @property
    def metadata(self) -> dict:
        return self._base.metadata

    @property
    def shards(self) -> tuple[IndexShard, ...]:
        """The live overlay materialized as canonical immutable shards.

        Lazily built and cached until the next mutation; this is both
        the compaction input and the degraded-retrieval view's shard
        surface, so the two share one definition of "the live corpus".
        """
        cached = self._shards_cache
        if cached is None:
            with self._lock:
                cached = self._shards_cache
                if cached is None:
                    cached = tuple(
                        self._materialize_shard(shard_id)
                        for shard_id in range(self._n_shards)
                    )
                    self._shards_cache = cached
        return cached

    def _materialize_shard(self, shard_id: int) -> IndexShard:
        tombstones = self._tombstones
        base = self._base.shards[shard_id]
        doc_lengths = {
            doc_id: length
            for doc_id, length in base.doc_lengths.items()
            if doc_id not in tombstones
        }
        doc_lengths.update(
            (doc_id, length)
            for doc_id, length in self._delta_lengths[shard_id].items()
            if doc_id not in tombstones
        )
        merged: dict[str, list[Posting]] = {}
        for term, postings in base.postings.items():
            live = [p for p in postings if p[0] not in tombstones]
            if live:
                merged[term] = live
        for term, postings in self._delta_postings[shard_id].items():
            live = [p for p in postings if p[0] not in tombstones]
            if live:
                merged.setdefault(term, []).extend(live)
        postings_out = {
            term: tuple(sorted(merged[term])) for term in sorted(merged)
        }
        return IndexShard(
            shard_id=shard_id,
            doc_lengths=dict(sorted(doc_lengths.items())),
            postings=postings_out,
        )

    # ------------------------------------------------------------ mutation
    def apply_add(self, doc_id: int, text: str) -> None:
        """Insert ``text`` at exactly ``doc_id`` (the WAL-recorded id).

        Ids are append-only: ``doc_id`` must be at or past the current
        frontier.  Skipped ids (a crash tore an earlier record out of a
        batch whose later records survived) become permanent tombstoned
        gaps — they were never acknowledged, so nothing may surface them.
        """
        with self._lock:
            if doc_id < self._next_doc_id:
                raise ValueError(
                    f"doc id {doc_id} already allocated "
                    f"(next is {self._next_doc_id}); ids are append-only"
                )
            for gap in range(self._next_doc_id, doc_id):
                self._tombstones.add(gap)
            shard_id = doc_id % self._n_shards
            counts = Counter(word_tokens(text))
            length = sum(counts.values())
            # Publication order for lock-free readers: text and length
            # first, statistics next, postings last — the doc is only
            # *findable* once everything else about it is in place.
            self._extra_docs[doc_id] = text
            self._delta_lengths[shard_id][doc_id] = length
            self._total_len += length
            self._live += 1
            postings = self._delta_postings[shard_id]
            for term in sorted(counts):
                self._doc_freq[term] = self._doc_freq.get(term, 0) + 1
            for term in sorted(counts):
                postings.setdefault(term, []).append((doc_id, counts[term]))
            self._next_doc_id = doc_id + 1
            self._shards_cache = None

    def add(self, text: str) -> int:
        """Insert at the next free id; returns the assigned ``doc_id``."""
        with self._lock:
            doc_id = self._next_doc_id
            self.apply_add(doc_id, text)
            return doc_id

    def apply_delete(self, doc_id: int) -> None:
        """Tombstone a live document.

        Raises :class:`KeyError` for ids never allocated or already
        dead — the service maps that to ``404``.
        """
        with self._lock:
            if (
                doc_id < 0
                or doc_id >= self._next_doc_id
                or doc_id in self._tombstones
            ):
                raise KeyError(f"no live document {doc_id}")
            text = self.doc_text(doc_id)
            # Hide first, then retire the statistics: a concurrent
            # reader either still sees the fully live doc or none of it.
            self._tombstones.add(doc_id)
            self._subtract(doc_id, text)
            self._extra_docs.pop(doc_id, None)
            self._shards_cache = None

    def _subtract(self, doc_id: int, text: str) -> None:
        counts = Counter(word_tokens(text))
        self._total_len -= sum(counts.values())
        self._live -= 1
        for term in counts:
            remaining = self._doc_freq.get(term, 0) - 1
            if remaining > 0:
                self._doc_freq[term] = remaining
            else:
                self._doc_freq.pop(term, None)

    def rebase(
        self, base: InvertedIndex, tombstones: Iterable[int] = ()
    ) -> None:
        """Swap in a new base in place, emptying the delta.

        Compaction calls this after the segment swap so every holder of
        this index (retriever, fleet, service) sees the folded state
        without re-wiring references.  Object identity — and the write
        lock — are preserved; the internal state is replaced wholesale
        so lock-free readers see either the old overlay or the new one.
        """
        with self._lock:
            fresh = MutableInvertedIndex(base, tombstones=tombstones)
            state = fresh.__dict__.copy()
            state["_lock"] = self._lock
            state["_hollow"] = False  # a hollow worker copy is now real
            self.__dict__.update(state)

    # ---------------------------------------------------------- compaction
    def compacted(self) -> InvertedIndex:
        """The live overlay folded into one immutable index.

        Tombstoned slots keep their position in ``docs`` (as ``""``) but
        contribute no postings and no lengths — the returned index plus
        the tombstone id list is exactly a ``gced-index`` version-2
        segment.  Note plain :class:`InvertedIndex` counts the
        placeholder slots in ``n_docs``; serving always re-wraps the
        segment in :class:`MutableInvertedIndex`, which restores
        live-only statistics.
        """
        return InvertedIndex(
            shards=self.shards,
            docs=self.docs,
            metadata=dict(self._base.metadata),
        )

    def describe(self) -> str:
        return (
            f"{self.n_docs} live docs ({len(self._tombstones)} tombstoned, "
            f"{self.delta_docs} in delta), {self.n_terms} terms, "
            f"{self._n_shards} shards, "
            f"avg doc length {self.avg_doc_len:.1f} words"
        )
