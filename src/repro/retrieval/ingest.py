"""Durable live-corpus ingestion: WAL → mutable index → compaction.

:class:`IngestManager` owns one *ingest directory* and strings the
write path together::

    ingest_dir/
        segment.json          # gced-index/2: compacted base + tombstones
        wal/shard-0000.log    # per-shard write-ahead logs (wal.py framing)
        wal/shard-0001.log
        ...

**Durability contract.**  A write is acknowledged only after its WAL
record is fsynced (group commit per batch).  SIGKILL at any byte leaves
the directory recoverable: :meth:`IngestManager.open` loads the last
atomic segment, torn-tail-truncates each WAL, and replays every durable
record with ``seq > applied_seq`` — so no acknowledged write is ever
lost, unacknowledged tails vanish cleanly, and the recovered index is
byte-identical (scores included) to replaying the same surviving op log
into a fresh index.

**Compaction.**  :meth:`compact` folds delta postings and tombstones
into a fresh immutable segment and swaps it atomically (write-temp →
fsync → rename → fsync-dir), stamps the WAL high-water mark into the
segment (``applied_seq``), then truncates the WALs.  A crash *between*
the rename and the truncate is idempotent: replay skips records already
folded into the segment.  Each compaction bumps ``generation``, and the
``on_compact`` hook lets the service refresh live pipeline snapshots.

**Fault sites** (for the chaos tests): ``wal.append`` inside the log
writer, ``ingest.apply`` between the fsync and the in-memory apply, and
``compaction.run`` at its three phases (``begin`` / ``swap`` /
``reset``).
"""

from __future__ import annotations

import pathlib
import threading
import time
from typing import Callable, Iterable, Sequence

from repro.faults import fault_point
from repro.obs.logs import get_logger
from repro.obs.trace import span as obs_span
from repro.retrieval.index import InvertedIndex
from repro.retrieval.mutable import MutableInvertedIndex
from repro.retrieval.store import (
    Segment,
    load_segment,
    save_segment,
)
from repro.retrieval.wal import WalRecord, WriteAheadLog, replay_directory

__all__ = ["IngestManager"]

_log = get_logger("ingest")

SEGMENT_FILE = "segment.json"
WAL_DIR = "wal"


class IngestManager:
    """Crash-safe add/delete/compact over one ingest directory.

    Writers are serialized on an internal lock; reads go straight to the
    shared :class:`MutableInvertedIndex` (see its module docstring for
    the reader-visibility discipline).

    Args:
        directory: the ingest directory (created if missing).
        index: the live mutable index (from :meth:`open`).
        applied_seq: WAL records at or below this are already in the
            segment.
        generation: the segment's compaction generation.
        compact_every: auto-compact after this many applied operations
            (0 disables; :meth:`compact` always works explicitly).
        on_compact: called as ``on_compact(generation)`` after each
            successful compaction — the service hooks pipeline-snapshot
            refresh here.  Errors are logged, never raised into the
            write path.
    """

    def __init__(
        self,
        directory: str | pathlib.Path,
        index: MutableInvertedIndex,
        applied_seq: int = 0,
        generation: int = 0,
        compact_every: int = 0,
        on_compact: Callable[[int], None] | None = None,
    ) -> None:
        self.directory = pathlib.Path(directory)
        self.index = index
        self.compact_every = int(compact_every)
        self.on_compact = on_compact
        self._lock = threading.RLock()
        self._wals: dict[int, WriteAheadLog] = {}
        self._applied_seq = int(applied_seq)
        self._next_seq = int(applied_seq) + 1
        self._generation = int(generation)
        self._ops_since_compact = 0
        self._docs_added = 0
        self._docs_deleted = 0
        self._acked_batches = 0
        self._compactions = 0
        self._replayed_records = 0
        self._replay_skipped = 0
        self._torn_bytes = 0
        self._last_compaction_ms = 0.0

    # ------------------------------------------------------------- opening
    @classmethod
    def open(
        cls,
        directory: str | pathlib.Path,
        base_corpus: Sequence[str] | None = None,
        seed_index: InvertedIndex | None = None,
        n_shards: int = 4,
        compact_every: int = 0,
        on_compact: Callable[[int], None] | None = None,
    ) -> "IngestManager":
        """Open (or bootstrap) an ingest directory and recover its state.

        Existing directory: load ``segment.json`` (either envelope
        version), truncate torn WAL tails, replay durable records past
        the segment's ``applied_seq``.  Fresh directory: build the base
        from ``seed_index`` or ``base_corpus`` and persist the initial
        segment atomically before accepting writes.
        """
        directory = pathlib.Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        segment_path = directory / SEGMENT_FILE
        if segment_path.exists():
            segment = load_segment(segment_path)
        else:
            if seed_index is None:
                if not base_corpus:
                    raise ValueError(
                        f"{directory} has no segment; pass a base corpus "
                        "or seed index to bootstrap it"
                    )
                seed_index = InvertedIndex.build(base_corpus, n_shards=n_shards)
            segment = Segment(index=seed_index)
            save_segment(segment, segment_path)
        index = MutableInvertedIndex(segment.index, segment.tombstones)
        manager = cls(
            directory,
            index,
            applied_seq=segment.applied_seq,
            generation=segment.generation,
            compact_every=compact_every,
            on_compact=on_compact,
        )
        manager._recover()
        return manager

    def _recover(self) -> None:
        """Torn-tail-truncate the WALs, then replay past ``applied_seq``."""
        records, torn = replay_directory(self.directory / WAL_DIR)
        self._torn_bytes = torn
        max_seq = self._applied_seq
        for record in records:
            max_seq = max(max_seq, record.seq)
            if record.seq <= self._applied_seq:
                self._replay_skipped += 1  # already folded into the segment
                continue
            self._apply(record, replay=True)
            self._replayed_records += 1
            self._applied_seq = record.seq
        self._next_seq = max_seq + 1
        if records or torn:
            _log.info(
                "ingest recovery complete",
                replayed=self._replayed_records,
                skipped=self._replay_skipped,
                torn_bytes=torn,
                applied_seq=self._applied_seq,
            )

    def _apply(self, record: WalRecord, replay: bool = False) -> None:
        if record.op == "add":
            self.index.apply_add(record.doc_id, record.text)
            self._docs_added += 1
        elif record.op == "delete":
            try:
                self.index.apply_delete(record.doc_id)
                self._docs_deleted += 1
            except KeyError:
                if not replay:
                    raise
                # Already dead (e.g. the id became a gap tombstone after
                # a torn batch, or the log was hand-trimmed).  Dead is
                # the delete's goal state, so skipping is sound.
                self._replay_skipped += 1
        else:  # pragma: no cover - wal only emits add/delete
            raise ValueError(f"unknown WAL op {record.op!r}")
        self._ops_since_compact += 1

    # ------------------------------------------------------------- writing
    def _wal_for(self, doc_id: int) -> WriteAheadLog:
        shard_id = doc_id % self.index.n_shards
        wal = self._wals.get(shard_id)
        if wal is None:
            wal = WriteAheadLog(
                self.directory / WAL_DIR / f"shard-{shard_id:04d}.log"
            )
            self._wals[shard_id] = wal
        return wal

    def add_documents(self, texts: Sequence[str]) -> list[int]:
        """Durably append ``texts``; returns their assigned doc ids.

        One group commit per call: every record is appended, the touched
        shard logs are fsynced once, and only then are the documents
        applied in memory and the ids acknowledged to the caller.
        """
        texts = list(texts)
        if not texts:
            return []
        for text in texts:
            if not isinstance(text, str) or not text.strip():
                raise ValueError("documents must be non-empty strings")
        with self._lock, obs_span("ingest.apply", docs=len(texts)):
            first_id = self.index.next_doc_id
            records = []
            touched: dict[int, WriteAheadLog] = {}
            for offset, text in enumerate(texts):
                doc_id = first_id + offset
                record = WalRecord(
                    seq=self._next_seq, op="add", doc_id=doc_id, text=text
                )
                self._next_seq += 1
                wal = self._wal_for(doc_id)
                wal.append(record)
                touched[id(wal)] = wal
                records.append(record)
            for wal in touched.values():
                wal.sync()  # the durability barrier: records now survive SIGKILL
            fault_point("ingest.apply", detail=f"add:{records[0].seq}")
            for record in records:
                self._apply(record)
                self._applied_seq = record.seq
            self._acked_batches += 1
            self._maybe_compact()
            return [record.doc_id for record in records]

    def delete_document(self, doc_id: int) -> None:
        """Durably tombstone one live document.

        Raises :class:`KeyError` (before any WAL write) when ``doc_id``
        was never allocated or is already dead.
        """
        with self._lock, obs_span("ingest.delete", doc_id=doc_id):
            if (
                doc_id < 0
                or doc_id >= self.index.next_doc_id
                or doc_id in self.index.tombstones
            ):
                raise KeyError(f"no live document {doc_id}")
            record = WalRecord(seq=self._next_seq, op="delete", doc_id=doc_id)
            self._next_seq += 1
            wal = self._wal_for(doc_id)
            wal.append(record)
            wal.sync()
            fault_point("ingest.apply", detail=f"delete:{record.seq}")
            self._apply(record)
            self._applied_seq = record.seq
            self._acked_batches += 1
            self._maybe_compact()

    # ---------------------------------------------------------- compaction
    def _maybe_compact(self) -> None:
        if self.compact_every > 0 and self._ops_since_compact >= self.compact_every:
            self.compact()

    def compact(self) -> dict:
        """Fold delta + tombstones into a new segment and swap it in.

        Crash-safety by phase (each has a ``compaction.run`` fault
        site): before the rename (``begin``/``swap``) the old segment
        plus the intact WALs fully reconstruct the state; after the
        rename (``reset``) the new segment's ``applied_seq`` makes any
        not-yet-truncated WAL records no-ops on replay.
        """
        with self._lock, obs_span("compaction.run") as compact_span:
            started = time.perf_counter()
            fault_point("compaction.run", detail="begin")
            generation = self._generation + 1
            segment = Segment(
                index=self.index.compacted(),
                tombstones=tuple(sorted(self.index.tombstones)),
                applied_seq=self._applied_seq,
                generation=generation,
            )
            fault_point("compaction.run", detail="swap")
            save_segment(segment, self.directory / SEGMENT_FILE)
            fault_point("compaction.run", detail="reset")
            for wal in self._wals.values():
                wal.reset()
            wal_dir = self.directory / WAL_DIR
            if wal_dir.is_dir():
                for path in wal_dir.glob("shard-*.log"):
                    shard_id = int(path.stem.split("-")[1])
                    if shard_id not in self._wals:
                        WriteAheadLog.replay(path)  # ensure intact, then reset
                        with WriteAheadLog(path) as stale:
                            stale.reset()
            self.index.rebase(segment.index, segment.tombstones)
            self._generation = generation
            self._ops_since_compact = 0
            self._compactions += 1
            self._last_compaction_ms = 1000.0 * (time.perf_counter() - started)
            compact_span.tag(
                generation=generation, live_docs=self.index.n_docs
            )
        if self.on_compact is not None:
            try:
                self.on_compact(generation)
            except Exception:
                _log.warning(
                    "on_compact hook failed; compaction itself succeeded",
                    exc_info=True,
                    generation=generation,
                )
        _log.info(
            "compaction complete",
            generation=generation,
            live_docs=self.index.n_docs,
            tombstones=len(self.index.tombstones),
            ms=round(self._last_compaction_ms, 2),
        )
        return {
            "generation": generation,
            "live_docs": self.index.n_docs,
            "ms": self._last_compaction_ms,
        }

    # ------------------------------------------------------------ plumbing
    @property
    def generation(self) -> int:
        return self._generation

    @property
    def applied_seq(self) -> int:
        return self._applied_seq

    def wal_bytes(self) -> int:
        wal_dir = self.directory / WAL_DIR
        if not wal_dir.is_dir():
            return 0
        return sum(p.stat().st_size for p in wal_dir.glob("shard-*.log"))

    def stats(self) -> dict:
        """Counters for ``/stats`` and the ``gced_ingest_*`` metrics."""
        with self._lock:
            return {
                "generation": self._generation,
                "applied_seq": self._applied_seq,
                "next_seq": self._next_seq,
                "live_docs": self.index.n_docs,
                "tombstones": len(self.index.tombstones),
                "delta_docs": self.index.delta_docs,
                "docs_added": self._docs_added,
                "docs_deleted": self._docs_deleted,
                "acked_batches": self._acked_batches,
                "compactions": self._compactions,
                "replayed_records": self._replayed_records,
                "replay_skipped": self._replay_skipped,
                "torn_bytes": self._torn_bytes,
                "wal_bytes": self.wal_bytes(),
                "compact_every": self.compact_every,
                "last_compaction_ms": self._last_compaction_ms,
            }

    def close(self) -> None:
        with self._lock:
            for wal in self._wals.values():
                wal.close()
            self._wals.clear()

    def __enter__(self) -> "IngestManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
