"""Sharded corpus retrieval: the open-context front door of the system.

The paper's pipeline assumes the supporting paragraph is *given*; every
real serving scenario starts one step earlier.  This package finds the
context: a sharded inverted index (:mod:`~repro.retrieval.index`) built
in parallel on the engine executors, BM25/TF-IDF ranking
(:mod:`~repro.retrieval.bm25`) sharing its term-weighting formulas
(:mod:`~repro.retrieval.weighting`) with the QA layer's TF-IDF scorer,
versioned JSON persistence (:mod:`~repro.retrieval.store`) so indexes
build once and load warm, and the :class:`CorpusRetriever` facade the
pipeline stage, service, and CLI consume.
"""

from repro.retrieval.bm25 import (
    BM25Scorer,
    RankingScorer,
    TfidfScorer,
    make_scorer,
)
from repro.retrieval.fleet import ShardFleet, ShardWorker
from repro.retrieval.index import IndexShard, InvertedIndex, build_shard
from repro.retrieval.ingest import IngestManager
from repro.retrieval.mutable import MutableInvertedIndex
from repro.retrieval.retriever import CorpusRetriever, RetrievedParagraph
from repro.retrieval.store import (
    INDEX_FORMAT,
    INDEX_VERSION,
    SEGMENT_VERSION,
    Segment,
    index_to_json,
    load_index,
    load_segment,
    save_index,
    save_segment,
    segment_to_json,
)
from repro.retrieval.wal import WalRecord, WriteAheadLog, replay_directory
from repro.retrieval.weighting import (
    bm25_idf,
    bm25_tf,
    idf_table,
    log_tf,
    smoothed_idf,
    unseen_idf,
)

__all__ = [
    "BM25Scorer",
    "CorpusRetriever",
    "INDEX_FORMAT",
    "INDEX_VERSION",
    "IndexShard",
    "IngestManager",
    "InvertedIndex",
    "MutableInvertedIndex",
    "RankingScorer",
    "RetrievedParagraph",
    "SEGMENT_VERSION",
    "Segment",
    "ShardFleet",
    "ShardWorker",
    "TfidfScorer",
    "WalRecord",
    "WriteAheadLog",
    "bm25_idf",
    "bm25_tf",
    "build_shard",
    "idf_table",
    "index_to_json",
    "load_index",
    "log_tf",
    "load_segment",
    "make_scorer",
    "replay_directory",
    "save_index",
    "save_segment",
    "segment_to_json",
    "smoothed_idf",
    "unseen_idf",
]
