"""Sharded corpus retrieval: the open-context front door of the system.

The paper's pipeline assumes the supporting paragraph is *given*; every
real serving scenario starts one step earlier.  This package finds the
context: a sharded inverted index (:mod:`~repro.retrieval.index`) built
in parallel on the engine executors, BM25/TF-IDF ranking
(:mod:`~repro.retrieval.bm25`) sharing its term-weighting formulas
(:mod:`~repro.retrieval.weighting`) with the QA layer's TF-IDF scorer,
versioned JSON persistence (:mod:`~repro.retrieval.store`) so indexes
build once and load warm, and the :class:`CorpusRetriever` facade the
pipeline stage, service, and CLI consume.
"""

from repro.retrieval.bm25 import (
    BM25Scorer,
    RankingScorer,
    TfidfScorer,
    make_scorer,
)
from repro.retrieval.index import IndexShard, InvertedIndex, build_shard
from repro.retrieval.retriever import CorpusRetriever, RetrievedParagraph
from repro.retrieval.store import (
    INDEX_FORMAT,
    INDEX_VERSION,
    index_to_json,
    load_index,
    save_index,
)
from repro.retrieval.weighting import (
    bm25_idf,
    bm25_tf,
    idf_table,
    log_tf,
    smoothed_idf,
    unseen_idf,
)

__all__ = [
    "BM25Scorer",
    "CorpusRetriever",
    "INDEX_FORMAT",
    "INDEX_VERSION",
    "IndexShard",
    "InvertedIndex",
    "RankingScorer",
    "RetrievedParagraph",
    "TfidfScorer",
    "bm25_idf",
    "bm25_tf",
    "build_shard",
    "idf_table",
    "index_to_json",
    "load_index",
    "log_tf",
    "make_scorer",
    "save_index",
    "smoothed_idf",
    "unseen_idf",
]
