"""Crash-safe write-ahead logging for live corpus ingestion.

Every corpus mutation (document add, tombstone delete) is appended to a
per-shard log *before* it touches the in-memory index, and the append is
fsynced before the write is acknowledged — the durability contract the
ingest layer states is exactly "an acknowledged write survives SIGKILL
at any byte".

Record framing is length-prefixed and checksummed::

    [4B big-endian payload length][4B big-endian crc32(payload)][payload]

where the payload is compact JSON (sorted keys).  Because the log is
append-only and records are framed, the only corruption a crash can
produce is a *torn tail*: a final record whose header or payload never
finished hitting the disk.  :meth:`WriteAheadLog.replay` detects that
(short read or checksum mismatch), truncates the file back to the last
intact record, and returns everything before the tear — so replay after
a crash is always a clean prefix of what was written, and every record
that was fsynced before the crash is in that prefix.

Fsync policy is group commit: :meth:`append` only buffers; callers batch
any number of appends and then :meth:`sync` once before acknowledging
the batch.  ``fault_point("wal.append")`` sits inside :meth:`append` so
chaos tests can SIGKILL mid-append and exercise the torn-tail path.
"""

from __future__ import annotations

import io
import json
import os
import pathlib
import struct
import zlib
from dataclasses import dataclass
from typing import Iterator

from repro.faults import fault_point

__all__ = ["WalRecord", "WriteAheadLog", "replay_directory"]

_HEADER = struct.Struct(">II")
"""(payload_length, crc32) — 8 bytes, big-endian."""


@dataclass(frozen=True)
class WalRecord:
    """One durable corpus mutation.

    Attributes:
        seq: global, monotonically increasing sequence number across all
            shard logs — replay merges per-shard logs back into total
            order by sorting on it.
        op: ``"add"`` or ``"delete"``.
        doc_id: the corpus id the operation targets.  Assigned at append
            time (not replay time) so recovery reproduces the exact id
            and shard layout of the original run.
        text: the paragraph for ``add`` records; ``""`` for deletes.
    """

    seq: int
    op: str
    doc_id: int
    text: str = ""

    def to_payload(self) -> bytes:
        return json.dumps(
            {"seq": self.seq, "op": self.op, "doc_id": self.doc_id, "text": self.text},
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")

    @classmethod
    def from_payload(cls, payload: bytes) -> "WalRecord":
        raw = json.loads(payload.decode("utf-8"))
        return cls(
            seq=int(raw["seq"]),
            op=str(raw["op"]),
            doc_id=int(raw["doc_id"]),
            text=str(raw.get("text", "")),
        )


class WriteAheadLog:
    """An append-only, checksummed log file for one shard.

    Not thread-safe on its own — the ingest manager serializes writers.
    """

    def __init__(self, path: str | pathlib.Path) -> None:
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # "a+b" creates the file when missing and always appends, even if
        # a replay truncated it after we last wrote.
        self._file = open(self.path, "a+b")
        self._pending = 0

    # ------------------------------------------------------------- writing
    def append(self, record: WalRecord) -> int:
        """Buffer one framed record; returns its byte offset.

        Durable only after :meth:`sync` — callers must not acknowledge
        the write before then.
        """
        fault_point("wal.append", detail=f"{self.path.name}:{record.seq}")
        payload = record.to_payload()
        frame = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        self._file.seek(0, io.SEEK_END)
        offset = self._file.tell()
        self._file.write(frame)
        self._pending += 1
        return offset

    def sync(self) -> None:
        """Flush buffered appends and fsync — the group-commit barrier."""
        if self._pending:
            self._file.flush()
            os.fsync(self._file.fileno())
            self._pending = 0

    def reset(self) -> None:
        """Truncate to empty (after compaction folds the log away)."""
        self._file.seek(0)
        self._file.truncate()
        self._file.flush()
        os.fsync(self._file.fileno())
        self._pending = 0

    def close(self) -> None:
        if not self._file.closed:
            self.sync()
            self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def nbytes(self) -> int:
        self._file.seek(0, io.SEEK_END)
        return self._file.tell()

    # ------------------------------------------------------------- replay
    @classmethod
    def replay(
        cls, path: str | pathlib.Path, truncate: bool = True
    ) -> tuple[list[WalRecord], int]:
        """Read every intact record; returns ``(records, torn_bytes)``.

        A short header, short payload, or checksum mismatch marks the
        torn tail: everything from that offset on is discarded and — when
        ``truncate`` — physically removed, so the next append continues
        from the last intact record.  ``torn_bytes`` is how much was cut.
        """
        path = pathlib.Path(path)
        if not path.exists():
            return [], 0
        records: list[WalRecord] = []
        good_end = 0
        with open(path, "rb") as handle:
            data = handle.read()
        for offset, payload in _iter_frames(data):
            records.append(WalRecord.from_payload(payload))
            good_end = offset
        torn = len(data) - good_end
        if torn and truncate:
            with open(path, "r+b") as handle:
                handle.truncate(good_end)
                handle.flush()
                os.fsync(handle.fileno())
        return records, torn


def _iter_frames(data: bytes) -> Iterator[tuple[int, bytes]]:
    """Yield ``(end_offset, payload)`` for each intact frame, stopping at
    the first tear (short frame or checksum mismatch)."""
    pos = 0
    while pos + _HEADER.size <= len(data):
        length, crc = _HEADER.unpack_from(data, pos)
        start = pos + _HEADER.size
        end = start + length
        if end > len(data):
            return  # torn payload
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            return  # torn or corrupt frame — treat as end of log
        yield end, payload
        pos = end


def replay_directory(
    directory: str | pathlib.Path, truncate: bool = True
) -> tuple[list[WalRecord], int]:
    """Replay every ``shard-*.log`` under ``directory`` in seq order.

    Per-shard logs are independently torn-tail-truncated, then merged by
    ``seq`` into the total order the writes were acknowledged in.  A
    crash mid-batch can leave a *gap* in the merged sequence (a later
    record fsynced, an earlier one torn) — gapped records were never
    acknowledged, so replay simply applies what survived, in order.
    """
    directory = pathlib.Path(directory)
    merged: list[WalRecord] = []
    torn_total = 0
    if directory.is_dir():
        for path in sorted(directory.glob("shard-*.log")):
            records, torn = WriteAheadLog.replay(path, truncate=truncate)
            merged.extend(records)
            torn_total += torn
    merged.sort(key=lambda record: record.seq)
    return merged, torn_total
