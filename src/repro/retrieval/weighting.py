"""Term-weighting utilities shared across the retrieval and QA layers.

Every corpus-statistics consumer in the repo — the sharded BM25/TF-IDF
retrievers in this package and the span-scoring :class:`repro.qa.tfidf.TfidfQA`
— weighs terms by some flavour of inverse document frequency.  Keeping the
formulas here, as pure functions of ``(n_docs, doc_freq)``, guarantees the
layers agree on what "rare" means and keeps each scorer's module about
*scoring*, not statistics.

All functions are deterministic and depend only on their arguments, so
weights computed in a process-pool shard builder are bit-identical to the
ones computed inline.
"""

from __future__ import annotations

import math
from typing import Mapping

__all__ = [
    "bm25_idf",
    "bm25_tf",
    "idf_table",
    "log_tf",
    "smoothed_idf",
    "unseen_idf",
]


def smoothed_idf(n_docs: int, doc_freq: int) -> float:
    """Add-one-smoothed IDF: ``log((1 + N) / (1 + df)) + 1``.

    The classic sklearn-style smoothing: never zero, never infinite, and
    defined even for ``df == 0``.  This is the weight
    :class:`repro.qa.tfidf.TfidfQA` applies to matched question terms and
    the TF-IDF retriever applies to query terms.
    """
    return math.log((1 + n_docs) / (1 + doc_freq)) + 1.0


def unseen_idf(n_docs: int) -> float:
    """IDF assigned to a term the corpus never produced (``df == 0``).

    Unseen terms are maximally discriminative: ``log(1 + N) + 1``, the
    supremum of :func:`smoothed_idf` over admissible document frequencies.
    """
    return math.log(1 + n_docs) + 1.0


def idf_table(doc_freq: Mapping[str, int], n_docs: int) -> dict[str, float]:
    """Smoothed IDF for every term in a document-frequency table."""
    return {
        term: smoothed_idf(n_docs, freq) for term, freq in doc_freq.items()
    }


def bm25_idf(n_docs: int, doc_freq: int) -> float:
    """BM25's probabilistic IDF with the +1 floor (Robertson/Lucene form).

    ``log(1 + (N - df + 0.5) / (df + 0.5))`` — the ``1 +`` inside the log
    keeps the weight positive even for terms appearing in more than half
    the corpus, so a common query term can never *subtract* relevance.
    """
    return math.log(1.0 + (n_docs - doc_freq + 0.5) / (doc_freq + 0.5))


def bm25_tf(
    tf: int,
    doc_len: int,
    avg_doc_len: float,
    k1: float = 1.5,
    b: float = 0.75,
) -> float:
    """BM25's saturated, length-normalized term-frequency component.

    ``tf·(k1 + 1) / (tf + k1·(1 - b + b·dl/avgdl))``: repeated mentions
    saturate (k1) and long documents are penalized toward the corpus
    average length (b).
    """
    if tf <= 0:
        return 0.0
    norm = 1.0 - b + b * (doc_len / avg_doc_len if avg_doc_len > 0 else 1.0)
    return tf * (k1 + 1.0) / (tf + k1 * norm)


def log_tf(tf: int) -> float:
    """Sublinear term-frequency damping ``1 + log(tf)`` (0 for absent)."""
    return 1.0 + math.log(tf) if tf > 0 else 0.0
