"""Supervised shard fleet: scatter-gather retrieval over shard workers.

The single-process retriever scores every shard inline; the fleet mode
splits that work across one long-lived worker per shard — the serving
topology the coordinator/worker layout of a real deployment would use —
and adds the supervision the inline path cannot: per-shard heartbeats
and health states, automatic restart of dead workers, one retry of a
failed shard per search, and per-shard circuit breakers
(:class:`~repro.faults.CircuitBreaker`) so a persistently failing shard
is dropped from the scatter set instead of failing every request.

**Determinism.**  Each worker scores its shard through a
:class:`_ShardView` that exposes shard-local postings but *fleet-global*
statistics (``n_docs`` / ``avg_doc_len`` / ``doc_freq``).  A document
lives in exactly one shard, so its score is accumulated from the same
term weights in the same sorted-term order as a whole-index
``score_all`` — the merged scatter-gather ranking, ordered by
``(-score, doc_id)``, is byte-identical to the inline ranking.  When a
shard is dropped (breaker open, retry exhausted), the result is the
deterministic ranking over the surviving shards' documents — degraded
recall, never an error.

The ``shard.search`` fault site sits in the worker scoring path so
chaos tests can fail a specific shard deterministically.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Callable

from repro.faults import CircuitBreaker, fault_point
from repro.obs.logs import get_logger
from repro.obs.trace import span as obs_span
from repro.retrieval.bm25 import BM25Scorer, RankingScorer
from repro.retrieval.index import Posting

__all__ = ["ShardFleet", "ShardWorker"]

_log = get_logger("fleet")

HEALTHY = "healthy"
SUSPECT = "suspect"
DOWN = "down"


class _ShardView:
    """One shard's postings behind fleet-global corpus statistics."""

    def __init__(self, index, shard_id: int) -> None:
        self._index = index
        self._shard_id = shard_id
        self._n_shards = (
            index.n_shards
            if hasattr(index, "n_shards")
            else len(index.shards)
        )

    @property
    def n_docs(self) -> int:
        return self._index.n_docs

    @property
    def avg_doc_len(self) -> float:
        return self._index.avg_doc_len

    def doc_freq(self, term: str) -> int:
        return self._index.doc_freq(term)

    def doc_length(self, doc_id: int) -> int:
        return self._index.doc_length(doc_id)

    def postings(self, term: str) -> tuple[Posting, ...]:
        return tuple(
            posting
            for posting in self._index.postings(term)
            if posting[0] % self._n_shards == self._shard_id
        )


class _SearchJob:
    """One scatter unit: a query handed to a worker, awaited by the
    coordinator."""

    __slots__ = ("query", "event", "scores", "error")

    def __init__(self, query: str) -> None:
        self.query = query
        self.event = threading.Event()
        self.scores: dict[int, float] | None = None
        self.error: BaseException | None = None

    def wait(self, timeout: float) -> bool:
        return self.event.wait(timeout)


_STOP = object()


class ShardWorker:
    """A restartable scoring thread bound to one shard.

    The thread drains a job queue and stamps a heartbeat every loop
    iteration (busy or idle), so the supervisor can tell a stalled
    worker (``suspect``: stale heartbeat) from a dead one (``down``:
    thread exited).  :meth:`restart` replaces the thread; queued jobs
    survive the swap because the queue outlives the thread.
    """

    def __init__(
        self,
        shard_id: int,
        view: _ShardView,
        scorer: RankingScorer,
        clock: Callable[[], float] = time.monotonic,
        heartbeat_timeout_s: float = 2.0,
        idle_tick_s: float = 0.05,
    ) -> None:
        self.shard_id = shard_id
        self.view = view
        self.scorer = scorer
        self.clock = clock
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.idle_tick_s = idle_tick_s
        self.restarts = 0
        self.jobs_done = 0
        self.jobs_failed = 0
        self._queue: queue.Queue = queue.Queue()
        self._thread: threading.Thread | None = None
        self._closed = False
        self._last_beat = clock()
        self.start()

    # ----------------------------------------------------------- lifecycle
    def start(self) -> None:
        self._last_beat = self.clock()
        self._thread = threading.Thread(
            target=self._run,
            name=f"shard-worker-{self.shard_id}",
            daemon=True,
        )
        self._thread.start()

    def restart(self) -> None:
        """Replace the worker thread (after a crash or stall)."""
        self.restarts += 1
        self.start()

    def close(self) -> None:
        self._closed = True
        self._queue.put(_STOP)
        if self._thread is not None:
            self._thread.join(timeout=1.0)

    def _run(self) -> None:
        while True:
            self._last_beat = self.clock()
            try:
                job = self._queue.get(timeout=self.idle_tick_s)
            except queue.Empty:
                continue
            if job is _STOP:
                return
            try:
                fault_point(
                    "shard.search", detail=f"{self.shard_id}:{job.query}"
                )
                job.scores = self.scorer.score_all(self.view, job.query)
                self.jobs_done += 1
            except BaseException as exc:  # surfaced to the coordinator
                job.error = exc
                self.jobs_failed += 1
            finally:
                job.event.set()

    # ---------------------------------------------------------- health
    def submit(self, query: str) -> _SearchJob:
        job = _SearchJob(query)
        self._queue.put(job)
        return job

    @property
    def alive(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def health(self) -> str:
        if self._closed or not self.alive:
            return DOWN
        if self.clock() - self._last_beat > self.heartbeat_timeout_s:
            return SUSPECT
        return HEALTHY


class ShardFleet:
    """Scatter-gather coordinator over one :class:`ShardWorker` per shard.

    Args:
        index: the shared index (mutable or immutable) — workers read it
            in place, so live ingest is visible to the fleet immediately.
        scorer: ranking scorer (shared; scorers are stateless).
        search_timeout_s: per-shard gather deadline before the retry.
        heartbeat_timeout_s: heartbeat staleness that marks ``suspect``.
        clock: injectable monotonic clock (tests freeze it).
        breaker_failures / breaker_reset_s: per-shard breaker tuning.
    """

    def __init__(
        self,
        index,
        scorer: RankingScorer | None = None,
        search_timeout_s: float = 5.0,
        heartbeat_timeout_s: float = 2.0,
        clock: Callable[[], float] = time.monotonic,
        breaker_failures: int = 3,
        breaker_reset_s: float = 30.0,
    ) -> None:
        self.index = index
        self.scorer = scorer or BM25Scorer()
        self.search_timeout_s = search_timeout_s
        self._lock = threading.Lock()
        self._searches = 0
        self._degraded_searches = 0
        self._retries = 0
        n_shards = (
            index.n_shards
            if hasattr(index, "n_shards")
            else len(index.shards)
        )
        self.workers = [
            ShardWorker(
                shard_id,
                _ShardView(index, shard_id),
                self.scorer,
                clock=clock,
                heartbeat_timeout_s=heartbeat_timeout_s,
            )
            for shard_id in range(n_shards)
        ]
        self.breakers = [
            CircuitBreaker(
                name=f"shard-{shard_id}",
                failure_threshold=breaker_failures,
                reset_after_s=breaker_reset_s,
            )
            for shard_id in range(n_shards)
        ]

    # ------------------------------------------------------------ serving
    def supervise(self) -> None:
        """Restart dead workers (called before every scatter)."""
        for worker in self.workers:
            if not worker.alive and not worker._closed:
                _log.warning(
                    "shard worker dead; restarting", shard=worker.shard_id
                )
                worker.restart()

    def search(self, query: str, k: int) -> list[tuple[int, float]]:
        """Top-k ``(doc_id, score)`` via scatter-gather, best first.

        A failed or timed-out shard is retried once on a restarted
        worker; a shard that fails the retry (or whose breaker is open)
        is dropped from the merge — its breaker records the failure, so
        repeated trouble opens the circuit and later searches skip the
        scatter entirely until the reset window.
        """
        with obs_span("fleet.search", k=k) as search_span:
            self.supervise()
            jobs: list[tuple[int, _SearchJob]] = []
            skipped = 0
            for worker, breaker in zip(self.workers, self.breakers):
                if not breaker.allow():
                    skipped += 1
                    continue
                jobs.append((worker.shard_id, worker.submit(query)))
            merged: dict[int, float] = {}
            failed = 0
            for shard_id, job in jobs:
                scores = self._gather(shard_id, job, query)
                if scores is None:
                    failed += 1
                    continue
                merged.update(scores)
            degraded = bool(skipped or failed)
            with self._lock:
                self._searches += 1
                if degraded:
                    self._degraded_searches += 1
            search_span.tag(
                shards=len(jobs), skipped=skipped, failed=failed
            )
        ranked = sorted(merged.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:k]

    def _gather(
        self, shard_id: int, job: _SearchJob, query: str
    ) -> dict[int, float] | None:
        """Await one shard, retrying once on a restarted worker."""
        worker = self.workers[shard_id]
        breaker = self.breakers[shard_id]
        if job.wait(self.search_timeout_s) and job.error is None:
            breaker.record_success()
            return job.scores
        with self._lock:
            self._retries += 1
        _log.warning(
            "shard search failed; retrying once",
            shard=shard_id,
            error=repr(job.error) if job.error else "timeout",
        )
        if not worker.alive:
            worker.restart()
        retry = worker.submit(query)
        if retry.wait(self.search_timeout_s) and retry.error is None:
            breaker.record_success()
            return retry.scores
        breaker.record_failure()
        _log.warning(
            "shard retry failed; degrading to surviving shards",
            shard=shard_id,
            breaker=breaker.state,
        )
        return None

    # ------------------------------------------------------------- health
    @property
    def degraded(self) -> bool:
        return any(breaker.degraded for breaker in self.breakers)

    def health(self) -> dict:
        """Per-shard health/restart/breaker view for ``/stats``."""
        return {
            "n_shards": len(self.workers),
            "workers": [
                {
                    "shard_id": worker.shard_id,
                    "state": worker.health(),
                    "restarts": worker.restarts,
                    "jobs_done": worker.jobs_done,
                    "jobs_failed": worker.jobs_failed,
                    "breaker": breaker.state,
                }
                for worker, breaker in zip(self.workers, self.breakers)
            ],
        }

    def stats(self) -> dict:
        with self._lock:
            counters = {
                "searches": self._searches,
                "degraded_searches": self._degraded_searches,
                "retries": self._retries,
            }
        return {**counters, **self.health()}

    def close(self) -> None:
        for worker in self.workers:
            worker.close()

    def __enter__(self) -> "ShardFleet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
