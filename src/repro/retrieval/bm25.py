"""Ranking scorers over the sharded inverted index.

Two scorers share the :mod:`repro.retrieval.weighting` utilities (the same
IDF family :class:`repro.qa.tfidf.TfidfQA` weighs spans with):

* :class:`BM25Scorer` — Okapi BM25 with the Lucene-style positive-IDF
  floor; the default retriever.
* :class:`TfidfScorer` — sublinear TF × smoothed IDF; a simpler reference
  point and an ablation partner for BM25.

Determinism is part of the scoring contract: query terms are accumulated
in sorted order (float addition is not associative, so iteration order
must be pinned), and :meth:`RankingScorer.top_k` breaks score ties by
ascending ``doc_id``.  Two runs — or two processes — always return the
same ranking for the same index and query.
"""

from __future__ import annotations

from collections import Counter

from repro.retrieval.index import InvertedIndex, query_terms
from repro.retrieval.weighting import bm25_idf, bm25_tf, log_tf, smoothed_idf

__all__ = ["BM25Scorer", "RankingScorer", "TfidfScorer", "make_scorer"]


class RankingScorer:
    """Common query-scoring skeleton: score all matches, take top-k."""

    name = "abstract"

    def term_weight(
        self, index: InvertedIndex, term: str, tf: int, doc_len: int
    ) -> float:
        raise NotImplementedError

    def score_all(self, index: InvertedIndex, query: str) -> dict[int, float]:
        """Accumulated score per matching document (absent = no overlap)."""
        counts = Counter(query_terms(query))
        scores: dict[int, float] = {}
        for term in sorted(counts):
            qtf = counts[term]
            for doc_id, tf in index.postings(term):
                weight = self.term_weight(
                    index, term, tf, index.doc_length(doc_id)
                )
                scores[doc_id] = scores.get(doc_id, 0.0) + qtf * weight
        return scores

    def top_k(
        self, index: InvertedIndex, query: str, k: int
    ) -> list[tuple[int, float]]:
        """The ``k`` best ``(doc_id, score)`` pairs, deterministically.

        Ordered by score descending; exact ties resolve to the lower
        ``doc_id`` so rankings are reproducible across runs, backends,
        and persisted-index reloads.
        """
        if k < 1:
            raise ValueError("k must be at least 1")
        scores = self.score_all(index, query)
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:k]


class BM25Scorer(RankingScorer):
    """Okapi BM25 (k1 saturation, b length normalization)."""

    name = "bm25"

    def __init__(self, k1: float = 1.5, b: float = 0.75) -> None:
        if k1 < 0:
            raise ValueError("k1 must be non-negative")
        if not 0.0 <= b <= 1.0:
            raise ValueError("b must be in [0, 1]")
        self.k1 = k1
        self.b = b

    def term_weight(
        self, index: InvertedIndex, term: str, tf: int, doc_len: int
    ) -> float:
        return bm25_idf(index.n_docs, index.doc_freq(term)) * bm25_tf(
            tf, doc_len, index.avg_doc_len, k1=self.k1, b=self.b
        )


class TfidfScorer(RankingScorer):
    """Sublinear TF × add-one-smoothed IDF (no length normalization)."""

    name = "tfidf"

    def term_weight(
        self, index: InvertedIndex, term: str, tf: int, doc_len: int
    ) -> float:
        return smoothed_idf(index.n_docs, index.doc_freq(term)) * log_tf(tf)


_SCORERS = {"bm25": BM25Scorer, "tfidf": TfidfScorer}


def make_scorer(name: str, **kwargs) -> RankingScorer:
    """Instantiate a scorer by registry name (``bm25`` or ``tfidf``)."""
    try:
        factory = _SCORERS[name]
    except KeyError:
        raise KeyError(
            f"unknown scorer {name!r}; known: {sorted(_SCORERS)}"
        ) from None
    return factory(**kwargs)
