"""Deterministic fault injection and graceful-degradation primitives.

* :mod:`repro.faults.plan` — seeded :class:`FaultPlan` rules fired at
  named :func:`fault_point` sites (raise / delay / ``SIGKILL``), with a
  one-attribute-read disabled path and ``REPRO_FAULTS`` env propagation
  into process-pool workers.
* :mod:`repro.faults.breaker` — the :class:`CircuitBreaker` the batch
  distiller (process pool → serial) and retriever (full → reduced-shard
  search) degrade through.

See the failure-modes runbook in ``docs/operations.md``.
"""

from repro.faults.breaker import CircuitBreaker
from repro.faults.plan import (
    ENV_VAR,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    fault_point,
    injected,
    install,
    install_from_env,
    installed,
    uninstall,
)

__all__ = [
    "ENV_VAR",
    "CircuitBreaker",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "fault_point",
    "injected",
    "install",
    "install_from_env",
    "installed",
    "uninstall",
]
