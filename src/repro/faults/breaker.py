"""A small thread-safe circuit breaker for graceful degradation.

Classic three-state machine:

* **closed** — traffic flows; ``failure_threshold`` *consecutive*
  failures trip the breaker open.
* **open** — :meth:`allow` answers ``False`` so callers take their
  degraded path (serial executor, reduced-shard search) instead of
  hammering a broken dependency; after ``reset_after_s`` the breaker
  moves to half-open.
* **half-open** — exactly one trial call is admitted; success closes
  the breaker, failure re-opens it and restarts the cooldown.

The clock is injectable so tests drive state transitions without
sleeping, and :meth:`stats` serializes for ``/stats`` + ``/metrics``.
"""

from __future__ import annotations

import threading
import time

__all__ = ["CircuitBreaker"]

_STATE_CODES = {"closed": 0, "half_open": 1, "open": 2}


class CircuitBreaker:
    def __init__(
        self,
        name: str = "breaker",
        failure_threshold: int = 3,
        reset_after_s: float = 30.0,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.name = name
        self.failure_threshold = int(failure_threshold)
        self.reset_after_s = float(reset_after_s)
        self.clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._trial_inflight = False
        self.failures = 0
        self.successes = 0
        self.trips = 0
        self.rejected = 0

    # ------------------------------------------------------------- gate
    def allow(self) -> bool:
        """May the protected call proceed right now?

        While open, answers ``False`` until the cooldown elapses; then
        admits exactly one half-open trial at a time.
        """
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                if self.clock() - self._opened_at < self.reset_after_s:
                    self.rejected += 1
                    return False
                self._state = "half_open"
                self._trial_inflight = False
            # half-open: admit a single trial until its outcome lands.
            if self._trial_inflight:
                self.rejected += 1
                return False
            self._trial_inflight = True
            return True

    # ---------------------------------------------------------- outcomes
    def record_success(self) -> None:
        with self._lock:
            self.successes += 1
            self._consecutive_failures = 0
            self._trial_inflight = False
            self._state = "closed"

    def record_failure(self) -> None:
        with self._lock:
            self.failures += 1
            self._consecutive_failures += 1
            if self._state == "half_open":
                self._trip_locked()
            elif (
                self._state == "closed"
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._trip_locked()

    def _trip_locked(self) -> None:
        self._state = "open"
        self._opened_at = self.clock()
        self._trial_inflight = False
        self.trips += 1

    # ----------------------------------------------------------- pickling
    def __getstate__(self) -> dict:
        # Locks can't cross process boundaries, and an injected clock may
        # be a closure; the worker-side copy gets fresh ones.
        state = self.__dict__.copy()
        del state["_lock"]
        state["clock"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()
        if self.clock is None:
            self.clock = time.monotonic

    # ------------------------------------------------------------- state
    @property
    def state(self) -> str:
        with self._lock:
            if (
                self._state == "open"
                and self.clock() - self._opened_at >= self.reset_after_s
            ):
                return "half_open"
            return self._state

    @property
    def degraded(self) -> bool:
        """True whenever the breaker is not fully closed."""
        return self.state != "closed"

    def stats(self) -> dict:
        state = self.state
        with self._lock:
            return {
                "name": self.name,
                "state": state,
                "state_code": _STATE_CODES[state],
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "reset_after_s": self.reset_after_s,
                "failures": self.failures,
                "successes": self.successes,
                "trips": self.trips,
                "rejected": self.rejected,
            }
