"""Deterministic fault injection at named sites.

The serving stack registers *fault points* — named call sites such as
``worker.distill`` or ``scheduler.flush`` — by calling
:func:`fault_point` on their hot path.  With no plan installed the call
costs one module-attribute read and a ``None`` check, mirroring the
disabled path of :mod:`repro.obs.trace`; chaos tests and the ``chaos``
CI leg install a :class:`FaultPlan` that makes chosen sites raise,
sleep, or kill the whole worker process (a genuine ``SIGKILL``, the
same failure a ``kill -9`` produces).

Everything is deterministic: firing is decided by per-site pass
counters (every-Nth with a seeded phase offset), never by ``random``,
so a fixed call sequence always faults the same calls and recovery can
be asserted byte-identical.  Cross-process one-shots — "kill exactly
one worker, ever, no matter how many times the pool respawns" — use a
*token file*: the spec only fires if it atomically consumes the token,
so fresh worker processes (whose in-memory counters start over) cannot
re-fire a consumed fault.

Plans serialize to a compact one-line DSL carried by the
``REPRO_FAULTS`` environment variable, which process-pool workers
re-read in their initializer::

    REPRO_FAULTS="worker.distill:die:times=1,token=/tmp/t;http.request:delay:delay_ms=5"
"""

from __future__ import annotations

import contextlib
import os
import signal
import threading
import time
import zlib
from dataclasses import dataclass, field

__all__ = [
    "ENV_VAR",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "fault_point",
    "install",
    "install_from_env",
    "installed",
    "injected",
    "uninstall",
]

ENV_VAR = "REPRO_FAULTS"

_ACTIONS = ("raise", "delay", "die")


class FaultInjected(RuntimeError):
    """Raised by a fired ``raise`` fault; never raised by real code."""


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule: *what* happens at *which* site, *when*.

    ``every``/``skip``/``times`` select passes deterministically:
    skip the first ``skip`` matching passes, then fire every
    ``every``-th pass, at most ``times`` times (0 = unlimited).
    ``match`` restricts the spec to passes whose ``detail`` string
    contains the substring.  ``token`` names a file that must be
    atomically consumed (unlinked) for the fault to fire — the
    cross-process one-shot primitive.
    """

    site: str
    action: str = "raise"
    every: int = 1
    skip: int = 0
    times: int = 0
    delay_ms: float = 0.0
    message: str = ""
    match: str = ""
    token: str = ""

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}")
        if self.every < 1:
            raise ValueError("every must be >= 1")
        if self.skip < 0 or self.times < 0:
            raise ValueError("skip and times must be >= 0")

    def to_text(self) -> str:
        parts = [self.site, self.action]
        opts = []
        if self.every != 1:
            opts.append(f"every={self.every}")
        if self.skip:
            opts.append(f"skip={self.skip}")
        if self.times:
            opts.append(f"times={self.times}")
        if self.delay_ms:
            opts.append(f"delay_ms={self.delay_ms:g}")
        if self.message:
            opts.append(f"message={self.message}")
        if self.match:
            opts.append(f"match={self.match}")
        if self.token:
            opts.append(f"token={self.token}")
        if opts:
            parts.append(",".join(opts))
        return ":".join(parts)

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        head, sep, tail = text.strip().partition(":")
        if not sep:
            raise ValueError(f"fault spec needs 'site:action': {text!r}")
        action, _, opt_text = tail.partition(":")
        kwargs: dict = {"site": head.strip(), "action": action.strip()}
        if opt_text:
            for pair in opt_text.split(","):
                key, sep, value = pair.partition("=")
                if not sep:
                    raise ValueError(f"fault option needs key=value: {pair!r}")
                key = key.strip()
                if key in ("every", "skip", "times"):
                    kwargs[key] = int(value)
                elif key == "delay_ms":
                    kwargs[key] = float(value)
                elif key in ("message", "match", "token"):
                    kwargs[key] = value
                else:
                    raise ValueError(f"unknown fault option {key!r}")
        return cls(**kwargs)


@dataclass
class _SpecState:
    passes: int = 0
    fired: int = 0


class FaultPlan:
    """An installable set of :class:`FaultSpec` rules with seeded phase.

    ``seed`` deterministically offsets each spec's firing phase (a
    different seed faults a different-but-reproducible subset of
    passes), so chaos runs can be varied without ever touching
    ``random``.
    """

    def __init__(self, specs, seed: int = 0) -> None:
        self.specs = tuple(specs)
        self.seed = int(seed)
        self._states = [_SpecState() for _ in self.specs]
        self._lock = threading.Lock()

    # ------------------------------------------------------------ firing
    def _phase(self, spec: FaultSpec) -> int:
        if self.seed == 0 or spec.every == 1:
            return 0
        mix = (self.seed * 2654435761 + zlib.crc32(spec.site.encode())) & 0xFFFFFFFF
        return mix % spec.every

    def perform(self, site: str, detail: str | None = None) -> None:
        """Run every matching spec for one pass of ``site``.

        Called via :func:`fault_point`; real code never calls this when
        no plan is installed.
        """
        for spec, state in zip(self.specs, self._states):
            if spec.site != site:
                continue
            if spec.match and (detail is None or spec.match not in detail):
                continue
            with self._lock:
                state.passes += 1
                due = (
                    state.passes > spec.skip
                    and (state.passes - spec.skip - 1 + self._phase(spec))
                    % spec.every
                    == 0
                    and (spec.times == 0 or state.fired < spec.times)
                )
                if due and spec.token:
                    due = _consume_token(spec.token)
                if due:
                    state.fired += 1
            if due:
                self._fire(spec, site, detail)

    def _fire(self, spec: FaultSpec, site: str, detail: str | None) -> None:
        if spec.action == "delay":
            time.sleep(spec.delay_ms / 1000.0)
            return
        if spec.action == "die":
            # A real kill -9: no atexit hooks, no finally blocks — the
            # same signal an OOM-killer or operator would deliver.
            os.kill(os.getpid(), signal.SIGKILL)
            time.sleep(60.0)  # pragma: no cover - never survives the signal
            return
        message = spec.message or f"injected fault at {site}"
        if detail:
            message = f"{message} (detail={detail!r})"
        raise FaultInjected(message)

    # ------------------------------------------------------------- state
    def stats(self) -> dict:
        """Pass/fire counts per spec, for ``/stats`` and assertions."""
        with self._lock:
            return {
                "seed": self.seed,
                "specs": [
                    {
                        "spec": spec.to_text(),
                        "site": spec.site,
                        "action": spec.action,
                        "passes": state.passes,
                        "fired": state.fired,
                    }
                    for spec, state in zip(self.specs, self._states)
                ],
            }

    def fired(self, site: str | None = None) -> int:
        """Total fires, optionally restricted to one site."""
        with self._lock:
            return sum(
                state.fired
                for spec, state in zip(self.specs, self._states)
                if site is None or spec.site == site
            )

    # ---------------------------------------------------------- plumbing
    def to_env(self) -> str:
        """The one-line DSL form carried by ``REPRO_FAULTS``."""
        text = ";".join(spec.to_text() for spec in self.specs)
        if self.seed:
            text = f"seed={self.seed};{text}"
        return text

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        seed = 0
        specs = []
        for chunk in text.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            if chunk.startswith("seed="):
                seed = int(chunk[5:])
                continue
            specs.append(FaultSpec.parse(chunk))
        return cls(specs, seed=seed)


def _consume_token(path: str) -> bool:
    """Atomically claim a token file; at most one process ever wins."""
    try:
        os.unlink(path)
        return True
    except FileNotFoundError:
        return False


# The installed plan. ``None`` is the fast path: fault_point() then does
# exactly one module-global read plus a None check (same budget as the
# disabled path of obs.trace, and measured the same way).
_PLAN: FaultPlan | None = None


def fault_point(site: str, detail: str | None = None) -> None:
    """Run the installed plan at ``site``; free when no plan is installed."""
    plan = _PLAN
    if plan is None:
        return
    plan.perform(site, detail)


def install(plan: FaultPlan) -> FaultPlan:
    """Install ``plan`` process-wide (replacing any previous plan)."""
    global _PLAN
    _PLAN = plan
    return plan


def uninstall() -> None:
    global _PLAN
    _PLAN = None


def installed() -> FaultPlan | None:
    return _PLAN


def install_from_env(environ=None) -> FaultPlan | None:
    """Install the ``REPRO_FAULTS`` plan, if the variable is set.

    Called by process-pool worker initializers so a plan installed in
    the coordinator's environment reaches every respawned worker; the
    value ``"1"``/``"on"`` (the chaos CI leg's switch) is accepted as an
    empty plan, which keeps the machinery on without injecting anything.
    """
    text = (environ if environ is not None else os.environ).get(ENV_VAR, "")
    text = text.strip()
    if not text:
        return None
    if text.lower() in ("1", "on", "true"):
        return install(FaultPlan(()))
    return install(FaultPlan.parse(text))


@contextlib.contextmanager
def injected(plan: FaultPlan):
    """Scoped install for tests: restores the previous plan on exit."""
    global _PLAN
    previous = _PLAN
    _PLAN = plan
    try:
        yield plan
    finally:
        _PLAN = previous
