"""Visualization of distillation results: ASCII trees and HTML highlights.

Renders the weighted syntactic parsing tree with kept / clipped / protected
nodes marked (the paper's Fig. 6 as text), and an HTML view of the context
with the evidence highlighted — what an explainable-QA frontend would show.
"""

from __future__ import annotations

import html

from repro.core.pipeline import DistillationResult
from repro.parsing.tree import DependencyTree

__all__ = ["render_tree", "render_distillation", "evidence_html"]


def render_tree(
    tree: DependencyTree,
    kept: set[int] | frozenset[int] | None = None,
    protected: set[int] | frozenset[int] | None = None,
) -> str:
    """ASCII rendering of a dependency tree with status markers.

    Markers: ``*`` protected (clue/answer material), ``+`` kept, ``-``
    clipped/excluded.  Weights are the attention edge weights.
    """
    kept = set(kept or range(len(tree)))
    protected = set(protected or ())
    lines: list[str] = []

    def marker(node: int) -> str:
        if node in protected:
            return "*"
        return "+" if node in kept else "-"

    def visit(node: int, depth: int) -> None:
        pad = "  " * depth
        weight = f" (w={tree.weight(node):.3f})" if tree.parent(node) != -1 else ""
        lines.append(f"{pad}{marker(node)} {node}-{tree.token(node)}{weight}")
        for child in tree.children(node):
            visit(child, depth + 1)

    if len(tree) > 0:
        visit(tree.root, 0)
    return "\n".join(lines)


def render_distillation(result: DistillationResult) -> str:
    """Multi-section text report: sentences, clue words, tree, evidence."""
    sections = [
        "=== Answer-oriented sentences ===",
        result.ase.text or "(none)",
        "",
        "=== Question-relevant clue words ===",
        ", ".join(result.qws.clue_words) or "(none)",
        "",
        "=== Evidence ===",
        result.evidence or "(none)",
        "",
        "=== Scores ===",
        (
            f"I={result.scores.informativeness:.3f}  "
            f"C={result.scores.conciseness:.3f}  "
            f"R={result.scores.readability:.3f}  "
            f"H={result.scores.hybrid:.3f}  "
            f"reduction={100 * result.reduction:.1f}%"
        ),
    ]
    return "\n".join(sections)


def evidence_html(
    question: str,
    answer: str,
    context: str,
    result: DistillationResult,
) -> str:
    """Standalone HTML snippet: context with evidence tokens highlighted.

    Evidence words are wrapped in ``<mark>``; the answer string (when
    present in the evidence) gets a stronger style.  Matching is by word
    identity within the answer-oriented sentences — good enough for a
    review UI, with no JavaScript required.
    """
    evidence_words = {w.lower() for w in result.evidence.split()}
    answer_words = {w.lower() for w in answer.split()}
    rendered: list[str] = []
    for raw_word in context.split():
        stripped = raw_word.strip(".,;:!?()[]").lower()
        escaped = html.escape(raw_word)
        if stripped and stripped in answer_words:
            rendered.append(f'<mark class="answer">{escaped}</mark>')
        elif stripped and stripped in evidence_words:
            rendered.append(f"<mark>{escaped}</mark>")
        else:
            rendered.append(escaped)
    body = " ".join(rendered)
    return (
        "<div class=\"gced-evidence\">\n"
        f"  <p class=\"question\"><b>Q:</b> {html.escape(question)}</p>\n"
        f"  <p class=\"answer-line\"><b>A:</b> {html.escape(answer)}</p>\n"
        f"  <p class=\"context\">{body}</p>\n"
        f"  <p class=\"evidence\"><b>Evidence:</b> "
        f"{html.escape(result.evidence)}</p>\n"
        "</div>"
    )
