"""Embedding-similarity QA: distributional matching beyond exact overlap.

Scores a span by the cosine similarity between the question's mean
embedding and the mean embedding of the span's surrounding window.
Catches paraphrases exact matchers miss ("defeated" vs "beat"), standing
in for the semantic matching a fine-tuned PLM performs.
"""

from __future__ import annotations

import numpy as np

from repro.lm.embeddings import CooccurrenceEmbeddings
from repro.qa.base import QuestionProfile, SpanScoringQA
from repro.text.tokenizer import Token

__all__ = ["EmbeddingQA"]


class EmbeddingQA(SpanScoringQA):
    """Mean-vector cosine matcher over a fitted embedding space.

    Args:
        embeddings: fitted :class:`CooccurrenceEmbeddings`.
        window: window (tokens) around the span contributing context.
    """

    name = "embedding"

    def __init__(self, embeddings: CooccurrenceEmbeddings, window: int = 12) -> None:
        if not embeddings.fitted:
            raise ValueError("embeddings must be fitted before use")
        self.embeddings = embeddings
        self.window = window
        self._question_cache: dict[str, np.ndarray] = {}

    def _mean_vector(self, words: list[str]) -> np.ndarray:
        if not words:
            return np.zeros(self.embeddings.dim)
        return self.embeddings.matrix(words).mean(axis=0)

    def _question_vector(self, terms: tuple[str, ...]) -> np.ndarray:
        key = " ".join(terms)
        if key not in self._question_cache:
            self._question_cache[key] = self._mean_vector(list(terms))
        return self._question_cache[key]

    def score_span(
        self,
        question_terms: list[str],
        tokens: list[Token],
        start: int,
        end: int,
        bounds: tuple[int, int] | None = None,
    ) -> float:
        qv = self._question_vector(tuple(question_terms))
        qn = np.linalg.norm(qv)
        if qn == 0.0:
            return 0.0
        lo_limit, hi_limit = bounds if bounds is not None else (0, len(tokens))
        lo = max(lo_limit, start - self.window)
        hi = min(hi_limit, end + self.window + 1)
        words = [tokens[i].lower for i in range(lo, hi) if tokens[i].is_word]
        sv = self._mean_vector(words)
        sn = np.linalg.norm(sv)
        if sn == 0.0:
            return 0.0
        return float(qv @ sv / (qn * sn))

    # ------------------------------------------------- prepared scoring path
    def _context_matrix(
        self, tokens: list[Token]
    ) -> tuple[np.ndarray, list[int]]:
        """The stacked word-embedding matrix + word-position prefix counts.

        A pure function of the context tokens (no question side), so it
        is shareable across every question asked of one paragraph.
        """
        word_prefix = [0] * (len(tokens) + 1)
        rows = []
        for i, tok in enumerate(tokens):
            if tok.is_word:
                rows.append(self.embeddings.vector(tok.lower))
            word_prefix[i + 1] = len(rows)
        matrix = np.vstack(rows) if rows else np.zeros((0, self.embeddings.dim))
        return matrix, word_prefix

    def span_prep(
        self, profile: QuestionProfile, tokens: list[Token], compiled=None
    ):
        """Context word-embedding matrix plus word-position prefix counts.

        Window means become contiguous row slices of one stacked matrix
        (word tokens inside a token range are consecutive in word-only
        order), so each span pays one ``mean`` instead of rebuilding the
        matrix from per-token dictionary lookups.  The matrix is
        question-independent; with a compiled context it is derived once
        per paragraph and shared across questions.
        """
        qv = self._question_vector(tuple(profile.terms))
        qn = np.linalg.norm(qv)
        if compiled is not None:
            matrix, word_prefix = compiled.derive(
                (self.prep_key, "embedding-matrix"),
                lambda: self._context_matrix(tokens),
            )
        else:
            matrix, word_prefix = self._context_matrix(tokens)
        return (qv, qn, matrix, word_prefix)

    def score_span_prepared(
        self,
        prep,
        profile: QuestionProfile,
        tokens: list[Token],
        start: int,
        end: int,
        bounds: tuple[int, int] | None = None,
    ) -> float:
        qv, qn, matrix, word_prefix = prep
        if qn == 0.0:
            return 0.0
        lo_limit, hi_limit = bounds if bounds is not None else (0, len(tokens))
        lo = max(lo_limit, start - self.window)
        hi = min(hi_limit, end + self.window + 1)
        window = matrix[word_prefix[lo] : word_prefix[hi]]
        if window.shape[0] == 0:
            sv = np.zeros(self.embeddings.dim)
        else:
            sv = window.mean(axis=0)
        sn = np.linalg.norm(sv)
        if sn == 0.0:
            return 0.0
        return float(qv @ sv / (qn * sn))
