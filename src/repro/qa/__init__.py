"""QA-model substrate.

Extractive span predictors stand in for the paper's fine-tuned PLMs: they
expose the one capability every GCED module needs — ``(question, text) →
answer span with a confidence`` — and their accuracy genuinely improves
when distractor material is removed from the context, which is the
mechanism behind the paper's Table VI/VII gains.
"""

from repro.qa.base import AnswerPrediction, QAModel, SpanScoringQA
from repro.qa.answer_types import AnswerType, classify_question, candidate_spans
from repro.qa.compiled import CompiledContext, ContextCompiler
from repro.qa.lexical import LexicalOverlapQA
from repro.qa.tfidf import TfidfQA
from repro.qa.embedding import EmbeddingQA
from repro.qa.ensemble import EnsembleQA
from repro.qa.sliding import SlidingWindowQA
from repro.qa.evaluation import EvaluationResult, evaluate_model, evaluate_with_contexts
from repro.qa.training import QATrainer, TrainedArtifacts
from repro.qa.registry import (
    SimulatedBaseline,
    BaselineSpec,
    SQUAD_BASELINES,
    TRIVIAQA_BASELINES,
    build_baseline,
)

__all__ = [
    "AnswerPrediction",
    "QAModel",
    "SpanScoringQA",
    "AnswerType",
    "classify_question",
    "candidate_spans",
    "CompiledContext",
    "ContextCompiler",
    "LexicalOverlapQA",
    "TfidfQA",
    "EmbeddingQA",
    "EnsembleQA",
    "SlidingWindowQA",
    "EvaluationResult",
    "evaluate_model",
    "evaluate_with_contexts",
    "QATrainer",
    "TrainedArtifacts",
    "SimulatedBaseline",
    "BaselineSpec",
    "SQUAD_BASELINES",
    "TRIVIAQA_BASELINES",
    "build_baseline",
]
