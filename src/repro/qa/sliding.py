"""Sliding-window QA for long contexts (Sec. II-B1, Step 1).

The paper "divide[s] the context into several segments with a sliding
window to keep the most informative context segment" (window 128 in their
setup).  :class:`SlidingWindowQA` wraps any reader: long contexts are
split into overlapping token windows, each window is read independently,
and the best-scoring span wins — with a small position-consistency bonus
when neighbouring windows agree on the same answer surface.
"""

from __future__ import annotations

from collections import defaultdict

from repro.qa.base import AnswerPrediction, QAModel
from repro.text.normalize import normalize_answer
from repro.text.tokenizer import tokenize

__all__ = ["SlidingWindowQA"]


class SlidingWindowQA(QAModel):
    """Window-and-aggregate wrapper around a base reader.

    Args:
        reader: any :class:`QAModel`.
        window_tokens: window length in tokens (paper: 128).
        stride: window advance; overlap = window_tokens - stride.
        agreement_bonus: score bonus per additional window agreeing on the
            same normalized answer.
    """

    def __init__(
        self,
        reader: QAModel,
        window_tokens: int = 128,
        stride: int = 64,
        agreement_bonus: float = 0.25,
    ) -> None:
        if window_tokens < 8:
            raise ValueError("window_tokens must be at least 8")
        if not (0 < stride <= window_tokens):
            raise ValueError("stride must be in (0, window_tokens]")
        self.reader = reader
        self.window_tokens = window_tokens
        self.stride = stride
        self.agreement_bonus = agreement_bonus
        self.name = f"sliding({getattr(reader, 'name', 'reader')})"

    def _windows(self, context: str) -> list[tuple[int, int]]:
        """Character ranges of the token windows covering the context."""
        tokens = tokenize(context)
        if len(tokens) <= self.window_tokens:
            return [(0, len(context))]
        ranges = []
        start = 0
        while start < len(tokens):
            end = min(len(tokens), start + self.window_tokens)
            ranges.append((tokens[start].start, tokens[end - 1].end))
            if end == len(tokens):
                break
            start += self.stride
        return ranges

    def predict(self, question: str, context: str) -> AnswerPrediction:
        ranges = self._windows(context)
        if len(ranges) == 1:
            return self.reader.predict(question, context)
        candidates: list[tuple[float, AnswerPrediction]] = []
        agreement: dict[str, int] = defaultdict(int)
        for lo, hi in ranges:
            segment = context[lo:hi]
            pred = self.reader.predict(question, segment)
            if pred.is_empty:
                continue
            adjusted = AnswerPrediction(
                text=pred.text,
                start=pred.start + lo,
                end=pred.end + lo,
                score=pred.score,
            )
            candidates.append((pred.score, adjusted))
            agreement[normalize_answer(pred.text)] += 1
        if not candidates:
            return AnswerPrediction.empty()
        best_score = float("-inf")
        best: AnswerPrediction | None = None
        for score, pred in candidates:
            bonus = self.agreement_bonus * (
                agreement[normalize_answer(pred.text)] - 1
            )
            if score + bonus > best_score:
                best_score = score + bonus
                best = pred
        assert best is not None
        return AnswerPrediction(best.text, best.start, best.end, best_score)
