"""Lexical-overlap QA: proximity-weighted question-term matching.

The simplest real extractive reader: a candidate span is good if many
question terms occur near it.  Term influence decays with token distance,
so answers inside the sentence that restates the question outrank the
same-type spans in distractor sentences — the property ASE and the
informativeness metric rely on.
"""

from __future__ import annotations

from repro.qa.base import QuestionProfile, SpanScoringQA
from repro.text.tokenizer import Token

__all__ = ["LexicalOverlapQA"]


class LexicalOverlapQA(SpanScoringQA):
    """Proximity-decay lexical matcher.

    Args:
        decay: per-token multiplicative decay of a matched term's influence.
        window: maximum distance (tokens) at which a match still counts.
    """

    name = "lexical-overlap"

    def __init__(self, decay: float = 0.85, window: int = 25) -> None:
        if not (0.0 < decay < 1.0):
            raise ValueError("decay must be in (0, 1)")
        self.decay = decay
        self.window = window

    def score_span(
        self,
        question_terms: list[str],
        tokens: list[Token],
        start: int,
        end: int,
        bounds: tuple[int, int] | None = None,
    ) -> float:
        if not question_terms:
            return 0.0
        exact, stems, verbs = self.term_index(question_terms)
        lo_limit, hi_limit = bounds if bounds is not None else (0, len(tokens))
        span_range = range(
            max(lo_limit, start - self.window),
            min(hi_limit, end + self.window + 1),
        )
        score = 0.0
        matched: set[str] = set()
        for idx in span_range:
            token = tokens[idx]
            if not token.is_word:
                continue
            term = self.match_term(token.lower, exact, stems)
            if term is None:
                continue
            if start <= idx <= end:
                # Answers rarely restate the question's own words; a span
                # *containing* question terms is likely the question's echo
                # in the context, not the answer.
                score -= 0.4
                continue
            distance = start - idx if idx < start else idx - end
            decayed = self.decay ** distance
            if term in verbs:
                # Verb matches anchor the answer position: full decay.
                score += self.verb_term_boost * decayed
            else:
                # Noun/entity matches mostly locate the right clause;
                # within the sentence their exact distance matters little.
                score += 0.75 + 0.25 * decayed
            matched.add(term)
        # Coverage bonus: spans near *distinct* question terms beat spans
        # near repeated occurrences of one term.
        score += 0.5 * len(matched)
        return score

    # ------------------------------------------------- prepared scoring path
    def span_prep(
        self, profile: QuestionProfile, tokens: list[Token], compiled=None
    ):
        """Per-token matched-term table, computed once per context.

        ``table[i]`` is the canonical question term token ``i`` matches,
        or ``None`` for non-words and unmatched words — exactly the
        outcome of the per-span ``match_term`` calls, hoisted to one
        O(n) pass.
        """
        if not profile.terms:
            return ()
        exact, stems = profile.exact, profile.stems
        return [
            self.match_term(tok.lower, exact, stems) if tok.is_word else None
            for tok in tokens
        ]

    def score_span_prepared(
        self,
        prep,
        profile: QuestionProfile,
        tokens: list[Token],
        start: int,
        end: int,
        bounds: tuple[int, int] | None = None,
    ) -> float:
        if not profile.terms:
            return 0.0
        lo_limit, hi_limit = bounds if bounds is not None else (0, len(tokens))
        score = 0.0
        matched: set[str] = set()
        for idx in range(
            max(lo_limit, start - self.window),
            min(hi_limit, end + self.window + 1),
        ):
            term = prep[idx]
            if term is None:
                continue
            if start <= idx <= end:
                score -= 0.4
                continue
            distance = start - idx if idx < start else idx - end
            decayed = self.decay ** distance
            if term in profile.verbs:
                score += self.verb_term_boost * decayed
            else:
                score += 0.75 + 0.25 * decayed
            matched.add(term)
        score += 0.5 * len(matched)
        return score
