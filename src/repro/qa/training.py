"""QA "fine-tuning": fitting corpus statistics on a training split.

Step 1 of Sec. II-B1 trains a QA model on the dataset.  For the heuristic
substrate, training means fitting the statistics the scorers consume:

* TF-IDF document frequencies (for :class:`TfidfQA`),
* PPMI-SVD co-occurrence embeddings (for :class:`EmbeddingQA` and the
  attention weights of WSPTC),
* the trigram language model (for the readability metric).

``QATrainer.train`` bundles all three into :class:`TrainedArtifacts`,
which the pipeline and experiment harness share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.attention.multihead import MultiHeadAttention
from repro.lm.embeddings import CooccurrenceEmbeddings
from repro.lm.ngram import NGramLanguageModel
from repro.qa.embedding import EmbeddingQA
from repro.qa.ensemble import EnsembleQA
from repro.qa.lexical import LexicalOverlapQA
from repro.qa.tfidf import TfidfQA
from repro.text.sentences import split_sentences
from repro.text.tokenizer import word_tokens

__all__ = ["QATrainer", "TrainedArtifacts"]


@dataclass
class TrainedArtifacts:
    """Everything fitted on a training corpus.

    Attributes:
        tfidf: IDF-weighted span scorer.
        embeddings: co-occurrence embeddings.
        language_model: trigram LM (readability / perplexity).
        attention: multi-head attention over the embeddings.
        reader: the default ensemble QA model (lexical + tfidf + embedding).
    """

    tfidf: TfidfQA
    embeddings: CooccurrenceEmbeddings
    language_model: NGramLanguageModel
    attention: MultiHeadAttention
    reader: EnsembleQA


class QATrainer:
    """Fit the statistical artifacts a GCED deployment needs.

    Args:
        embedding_dim: dimensionality of the co-occurrence embeddings.
        attention_heads: number of attention heads (paper: 16).
        attention_dk: per-head dimension (paper: 64).
        seed: master seed for the deterministic components.
    """

    def __init__(
        self,
        embedding_dim: int = 64,
        attention_heads: int = 16,
        attention_dk: int = 64,
        seed: int = 0,
    ) -> None:
        self.embedding_dim = embedding_dim
        self.attention_heads = attention_heads
        self.attention_dk = attention_dk
        self.seed = seed

    def train(self, contexts: Iterable[str]) -> TrainedArtifacts:
        """Fit all artifacts on an iterable of raw context strings."""
        contexts = list(contexts)
        if not contexts:
            raise ValueError("training corpus is empty")
        sentence_tokens = [
            word_tokens(sentence.text)
            for context in contexts
            for sentence in split_sentences(context)
        ]
        sentence_tokens = [s for s in sentence_tokens if s]

        tfidf = TfidfQA().fit(contexts)
        embeddings = CooccurrenceEmbeddings(
            dim=self.embedding_dim, seed=self.seed
        ).fit(sentence_tokens)
        language_model = NGramLanguageModel().fit(sentence_tokens)
        attention = MultiHeadAttention(
            embeddings,
            heads=self.attention_heads,
            d_k=self.attention_dk,
            seed=self.seed,
        )
        reader = EnsembleQA(
            [
                (LexicalOverlapQA(), 1.0),
                (tfidf, 0.6),
                (EmbeddingQA(embeddings), 0.8),
            ]
        )
        return TrainedArtifacts(
            tfidf=tfidf,
            embeddings=embeddings,
            language_model=language_model,
            attention=attention,
            reader=reader,
        )
