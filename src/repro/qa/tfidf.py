"""TF-IDF weighted span scorer.

Like :class:`repro.qa.lexical.LexicalOverlapQA` but each matched question
term is weighted by its corpus inverse document frequency, so rare,
discriminative terms ("Hastings") dominate frequent ones ("battle").
Fitting the IDF table on the training split is this model's "fine-tuning".
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from repro.qa.base import QuestionProfile, SpanScoringQA
from repro.retrieval.weighting import idf_table, unseen_idf
from repro.text.tokenizer import Token, word_tokens

__all__ = ["TfidfQA"]


class TfidfQA(SpanScoringQA):
    """IDF-weighted proximity matcher.

    Args:
        decay: per-token distance decay (as in the lexical model).
        window: maximum matching distance in tokens.
    """

    name = "tfidf"

    def __init__(self, decay: float = 0.85, window: int = 25) -> None:
        self.decay = decay
        self.window = window
        self._idf: dict[str, float] = {}
        self._default_idf = 1.0
        self._fitted = False

    def fit(self, documents: Iterable[str]) -> "TfidfQA":
        """Compute IDF weights from an iterable of raw document strings."""
        doc_freq: Counter[str] = Counter()
        n_docs = 0
        for doc in documents:
            n_docs += 1
            doc_freq.update(set(word_tokens(doc)))
        if n_docs == 0:
            raise ValueError("cannot fit TF-IDF on an empty corpus")
        # The same smoothed-IDF family the retrieval layer ranks with
        # (:mod:`repro.retrieval.weighting`), so span scoring and corpus
        # retrieval agree on term rarity.
        self._idf = idf_table(doc_freq, n_docs)
        # Unseen terms are maximally discriminative.
        self._default_idf = unseen_idf(n_docs)
        self._fitted = True
        return self

    def idf(self, term: str) -> float:
        """IDF weight of ``term`` (default weight before fitting is 1.0)."""
        if not self._fitted:
            return 1.0
        return self._idf.get(term, self._default_idf)

    def score_span(
        self,
        question_terms: list[str],
        tokens: list[Token],
        start: int,
        end: int,
        bounds: tuple[int, int] | None = None,
    ) -> float:
        if not question_terms:
            return 0.0
        exact, stems, verbs = self.term_index(question_terms)
        lo_limit, hi_limit = bounds if bounds is not None else (0, len(tokens))
        lo = max(lo_limit, start - self.window)
        hi = min(hi_limit, end + self.window + 1)
        score = 0.0
        matched: set[str] = set()
        for idx in range(lo, hi):
            token = tokens[idx]
            if not token.is_word:
                continue
            term = self.match_term(token.lower, exact, stems)
            if term is None:
                continue
            weight = self.idf(token.lower)
            if start <= idx <= end:
                # Question-term echo inside the candidate span: penalize
                # (see LexicalOverlapQA.score_span).
                score -= 0.4 * weight
                continue
            distance = start - idx if idx < start else idx - end
            decayed = self.decay ** distance
            if term in verbs:
                # Verb matches anchor the answer position: full decay.
                score += self.verb_term_boost * weight * decayed
            else:
                # Noun/entity matches locate the clause; distance within
                # the sentence is a weak signal (see LexicalOverlapQA).
                score += weight * (0.75 + 0.25 * decayed)
            matched.add(term)
        score += 0.5 * sum(self.idf(t) for t in matched) / max(1, len(question_terms))
        return score

    # ------------------------------------------------- prepared scoring path
    def span_prep(
        self, profile: QuestionProfile, tokens: list[Token], compiled=None
    ):
        """Per-token ``(term, idf)`` table, computed once per context.

        The table depends on the question's terms, so it cannot live on
        the compiled artifact directly; :meth:`CompiledContext.prep`
        memoizes it per (model, terms) instead.  Refit (:meth:`fit`)
        after serving traffic would stale those entries — fit before
        wiring the model into a pipeline.
        """
        if not profile.terms:
            return ()
        exact, stems = profile.exact, profile.stems
        table: list[tuple[str, float] | None] = []
        for tok in tokens:
            term = self.match_term(tok.lower, exact, stems) if tok.is_word else None
            table.append((term, self.idf(tok.lower)) if term is not None else None)
        return table

    def score_span_prepared(
        self,
        prep,
        profile: QuestionProfile,
        tokens: list[Token],
        start: int,
        end: int,
        bounds: tuple[int, int] | None = None,
    ) -> float:
        if not profile.terms:
            return 0.0
        lo_limit, hi_limit = bounds if bounds is not None else (0, len(tokens))
        lo = max(lo_limit, start - self.window)
        hi = min(hi_limit, end + self.window + 1)
        score = 0.0
        matched: set[str] = set()
        for idx in range(lo, hi):
            entry = prep[idx]
            if entry is None:
                continue
            term, weight = entry
            if start <= idx <= end:
                score -= 0.4 * weight
                continue
            distance = start - idx if idx < start else idx - end
            decayed = self.decay ** distance
            if term in profile.verbs:
                score += self.verb_term_boost * weight * decayed
            else:
                score += weight * (0.75 + 0.25 * decayed)
            matched.add(term)
        score += 0.5 * sum(self.idf(t) for t in matched) / max(1, len(profile.terms))
        return score
