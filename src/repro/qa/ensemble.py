"""Weighted ensemble of span-scoring QA models.

The registry's "strong" baselines combine lexical, TF-IDF and embedding
signals; weights are per-member multipliers applied to (roughly
score-normalized) member outputs.
"""

from __future__ import annotations

from repro.qa.base import QuestionProfile, SpanScoringQA
from repro.text.tokenizer import Token

__all__ = ["EnsembleQA"]


class EnsembleQA(SpanScoringQA):
    """Linear combination of member span scores.

    Args:
        members: ``(model, weight)`` pairs; every model must be a
            :class:`SpanScoringQA` so spans are scored consistently.
    """

    name = "ensemble"

    def __init__(self, members: list[tuple[SpanScoringQA, float]]) -> None:
        if not members:
            raise ValueError("ensemble needs at least one member")
        for model, weight in members:
            if not isinstance(model, SpanScoringQA):
                raise TypeError(f"{model!r} is not a SpanScoringQA")
            if weight < 0:
                raise ValueError("member weights must be non-negative")
        self.members = list(members)

    def score_span(
        self,
        question_terms: list[str],
        tokens: list[Token],
        start: int,
        end: int,
        bounds: tuple[int, int] | None = None,
    ) -> float:
        return sum(
            weight * model.score_span(question_terms, tokens, start, end, bounds)
            for model, weight in self.members
        )

    # ------------------------------------------------- prepared scoring path
    def span_prep(
        self, profile: QuestionProfile, tokens: list[Token], compiled=None
    ):
        """Member preps plus the shared terms list for fallback members.

        ``compiled`` passes through to the members, so question-shared
        artifacts (the embedding member's context matrix) are derived
        once per paragraph even though the ensemble-level prep is
        memoized per question.
        """
        return (
            list(profile.terms),
            [
                model.span_prep(profile, tokens, compiled=compiled)
                for model, _weight in self.members
            ],
        )

    def score_span_prepared(
        self,
        prep,
        profile: QuestionProfile,
        tokens: list[Token],
        start: int,
        end: int,
        bounds: tuple[int, int] | None = None,
    ) -> float:
        terms, member_preps = prep
        return sum(
            weight
            * model._span_score(
                member_prep, terms, profile, tokens, start, end, bounds
            )
            for (model, weight), member_prep in zip(self.members, member_preps)
        )
